//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate implements
//! the benchmark-definition surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotation) with a simple wall-clock sampler: a short warm-up, then
//! `sample_size` timed runs, reporting mean / min / max to stdout. No
//! statistical analysis, HTML reports, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark context (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Applies command-line configuration. Accepted for API parity; the
    /// shim has no tunables.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Throughput annotation for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!(" ({:.2} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(
                    " ({:.2} MiB/s)",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: mean {mean:.3?} min {min:.3?} max {max:.3?} over {} samples{rate}",
            self.name,
            samples.len(),
        );
    }
}

/// Times closures (stand-in for `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Samples per `iter` call; group `sample_size` is accepted for parity but
/// the shim keeps runs short with a fixed budget.
const SHIM_SAMPLES: usize = 10;

impl Bencher {
    /// Runs `routine` once as warm-up, then a fixed number of timed
    /// samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..SHIM_SAMPLES {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Prevents the optimizer from discarding a value (parity re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smokes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(runs > 0);
    }
}
