//! Offline stand-in for [rand 0.8](https://crates.io/crates/rand).
//!
//! The build environment has no crates.io access, so this crate implements
//! the small slice of the `rand` API the workspace uses: `SeedableRng::
//! seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, `SliceRandom::
//! shuffle`, and the `SmallRng` / `StdRng` generator types. Both
//! generators are xoshiro256** seeded through splitmix64 — deterministic
//! for a fixed seed across platforms and runs, which is all the
//! reproducibility the experiment harness relies on. Streams differ from
//! the real crate's, so absolute random sequences (not properties) are not
//! preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on empty ranges,
    /// like the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..1);
            assert_eq!(w, 0);
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
