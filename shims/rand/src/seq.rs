//! Sequence helpers: the `SliceRandom` surface used by the workspace.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [10u32, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
