//! Generator implementations: xoshiro256** behind both named types.

use crate::{RngCore, SeedableRng};

/// xoshiro256** state, seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Stand-in for `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng(Xoshiro256::from_u64(seed))
    }
}

/// Stand-in for `rand::rngs::StdRng`. Same engine as [`SmallRng`] but a
/// distinct stream (the seed is tweaked), so the two types do not shadow
/// each other's sequences.
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(Xoshiro256::from_u64(seed ^ 0xA076_1D64_78BD_642F))
    }
}
