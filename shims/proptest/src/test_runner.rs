//! Test-runner plumbing: config, case errors, and the deterministic RNG.

/// Per-test configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (kept for API parity; unused by the shim's
    /// own strategies).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator for case inputs (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's fully-qualified name, so every
    /// test sees a stable stream across runs and machines.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
