//! Test-runner plumbing: config, case errors, and the deterministic RNG.

/// Per-test configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (kept for API parity; unused by the shim's
    /// own strategies).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator for case inputs (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's fully-qualified name, so every
    /// test sees a stable stream across runs and machines.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// A generator starting from an explicit state — used to replay
    /// persisted regression seeds from `proptest-regressions/`.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Loads the persisted regression corpus for the test file containing
/// `module`: `<manifest_dir>/proptest-regressions/<file>.txt`, where
/// `<file>` is the top-level module segment (for an integration test,
/// the file name). Mirrors upstream proptest's layout closely enough
/// that the corpus survives a move to the real crate.
///
/// Recognized lines: `cc <seed>` (decimal or `0x`-hex RNG state, run as
/// an extra case before the random ones for *every* test in the file),
/// blank lines, and `#` comments. A malformed `cc` line panics — a typo
/// must not silently drop regression coverage.
pub fn persisted_seeds(manifest_dir: &str, module: &str) -> Vec<u64> {
    let file = module.split("::").next().unwrap_or(module);
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{file}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix("cc ") else {
            panic!("unrecognized line in {}: `{line}`", path.display());
        };
        let tok = rest.split_whitespace().next().unwrap_or("");
        let parsed = if let Some(hex) = tok.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            tok.parse()
        };
        match parsed {
            Ok(s) => seeds.push(s),
            Err(_) => panic!("malformed regression seed in {}: `{line}`", path.display()),
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_hex_decimal_comments_and_blanks() {
        let dir = std::env::temp_dir().join(format!("proptest_shim_corpus_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        std::fs::write(
            dir.join("proptest-regressions/mysuite.txt"),
            "# header\n\ncc 0x2a\ncc 7\n  cc 0xff  # trailing words ignored\n",
        )
        .unwrap();
        let seeds = persisted_seeds(dir.to_str().unwrap(), "mysuite::inner");
        assert_eq!(seeds, vec![0x2a, 7, 0xff]);
        // A file for a different module resolves to no corpus.
        assert!(persisted_seeds(dir.to_str().unwrap(), "othersuite").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_seed_replays_the_same_stream() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
