//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the strategy/macro surface the workspace's property tests use:
//! range/tuple strategies, `prop_map` / `prop_flat_map`,
//! `proptest::collection::vec`, `prop_oneof!`, the `proptest!` test-fn
//! macro, and the `prop_assert*` family. Cases are generated from a
//! deterministic per-test seed. **No shrinking** is performed — a failing
//! case reports its case number; rerunning reproduces it exactly.
//!
//! Persisted regression corpora are supported: each test file may ship
//! `proptest-regressions/<file>.txt` (in its package root) whose
//! `cc <seed>` lines are replayed as extra deterministic cases before
//! the random ones — see [`test_runner::persisted_seeds`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property-test functions.
///
/// Mirrors proptest's macro for the forms used in this workspace:
/// an optional leading `#![proptest_config(...)]`, then one or more
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let run_case = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                // Persisted regressions replay first: every `cc` seed in
                // the file's corpus is one extra deterministic case.
                for seed in $crate::test_runner::persisted_seeds(
                    env!("CARGO_MANIFEST_DIR"),
                    module_path!(),
                ) {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    if let ::std::result::Result::Err(e) = run_case(&mut rng) {
                        panic!(
                            "proptest regression seed {seed:#x} of `{}` failed: {}",
                            stringify!($name),
                            e
                        );
                    }
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    if let ::std::result::Result::Err(e) = run_case(&mut rng) {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::new();
        $( union.push($crate::strategy::Strategy::boxed($arm)); )+
        union
    }};
}
