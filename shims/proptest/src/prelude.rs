//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Namespaced re-export so `proptest::collection::vec` resolves through
/// the prelude as well.
pub mod collection {
    pub use crate::collection::*;
}
