//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating random values (stand-in for
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// An empty union; generate panics until an arm is pushed.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn push(&mut self, arm: BoxedStrategy<V>) {
        self.arms.push(arm);
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(width) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = TestRng::deterministic("shim-test");
        let s = (1usize..5, 10u32..=12).prop_map(|(a, b)| a as u32 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((11..=16).contains(&v), "{v}");
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::deterministic("shim-flat");
        let s = (2usize..6).prop_flat_map(|n| (0usize..n).prop_map(move |i| (n, i)));
        for _ in 0..200 {
            let (n, i) = s.generate(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::deterministic("shim-union");
        let mut u = Union::new();
        u.push((0u32..1).boxed());
        u.push((10u32..11).boxed());
        let mut seen = [false; 2];
        for _ in 0..100 {
            match u.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(seen, [true, true]);
    }
}
