//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(width) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("shim-vec");
        let s = vec((0u32..10, 0u32..10), 0..=7);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 7);
            lens.insert(v.len());
        }
        assert!(lens.len() > 4, "lengths should vary: {lens:?}");
    }
}
