//! Model-checked chase-lev deque suite (graft-check).
//!
//! Compiled only under `RUSTFLAGS="--cfg graft_check"`. Each test runs the
//! real `Deque` code — the same `push`/`take`/`steal` the pool executes —
//! on graft-check model threads, so the checker enumerates interleavings
//! of the actual Lê-et-al. protocol, including the `take`-vs-`steal` CAS
//! race on the final element and index wraparound at the slot mask.
//!
//! Pruning is off throughout: deque slots hold raw task *pointers*, whose
//! allocation addresses differ between executions, so state hashes are not
//! comparable across runs. With pruning off the DFS is exact and the
//! execution counts below are deterministic.
#![cfg(graft_check)]

use graft_check::{thread, Checker};
use rayon::check_api::{Deque, TaskPtr, DEQUE_CAP};
use std::sync::Arc;

/// A no-op task; the suite asserts on pointer identity, not side effects.
fn noop_task() -> TaskPtr {
    TaskPtr::new(Box::new(|| {}))
}

/// Claim result of one contender: the raw pointer, if it got the task.
fn claim(t: Option<TaskPtr>) -> Option<usize> {
    t.map(|p| {
        let raw = p.raw() as usize;
        p.discard();
        raw
    })
}

/// Owner `take` races one thief `steal` for a single element: exactly one
/// side must win, and nobody may observe a pointer the other also claimed.
fn one_element_scenario() {
    let d = Arc::new(Deque::new());
    d.push(noop_task()).ok().expect("push into empty deque");
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || claim(d2.steal()));
    let owner = claim(d.take());
    let stolen = thief.join().unwrap();
    match (owner, stolen) {
        (Some(a), Some(b)) => panic!("double claim: owner {a:#x} thief {b:#x}"),
        (None, None) => panic!("final element lost: neither take nor steal won"),
        _ => {}
    }
}

#[test]
fn one_element_take_vs_steal() {
    let report = Checker::new()
        .prune(false)
        .check_report(one_element_scenario);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "exploration should exhaust: {report:?}");
    assert_eq!(report.divergent, 0);
}

/// Two thieves race each other (and the owner's pop) over two elements:
/// every element is claimed exactly once across all three contenders.
fn steal_steal_scenario() {
    let d = Arc::new(Deque::new());
    let t1 = noop_task();
    let t2 = noop_task();
    let mut expected = vec![t1.raw() as usize, t2.raw() as usize];
    expected.sort_unstable();
    d.push(t1).ok().unwrap();
    d.push(t2).ok().unwrap();
    let (da, db) = (Arc::clone(&d), Arc::clone(&d));
    let thief_a = thread::spawn(move || claim(da.steal()));
    let thief_b = thread::spawn(move || claim(db.steal()));
    let owner = claim(d.take());
    let mut got: Vec<usize> = [owner, thief_a.join().unwrap(), thief_b.join().unwrap()]
        .into_iter()
        .flatten()
        .collect();
    got.sort_unstable();
    assert_eq!(got, expected, "each task claimed exactly once");
}

/// As above, but the indices start at `DEQUE_CAP - 1` so both the push and
/// every claim cross the power-of-two mask boundary mid-scenario.
fn wraparound_scenario() {
    let d = Arc::new(Deque::new_at(DEQUE_CAP as i64 - 1));
    let t1 = noop_task();
    let t2 = noop_task();
    let mut expected = vec![t1.raw() as usize, t2.raw() as usize];
    expected.sort_unstable();
    d.push(t1).ok().unwrap();
    d.push(t2).ok().unwrap();
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || (claim(d2.steal()), claim(d2.steal())));
    let owner = claim(d.take());
    let (s1, s2) = thief.join().unwrap();
    let mut got: Vec<usize> = [owner, s1, s2].into_iter().flatten().collect();
    got.sort_unstable();
    assert_eq!(got, expected, "wraparound: each task claimed exactly once");
}

/// The ISSUE-mandated coverage gate: across the three deque scenarios the
/// checker must enumerate at least 10,000 distinct schedules. Counted here
/// (rather than per test) so the bound tracks total protocol coverage.
#[test]
fn deque_schedule_space_at_least_10k() {
    let mut total = 0usize;
    // one_element and wraparound exhaust their spaces (~0.8k and ~1.9k);
    // steal_steal's space is far larger than the CI budget allows, so it is
    // capped — the cap is sized to push the suite total past the 10k gate.
    for (name, cap, f) in [
        ("one_element", 40_000, one_element_scenario as fn()),
        ("steal_steal", 9_000, steal_steal_scenario as fn()),
        ("wraparound", 40_000, wraparound_scenario as fn()),
    ] {
        let report = Checker::new()
            .prune(false)
            .max_executions(cap)
            .check_report(f);
        assert!(report.violation.is_none(), "{name}: {:?}", report.violation);
        assert_eq!(report.divergent, 0, "{name} diverged");
        eprintln!(
            "{name}: {} schedules, complete={}, {} steps",
            report.executions, report.complete, report.total_steps
        );
        total += report.executions;
    }
    assert!(
        total >= 10_000,
        "deque model checks explored only {total} distinct schedules"
    );
}
