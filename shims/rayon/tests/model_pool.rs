//! Model-checked latch and batch-execution suite (graft-check).
//!
//! Compiled only under `RUSTFLAGS="--cfg graft_check"`. The latch tests
//! drive the real `Latch` (instrumented mutex + condvar) through its
//! completion/panic handoff; the batch test runs the real `execute_batch`
//! over a worker-less [`bare_pool`] with a model thread standing in for a
//! pool worker, so the checker owns every interleaving of the injector,
//! deque, latch, and result-reassembly protocol.
//!
//! Pruning is off: task pointers (whose addresses vary between executions)
//! flow through the injector, so state hashes are not comparable across
//! runs. Exploration is exact DFS under the preemption bound.
#![cfg(graft_check)]

use graft_check::{thread, Checker};
use rayon::check_api::{bare_pool, execute_batch, run_task, Latch};
use std::sync::Arc;

/// Two completers count the latch down while the main thread parks on it;
/// the wakeup must happen exactly at zero with no completion lost.
#[test]
fn latch_handoff_two_completers() {
    let report = Checker::new().prune(false).check_report(|| {
        let latch = Arc::new(Latch::new(2));
        let (l1, l2) = (Arc::clone(&latch), Arc::clone(&latch));
        let a = thread::spawn(move || l1.complete(None));
        let b = thread::spawn(move || l2.complete(None));
        assert!(latch.wait_parked().is_none(), "no panic was recorded");
        a.join().unwrap();
        b.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "exploration should exhaust: {report:?}");
}

/// A panicking completion races a clean one; the waiter must always
/// receive the panic payload, however the two completions interleave.
#[test]
fn latch_panic_payload_survives_race() {
    let report = Checker::new().prune(false).check_report(|| {
        let latch = Arc::new(Latch::new(2));
        let (l1, l2) = (Arc::clone(&latch), Arc::clone(&latch));
        let a = thread::spawn(move || l1.complete(Some(Box::new("task-boom"))));
        let b = thread::spawn(move || l2.complete(None));
        let payload = latch
            .wait_parked()
            .expect("panic payload must reach waiter");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"task-boom"));
        a.join().unwrap();
        b.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "exploration should exhaust: {report:?}");
}

/// `execute_batch` on a worker-less pool, with one model thread acting as
/// the pool worker (bounded `find_task`/`run_task` loop) while the caller
/// helps through `Latch::wait_helping`. Every piece's result must come
/// back in piece order regardless of who ran it.
#[test]
fn execute_batch_reassembles_in_order() {
    // A single batch submission walks hundreds of instrumented ops
    // (injector mutex, deque indices, latch, condvars), so this scenario is
    // explored under sequentially-consistent memory (`stale_reads(false)`,
    // scheduling races only — the weak-memory deque protocol is covered by
    // `model_deque.rs`) and a tight execution cap.
    let report = Checker::new()
        .prune(false)
        .stale_reads(false)
        .preemption_bound(2)
        .max_executions(1_500)
        .check_report(|| {
            let pool = bare_pool(2);
            let p2 = Arc::clone(&pool);
            let worker = thread::spawn(move || {
                // Bounded stand-in for `worker_loop`: drain whatever the
                // scheduler lets us see, then exit (the submitting thread
                // can always finish the batch itself).
                for _ in 0..4 {
                    match p2.find_task(Some(0)) {
                        Some(task) => run_task(task),
                        None => thread::yield_now(),
                    }
                }
            });
            let out = execute_batch(&pool, vec![1u32, 2], &|idx, v| v * 10 + idx as u32);
            assert_eq!(out, vec![10, 21], "results in piece order");
            worker.join().unwrap();
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.divergent, 0);
    assert!(report.complete, "exploration should exhaust: {report:?}");
    assert!(report.executions > 100, "trivial exploration: {report:?}");
}
