//! Work-stealing thread pool backing the rayon shim.
//!
//! This is a deliberately small, self-contained executor: one chase-lev
//! deque per worker, a mutex-protected global injector, and latch-based
//! batch execution. It exists so the parallel engines in `crates/core`
//! actually run concurrently without pulling the real rayon (and its
//! dependency tree) into the offline build.
//!
//! # Unsafe surface
//!
//! All `unsafe` in the shim lives in this file and falls into two buckets:
//!
//! 1. **Raw task pointers.** Tasks are `Box<dyn FnOnce() + Send>` boxed a
//!    second time so the deque slots can hold a thin `*mut TaskObj`. Every
//!    pointer produced by `Box::into_raw` is consumed exactly once by
//!    `Box::from_raw`: a task leaves the deque either via `take` (owner) or
//!    `steal` (thief), never both, which the chase-lev CAS protocol
//!    guarantees. On pool shutdown the injector is drained and dropped.
//!
//! 2. **Lifetime erasure.** `execute_batch`, `join`, and `scope` transmute
//!    task closures from `'a` to `'static` so they can cross thread
//!    boundaries. Soundness: the submitting call blocks (helping with work,
//!    not just parking) until the latch counts every task as finished —
//!    including panicked tasks, whose payloads are captured and re-thrown
//!    on the submitting thread. No borrowed data outlives the call.
//!
//! # Memory orderings
//!
//! The deque follows Le et al., "Correct and Efficient Work-Stealing for
//! Weak Memory Models" (PPoPP 2013): `push` publishes the slot with a
//! Release fence before the Relaxed bottom store; `take` uses a SeqCst
//! fence between the bottom decrement and the top load; `steal` reads the
//! slot *before* its SeqCst CAS on top, which is what makes the transfer
//! of ownership race-free. The slot array is never resized; on overflow
//! `push` falls back to the injector, which is plain mutex-protected state.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Duration;

// Under `--cfg graft_check` every synchronization primitive the lock-free
// core touches is swapped for its graft-check instrumented twin (which
// passes straight through to std outside a model-checked execution). The
// production source is otherwise unchanged, so the protocol the model
// checker explores is the protocol that ships.
#[cfg(not(graft_check))]
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, Ordering};
#[cfg(not(graft_check))]
use std::sync::{Condvar, Mutex};

#[cfg(graft_check)]
use graft_check::sync::atomic::{fence, AtomicI64, AtomicPtr, Ordering};
#[cfg(graft_check)]
use graft_check::sync::{Condvar, Mutex};

/// A heap-allocated erased task. Double-boxed so the deque can store a thin
/// pointer (`*mut TaskObj`) in an `AtomicPtr`.
type TaskObj = Box<dyn FnOnce() + Send>;

/// Thin raw pointer to a boxed task. `Send` is sound because the underlying
/// closure is `Send` and ownership is transferred (never shared) through the
/// deque/injector.
pub struct TaskPtr(*mut TaskObj);
unsafe impl Send for TaskPtr {}

impl TaskPtr {
    /// Box `task` a second time and keep the thin raw pointer.
    pub fn new(task: TaskObj) -> Self {
        TaskPtr(Box::into_raw(Box::new(task)))
    }

    /// Take ownership back and run the task.
    pub fn run(self) {
        // SAFETY: `self.0` came from `Box::into_raw` in `TaskPtr::new` and
        // the deque protocol hands each pointer to exactly one consumer.
        let task = unsafe { Box::from_raw(self.0) };
        task();
    }

    /// Take ownership back and drop without running (shutdown path).
    pub fn discard(self) {
        // SAFETY: as in `run`; the task is simply dropped.
        drop(unsafe { Box::from_raw(self.0) });
    }

    /// Test-only: the raw pointer, for identity comparison *without*
    /// taking ownership. The model suites use this to detect a
    /// double-claimed task before any `Box::from_raw` could double-free.
    #[cfg(any(test, graft_check))]
    pub fn raw(&self) -> *const () {
        self.0 as *const ()
    }
}

/// Deque capacity. Power of two; overflow spills to the injector.
pub const DEQUE_CAP: usize = 256;
const MASK: i64 = (DEQUE_CAP as i64) - 1;

/// Fixed-capacity chase-lev work-stealing deque. The owner pushes and takes
/// at the bottom; thieves steal from the top.
pub struct Deque {
    top: AtomicI64,
    bottom: AtomicI64,
    slots: Box<[AtomicPtr<TaskObj>]>,
}

impl Deque {
    /// An empty deque with indices starting at 0.
    pub fn new() -> Self {
        Self::with_start(0)
    }

    /// Test-only: an empty deque whose top/bottom indices start at
    /// `start`, so wraparound at the slot mask can be exercised directly
    /// instead of after `DEQUE_CAP` warm-up operations.
    #[cfg(any(test, graft_check))]
    pub fn new_at(start: i64) -> Self {
        Self::with_start(start)
    }

    fn with_start(start: i64) -> Self {
        let slots = (0..DEQUE_CAP)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Deque {
            top: AtomicI64::new(start),
            bottom: AtomicI64::new(start),
            slots,
        }
    }
}

impl Default for Deque {
    fn default() -> Self {
        Self::new()
    }
}

impl Deque {
    /// Owner-only. Returns the task back if the deque is full.
    ///
    /// The capacity refusal is load-bearing, not an optimization: the slot
    /// array is never resized, so accepting element `DEQUE_CAP` would write
    /// slot `b & MASK` — the same physical slot as the oldest live entry —
    /// overwriting a raw task pointer a thief may be about to read (a leak
    /// at best, a double-run at worst). Callers must route a refused task
    /// to the injector.
    pub fn push(&self, task: TaskPtr) -> Result<(), TaskPtr> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        debug_assert!(
            (0..=DEQUE_CAP as i64).contains(&(b - t)),
            "deque size invariant violated: bottom {b} top {t}"
        );
        if b - t >= DEQUE_CAP as i64 {
            return Err(task);
        }
        self.slots[(b & MASK) as usize].store(task.0, Ordering::Relaxed);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Owner-only pop from the bottom.
    pub fn take(&self) -> Option<TaskPtr> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Deque was already empty.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let ptr = self.slots[(b & MASK) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race against thieves via CAS on top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        Some(TaskPtr(ptr))
    }

    /// Thief-side steal from the top.
    pub fn steal(&self) -> Option<TaskPtr> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Read the slot before the CAS: if the CAS succeeds we own this
            // pointer; if it fails we never touch it.
            let ptr = self.slots[(t & MASK) as usize].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(TaskPtr(ptr));
            }
            // Lost the race (to the owner or another thief); retry.
        }
    }
}

struct PoolState {
    injector: VecDeque<TaskPtr>,
    shutdown: bool,
}

/// Shared pool state. `threads` is the total executor count: `threads - 1`
/// spawned workers plus the calling thread, which participates in every
/// batch it submits.
pub struct PoolInner {
    threads: usize,
    deques: Vec<Deque>,
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl PoolInner {
    /// Number of executors (workers + participating caller).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Push a task onto the injector and wake one sleeper.
    pub fn inject(&self, task: TaskPtr) {
        let mut st = self.state.lock().unwrap();
        st.injector.push_back(task);
        drop(st);
        self.cv.notify_one();
    }

    fn inject_many(&self, tasks: impl IntoIterator<Item = TaskPtr>) {
        let mut st = self.state.lock().unwrap();
        st.injector.extend(tasks);
        drop(st);
        self.cv.notify_all();
    }

    /// Grab one task from the injector without blocking.
    fn pop_injector(&self) -> Option<TaskPtr> {
        self.state.lock().unwrap().injector.pop_front()
    }

    /// Pop from this executor's own deque, if it has one.
    fn take_own(&self, own_index: Option<usize>) -> Option<TaskPtr> {
        own_index.and_then(|i| self.deques[i].take())
    }

    /// Try to find any runnable task: own deque (if a worker), then the
    /// injector, then steal from peers.
    pub fn find_task(&self, own_index: Option<usize>) -> Option<TaskPtr> {
        if let Some(t) = self.take_own(own_index) {
            return Some(t);
        }
        self.find_foreign(own_index)
    }

    /// Find a task NOT from our own deque: the injector, then steals.
    fn find_foreign(&self, own_index: Option<usize>) -> Option<TaskPtr> {
        if let Some(t) = self.pop_injector() {
            return Some(t);
        }
        let n = self.deques.len();
        let start = own_index.map(|i| i + 1).unwrap_or(0);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == own_index {
                continue;
            }
            if let Some(t) = self.deques[j].steal() {
                return Some(t);
            }
        }
        None
    }

    /// Worker main loop: run tasks until shutdown.
    fn worker_loop(self: &Arc<Self>, index: usize) {
        WORKER_CTX.with(|ctx| {
            *ctx.borrow_mut() = Some(WorkerCtx {
                pool: Arc::clone(self),
                index,
            });
        });
        loop {
            if let Some(task) = self.find_task(Some(index)) {
                run_task(task);
                continue;
            }
            // Nothing found: sleep until woken. Re-check the injector under
            // the lock so a push between our scan and the wait isn't lost.
            let mut st = self.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(task) = st.injector.pop_front() {
                    drop(st);
                    run_task(task);
                    break;
                }
                // Timed wait: steals from peer deques aren't signalled via
                // the condvar, so wake periodically to rescan.
                let (guard, _timeout) = self.cv.wait_timeout(st, Duration::from_millis(1)).unwrap();
                st = guard;
                if st.injector.is_empty() && !st.shutdown {
                    // Scan deques outside the lock.
                    drop(st);
                    if let Some(task) = self.find_task(Some(index)) {
                        run_task(task);
                        break;
                    }
                    st = self.state.lock().unwrap();
                }
            }
        }
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        while let Some(task) = st.injector.pop_front() {
            task.discard();
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Run a task, swallowing panics. Batch tasks capture their own panics into
/// the batch latch before this sees them; a panic reaching here would be a
/// bug in the shim itself, so abort loudly rather than poisoning a worker.
pub fn run_task(task: TaskPtr) {
    if panic::catch_unwind(AssertUnwindSafe(|| task.run())).is_err() {
        // All tasks submitted through execute_batch/join/scope wrap user
        // code in catch_unwind already, so this is unreachable in practice.
        eprintln!("graft-rayon: internal task panicked; worker continuing");
    }
}

struct WorkerCtx {
    pool: Arc<PoolInner>,
    index: usize,
}

/// Maximum nesting of *adopted* (stolen or injected) tasks run while a
/// thread waits on a latch. Running tasks from one's own deque is always
/// allowed (depth there is bounded by the join-tree depth), but adopting an
/// unrelated subtree stacks its whole depth on top of ours; unbounded
/// adoption overflows the stack under recursive `join` workloads. Capped
/// waiters park instead — progress never depends on adoption, because every
/// task's own subtree is runnable by its owner or by a thief at depth 0.
const HELP_STEAL_CAP: usize = 8;

thread_local! {
    static WORKER_CTX: std::cell::RefCell<Option<WorkerCtx>> =
        const { std::cell::RefCell::new(None) };
    /// Current nesting depth of adopted tasks on this thread's stack.
    static STEAL_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// Stack of pools entered via `ThreadPool::install`, innermost last.
    static INSTALLED: std::cell::RefCell<Vec<Arc<PoolInner>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Handle owning a pool's worker threads; dropping it shuts the pool down.
pub(crate) struct PoolHandle {
    pub(crate) inner: Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PoolHandle {
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let spawned = threads - 1;
        let inner = Arc::new(PoolInner {
            threads,
            deques: (0..spawned).map(|_| Deque::new()).collect(),
            state: Mutex::new(PoolState {
                injector: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..spawned)
            .map(|i| {
                let pool = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("graft-rayon-{i}"))
                    // Headroom for deep solver recursion plus adopted tasks.
                    .stack_size(8 << 20)
                    .spawn(move || pool.worker_loop(i))
                    .expect("graft-rayon: failed to spawn worker thread")
            })
            .collect();
        PoolHandle { inner, workers }
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.inner.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool + thread-count resolution
// ---------------------------------------------------------------------------

static GLOBAL_POOL: OnceLock<PoolHandle> = OnceLock::new();
static GLOBAL_CONFIG: OnceLock<usize> = OnceLock::new();

/// `GRAFT_THREADS` env override, parsed once. Values < 1 are treated as 1.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GRAFT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// Ambient thread count when no explicit pool is in play: `build_global`
/// configuration wins, then `GRAFT_THREADS`, then 1.
///
/// The default of 1 (rather than the machine's parallelism) is deliberate:
/// every recorded matching and stats byte in the repo was produced by the
/// sequential shim, and ambient solves must stay reproducible unless the
/// user opts into concurrency.
pub(crate) fn default_threads() -> usize {
    if let Some(&n) = GLOBAL_CONFIG.get() {
        return n;
    }
    env_threads().unwrap_or(1)
}

/// Record the global pool configuration. Errors if already configured, or
/// if the global pool was already lazily built (mirrors upstream rayon).
pub(crate) fn configure_global(threads: usize) -> Result<(), ()> {
    if GLOBAL_POOL.get().is_some() {
        return Err(());
    }
    let wanted = if threads == 0 {
        env_threads().unwrap_or(1)
    } else {
        threads
    };
    let mut fresh = false;
    GLOBAL_CONFIG.get_or_init(|| {
        fresh = true;
        wanted
    });
    if fresh {
        Ok(())
    } else {
        Err(())
    }
}

/// The global pool, built lazily at the ambient size. Returns `None` when
/// the ambient size is 1 (pure sequential — no pool needed).
fn global_pool() -> Option<&'static Arc<PoolInner>> {
    let n = default_threads();
    if n <= 1 {
        return None;
    }
    Some(&GLOBAL_POOL.get_or_init(|| PoolHandle::new(n)).inner)
}

/// The pool that parallel work on the current thread should target:
/// the worker's own pool, else the innermost `install`ed pool, else the
/// global pool (if the ambient size is > 1).
pub(crate) fn current_pool_for_work() -> Option<Arc<PoolInner>> {
    let worker = WORKER_CTX.with(|ctx| ctx.borrow().as_ref().map(|c| Arc::clone(&c.pool)));
    if let Some(p) = worker {
        return Some(p);
    }
    let installed = INSTALLED.with(|s| s.borrow().last().cloned());
    if let Some(p) = installed {
        if p.num_threads() <= 1 {
            return None;
        }
        return Some(p);
    }
    global_pool().cloned()
}

/// Thread count visible to callers (`rayon::current_num_threads`).
pub(crate) fn current_num_threads() -> usize {
    let worker = WORKER_CTX.with(|ctx| ctx.borrow().as_ref().map(|c| c.pool.num_threads()));
    if let Some(n) = worker {
        return n;
    }
    let installed = INSTALLED.with(|s| s.borrow().last().map(|p| p.num_threads()));
    if let Some(n) = installed {
        return n;
    }
    default_threads()
}

/// RAII guard for `ThreadPool::install` nesting.
pub(crate) struct InstallGuard;

pub(crate) fn push_installed(pool: Arc<PoolInner>) -> InstallGuard {
    INSTALLED.with(|s| s.borrow_mut().push(pool));
    InstallGuard
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

// ---------------------------------------------------------------------------
// Latches + batch execution
// ---------------------------------------------------------------------------

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Counts outstanding tasks; the waiter helps with pool work until zero.
pub struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

impl Latch {
    /// A latch expecting `count` completions.
    pub fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Count one task down, recording the first panic payload seen.
    pub fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        let done = st.remaining == 0;
        drop(st);
        if done {
            self.cv.notify_all();
        }
    }

    /// Raise the expected completion count by `n`.
    pub fn add(&self, n: usize) {
        self.state.lock().unwrap().remaining += n;
    }

    /// Test-only: block on the latch without helping with pool work — a
    /// pure condvar wait. The model suites use this to check the latch
    /// handoff protocol itself with no deque traffic in the schedule space.
    #[cfg(graft_check)]
    pub fn wait_parked(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = self.state.lock().unwrap();
        while st.remaining != 0 {
            st = self.cv.wait(st).unwrap();
        }
        st.panic.take()
    }

    /// Block until all tasks complete, running pool work while waiting.
    /// Returns the first captured panic payload, if any.
    ///
    /// Own-deque tasks run freely (that is how the task we are waiting on
    /// gets executed when nobody stole it); foreign tasks are adopted only
    /// up to [`HELP_STEAL_CAP`] nested levels to bound stack growth.
    pub fn wait_helping(
        &self,
        pool: &Arc<PoolInner>,
        own_index: Option<usize>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            if let Some(task) = pool.take_own(own_index) {
                run_task(task);
                continue;
            }
            {
                let mut st = self.state.lock().unwrap();
                if st.remaining == 0 {
                    return st.panic.take();
                }
            }
            let depth = STEAL_DEPTH.with(|d| d.get());
            if depth < HELP_STEAL_CAP {
                if let Some(task) = pool.find_foreign(own_index) {
                    STEAL_DEPTH.with(|d| d.set(depth + 1));
                    run_task(task);
                    STEAL_DEPTH.with(|d| d.set(depth));
                    continue;
                }
            }
            // Short timed wait: the task we're waiting on may be running on
            // another thread (nothing to help with), or new work may appear
            // in a deque we can't be signalled about.
            let st = self.state.lock().unwrap();
            if st.remaining == 0 {
                let mut st = st;
                return st.panic.take();
            }
            let _ = self
                .cv
                .wait_timeout(st, Duration::from_micros(100))
                .unwrap();
        }
    }
}

fn worker_index_on(pool: &Arc<PoolInner>) -> Option<usize> {
    WORKER_CTX.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .filter(|c| Arc::ptr_eq(&c.pool, pool))
            .map(|c| c.index)
    })
}

/// Erase a closure's lifetime so it can be queued on the pool.
///
/// SAFETY (caller contract): the returned task must be *completed* (run or
/// its latch otherwise counted down) before `'a` ends. All call sites below
/// block on a latch that counts the task, so borrowed captures stay alive.
unsafe fn erase_lifetime<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> TaskObj {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, TaskObj>(task)
}

/// Run `work` over `pieces` on the pool, returning results in piece order.
/// The calling thread participates. Panics in any piece are re-thrown here
/// after every piece has finished.
pub fn execute_batch<S, T, W>(pool: &Arc<PoolInner>, pieces: Vec<S>, work: &W) -> Vec<T>
where
    S: Send,
    T: Send,
    W: Fn(usize, S) -> T + Sync,
{
    let n = pieces.len();
    if n == 0 {
        return Vec::new();
    }
    let latch = Latch::new(n);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let own = worker_index_on(pool);

    {
        let latch = &latch;
        let mut queued: Vec<TaskPtr> = Vec::with_capacity(n);
        for (idx, piece) in pieces.into_iter().enumerate() {
            let tx = tx.clone();
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let res = panic::catch_unwind(AssertUnwindSafe(|| work(idx, piece)));
                match res {
                    Ok(v) => {
                        let _ = tx.send((idx, v));
                        latch.complete(None);
                    }
                    Err(p) => latch.complete(Some(p)),
                }
            });
            // SAFETY: we wait on `latch` below before returning, so the
            // borrows of `work`, `tx`, and `latch` outlive every task.
            let task = TaskPtr::new(unsafe { erase_lifetime(task) });
            if let Some(i) = own {
                match pool.deques[i].push(task) {
                    Ok(()) => pool.cv.notify_one(),
                    Err(t) => pool.inject(t),
                }
            } else {
                queued.push(task);
            }
        }
        if !queued.is_empty() {
            pool.inject_many(queued);
        }
        drop(tx);
        let panic_payload = latch.wait_helping(pool, own);
        if let Some(p) = panic_payload {
            panic::resume_unwind(p);
        }
    }

    // Every send happens-before its task's `latch.complete`, and the latch
    // hit zero before `wait_helping` returned, so all results are already
    // in the channel: drain without blocking. (A blocking `iter()` would
    // wait for the last task's `tx` clone to *drop* — an uninstrumented
    // instant after its completion that a model-checked schedule may not
    // have reached yet.)
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (idx, v) in rx.try_iter() {
        slots[idx] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("graft-rayon: batch piece missing result"))
        .collect()
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Potentially-parallel pair execution with rayon's semantics: `a` runs on
/// the calling thread; `b` may be stolen. If both panic, `a`'s payload wins.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = match current_pool_for_work() {
        Some(p) if p.num_threads() > 1 => p,
        _ => return (oper_a(), oper_b()),
    };
    let own = worker_index_on(&pool);

    let latch = Latch::new(1);
    let mut b_result: Option<RB> = None;
    {
        let latch = &latch;
        let b_slot = &mut b_result;
        let task: Box<dyn FnOnce() + Send + '_> =
            Box::new(
                move || match panic::catch_unwind(AssertUnwindSafe(oper_b)) {
                    Ok(v) => {
                        *b_slot = Some(v);
                        latch.complete(None);
                    }
                    Err(p) => latch.complete(Some(p)),
                },
            );
        // SAFETY: we block on `latch` before this scope ends.
        let task = TaskPtr::new(unsafe { erase_lifetime(task) });
        if let Some(i) = own {
            match pool.deques[i].push(task) {
                Ok(()) => pool.cv.notify_one(),
                Err(t) => pool.inject(t),
            }
        } else {
            pool.inject(task);
        }

        let a_result = panic::catch_unwind(AssertUnwindSafe(oper_a));
        let b_panic = latch.wait_helping(&pool, own);
        match (a_result, b_panic) {
            (Ok(ra), None) => {
                let rb = b_result.take().expect("graft-rayon: join b missing result");
                (ra, rb)
            }
            (Err(pa), _) => panic::resume_unwind(pa),
            (Ok(_), Some(pb)) => panic::resume_unwind(pb),
        }
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// Scope handle for structured task spawning (subset of rayon's `Scope`).
pub struct Scope<'scope> {
    pool: Option<Arc<PoolInner>>,
    latch: Arc<Latch>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may run concurrently with the scope body. Borrowed
    /// captures must outlive `'scope`; the scope waits for all spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let pool = match &self.pool {
            Some(p) => Arc::clone(p),
            None => {
                // Sequential scope: run inline.
                f(self);
                return;
            }
        };
        self.latch.add(1);
        let latch = Arc::clone(&self.latch);
        let scope_copy = Scope {
            pool: Some(Arc::clone(&pool)),
            latch: Arc::clone(&self.latch),
            _marker: std::marker::PhantomData,
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let res = panic::catch_unwind(AssertUnwindSafe(|| f(&scope_copy)));
            latch.complete(res.err());
        });
        // SAFETY: `scope()` blocks on the latch before returning, so 'scope
        // borrows stay live until the task completes.
        let task = TaskPtr::new(unsafe { erase_lifetime(task) });
        if let Some(i) = worker_index_on(&pool) {
            match pool.deques[i].push(task) {
                Ok(()) => pool.cv.notify_one(),
                Err(t) => pool.inject(t),
            }
        } else {
            pool.inject(task);
        }
    }
}

/// Create a scope: the body runs on the calling thread; spawned tasks run on
/// the pool; the call returns only after every spawn has finished. Panics
/// from spawns (or the body) propagate after the scope completes.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let pool = current_pool_for_work().filter(|p| p.num_threads() > 1);
    let latch = Arc::new(Latch::new(0));
    let s = Scope {
        pool: pool.clone(),
        latch: Arc::clone(&latch),
        _marker: std::marker::PhantomData,
    };
    let body_result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    let spawn_panic = if let Some(p) = &pool {
        let own = worker_index_on(p);
        latch.wait_helping(p, own)
    } else {
        None
    };
    match (body_result, spawn_panic) {
        (Ok(r), None) => r,
        (Err(p), _) => panic::resume_unwind(p),
        (Ok(_), Some(p)) => panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------------------
// Execution planning for parallel iterators
// ---------------------------------------------------------------------------

/// Minimum items per piece before splitting is worthwhile.
const GRAIN: usize = 32;
/// Oversubscription factor: pieces per executor, for steal-based balancing.
const PIECES_PER_THREAD: usize = 4;

/// How a parallel-iterator consumption should execute.
pub(crate) enum Plan {
    /// Run the exact sequential code path on the calling thread.
    Seq,
    /// Split into `pieces` chunks and run them on the pool.
    Par(Arc<PoolInner>, usize),
}

/// Decide Seq vs Par for an operation over `len` items.
pub(crate) fn plan(len: usize) -> Plan {
    if len < 2 {
        return Plan::Seq;
    }
    let pool = match current_pool_for_work() {
        Some(p) if p.num_threads() > 1 => p,
        _ => return Plan::Seq,
    };
    let threads = pool.num_threads();
    let pieces = len.div_ceil(GRAIN).min(threads * PIECES_PER_THREAD).max(1);
    if pieces <= 1 {
        return Plan::Seq;
    }
    Plan::Par(pool, pieces)
}

/// Test-only surface for the graft-check model suites.
///
/// `pool` is a private module, so none of this is reachable from normal
/// downstream builds; under `--cfg graft_check` the crate root re-exports
/// it (`#[doc(hidden)]`) so the model tests in `tests/` can drive the
/// executor internals — deques, latches, task pointers, and a worker-less
/// pool — from checker-controlled model threads.
#[cfg(graft_check)]
pub mod check_api {
    use super::*;
    pub use super::{execute_batch, run_task, Deque, Latch, PoolInner, TaskPtr, DEQUE_CAP};

    /// A pool with `threads` executor slots (one deque each) but NO OS
    /// worker threads. Model tests spawn instrumented model threads and
    /// drive [`PoolInner::find_task`] / [`run_task`] themselves, so the
    /// checker controls every interleaving instead of racing real workers
    /// it cannot schedule.
    pub fn bare_pool(threads: usize) -> Arc<PoolInner> {
        Arc::new(PoolInner {
            threads,
            deques: (0..threads).map(|_| Deque::new()).collect(),
            state: Mutex::new(PoolState {
                injector: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_runs_all_pieces_in_order() {
        let pool = PoolHandle::new(4);
        let pieces: Vec<usize> = (0..100).collect();
        let out = execute_batch(&pool.inner, pieces, &|_idx, v: usize| v * 2);
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batch_panic_propagates_after_completion() {
        let pool = PoolHandle::new(4);
        let completed = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            execute_batch(&pool.inner, (0..16).collect::<Vec<usize>>(), &|_i, v| {
                if v == 7 {
                    panic!("boom {v}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                v
            })
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn join_runs_both_sides() {
        let pool = PoolHandle::new(4);
        let _guard = push_installed(Arc::clone(&pool.inner));
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn nested_join_computes_correctly() {
        let pool = PoolHandle::new(4);
        let _guard = push_installed(Arc::clone(&pool.inner));
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_panic_in_a_wins() {
        let pool = PoolHandle::new(2);
        let _guard = push_installed(Arc::clone(&pool.inner));
        let res = panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || -> u32 { panic!("panic-a") },
                || -> u32 { panic!("panic-b") },
            )
        }));
        let payload = res.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "panic-a");
    }

    #[test]
    fn scope_waits_for_spawns() {
        let pool = PoolHandle::new(4);
        let _guard = push_installed(Arc::clone(&pool.inner));
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn deque_push_past_capacity_refused() {
        let d = Deque::new();
        for _ in 0..DEQUE_CAP {
            d.push(TaskPtr::new(Box::new(|| {}))).ok().unwrap();
        }
        // Slot DEQUE_CAP would alias slot 0 under the mask; push must
        // refuse and hand the task back instead of overwriting it.
        let overflow = TaskPtr::new(Box::new(|| {}));
        let raw = overflow.raw();
        match d.push(overflow) {
            Ok(()) => panic!("push past capacity must be refused"),
            Err(t) => {
                assert_eq!(t.raw(), raw, "refused task handed back intact");
                t.discard();
            }
        }
        // Draining one slot makes room again.
        d.take().unwrap().discard();
        d.push(TaskPtr::new(Box::new(|| {}))).ok().unwrap();
        while let Some(t) = d.steal() {
            t.discard();
        }
    }

    #[test]
    fn deque_final_element_take_vs_steal_boundary() {
        // Owner side: taking the last element goes through the t == b CAS
        // race window; sequentially the owner must always win it.
        let d = Deque::new();
        let t = TaskPtr::new(Box::new(|| {}));
        let raw = t.raw();
        d.push(t).ok().unwrap();
        let got = d.take().expect("owner wins the final-element CAS");
        assert_eq!(got.raw(), raw);
        got.discard();
        assert!(d.take().is_none());
        assert!(d.steal().is_none());

        // Thief side: stealing the only element empties the deque for the
        // owner too.
        let t = TaskPtr::new(Box::new(|| {}));
        let raw = t.raw();
        d.push(t).ok().unwrap();
        let got = d.steal().expect("thief claims the only element");
        assert_eq!(got.raw(), raw);
        got.discard();
        assert!(d.take().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn deque_wraparound_preserves_fifo_steal_order() {
        // Indices straddle the mask boundary: pushes land in slots
        // DEQUE_CAP-2, DEQUE_CAP-1, 0, 1 while logical order is FIFO for
        // thieves and LIFO for the owner.
        let d = Deque::new_at(DEQUE_CAP as i64 - 2);
        let mut raws = Vec::new();
        for _ in 0..4 {
            let t = TaskPtr::new(Box::new(|| {}));
            raws.push(t.raw());
            d.push(t).ok().unwrap();
        }
        for &expect in &raws[..2] {
            let got = d.steal().unwrap();
            assert_eq!(got.raw(), expect, "steals come oldest-first");
            got.discard();
        }
        for &expect in raws[2..].iter().rev() {
            let got = d.take().unwrap();
            assert_eq!(got.raw(), expect, "takes come newest-first");
            got.discard();
        }
        assert!(d.take().is_none());
    }

    #[test]
    fn deque_push_take_steal_roundtrip() {
        let d = Deque::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            let t = TaskPtr::new(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
            d.push(t).ok().unwrap();
        }
        // Owner takes half, thief steals half.
        for _ in 0..5 {
            d.take().unwrap().run();
        }
        for _ in 0..5 {
            d.steal().unwrap().run();
        }
        assert!(d.take().is_none());
        assert!(d.steal().is_none());
        assert_eq!(ran.load(Ordering::Relaxed), 10);
    }
}
