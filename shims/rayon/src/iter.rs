//! The parallel-iterator surface, executed sequentially.
//!
//! [`Par`] wraps an ordinary [`Iterator`] and exposes the rayon adaptor
//! and consumer names the workspace uses. Order-sensitive consumers
//! (`collect`, `zip`, `enumerate`) behave exactly like their `std`
//! counterparts, which matches rayon's guarantees for indexed parallel
//! iterators.

/// A "parallel" iterator: a thin wrapper over a sequential one.
#[derive(Debug, Clone)]
pub struct Par<I>(I);

/// Conversion into a [`Par`] iterator (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The type of item this iterator yields.
    type Item;
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a [`Par`] iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Item = I::Item;
    type Iter = I;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

/// `par_iter` on slices (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The type of shared reference yielded.
    type Item: 'a;
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `&self` "in parallel".
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

/// `par_iter_mut` on slices (mirrors
/// `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The type of exclusive reference yielded.
    type Item: 'a;
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `&mut self` "in parallel".
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

/// `par_chunks` on slices (mirrors `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T> {
    /// Iterates over `chunk_size`-sized chunks "in parallel".
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

impl<I: Iterator> Par<I> {
    /// Maps each item through `f`.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Keeps items satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    /// Pairs items with those of another parallel iterator, in order.
    pub fn zip<Other: IntoParallelIterator>(
        self,
        other: Other,
    ) -> Par<std::iter::Zip<I, Other::Iter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// Attaches the item index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Folds items into per-task accumulators. Rayon yields one
    /// accumulator per task; the sequential shim yields exactly one, which
    /// `reduce` then merges the same way.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Reduces all items with `op`, starting from `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Calls `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Calls `f` on every item with a per-task state created by `init`
    /// (one state total in the sequential shim).
    pub fn for_each_init<T, INIT, F>(self, init: INIT, mut f: F)
    where
        INIT: Fn() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut state = init();
        self.0.for_each(|item| f(&mut state, item));
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Sum of all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Collects into `C`, preserving order (as rayon does for indexed
    /// iterators).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_reduce_matches_rayon_semantics() {
        let v: Vec<u32> = (0..100u32)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..50usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(v, (0..50).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate() {
        let mut a = vec![0u32; 4];
        let b = vec![10u32, 20, 30, 40];
        a.par_iter_mut()
            .zip(b.into_par_iter())
            .enumerate()
            .for_each(|(i, (slot, val))| *slot = val + i as u32);
        assert_eq!(a, vec![10, 21, 32, 43]);
    }

    #[test]
    fn chunks_and_for_each_init() {
        let data: Vec<u32> = (0..10).collect();
        let sums: Vec<u64> = data
            .par_chunks(3)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);

        let total = std::sync::atomic::AtomicU64::new(0);
        (0..10u64).into_par_iter().for_each_init(
            || &total,
            |t, x| {
                t.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_install_runs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
