//! The parallel-iterator surface, executed on the work-stealing pool.
//!
//! [`Par`] wraps a [`Chunk`]: a splittable description of work that can be
//! cut into independent pieces, each of which lowers to an ordinary
//! sequential [`Iterator`] on a worker thread. Consumers (`for_each`,
//! `fold`/`reduce`, `collect`, `count`, `sum`) split the chunk into
//! `O(threads)` pieces, run them on the pool via `pool::execute_batch`,
//! and reassemble results **in piece
//! order**, which preserves rayon's ordering guarantees for indexed
//! parallel iterators (`collect`, `zip`, `enumerate`).
//!
//! When the effective thread count is 1 (no pool installed, ambient size 1,
//! or the input is too small to split) every consumer runs the exact
//! single-chunk sequential code path on the calling thread — bit-identical
//! to the historical sequential shim.

use crate::pool::{self, Plan};

/// A splittable unit of parallel work.
///
/// Adaptors (`map`, `filter`, ...) wrap chunks in further chunks; the
/// closure travels with the chunk (hence `Clone` bounds on adaptor
/// closures) so the mapping work itself runs on worker threads.
pub trait Chunk: Sized + Send {
    /// Item yielded when the chunk is lowered to a sequential iterator.
    type Item: Send;
    /// The sequential iterator a single piece lowers to.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Number of underlying positions. For filtering chunks this is an
    /// upper bound (the pre-filter length), used only to decide splits.
    fn len(&self) -> usize;
    /// True when [`Chunk::len`] is zero.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits at position `mid` (`0 < mid < len`) into `[0, mid)` and
    /// `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Lowers this piece to a sequential iterator.
    fn into_seq(self) -> Self::SeqIter;
}

/// Marker for length-preserving chunks: `len` is exact and every position
/// yields exactly one item. Required by order-sensitive pairing adaptors
/// (`zip`, `enumerate`), mirroring rayon's `IndexedParallelIterator`.
/// `filter`/`filter_map` chunks deliberately do not implement it.
pub trait IndexedChunk: Chunk {}

/// Recursively split `chunk` into at most `pieces` contiguous pieces of
/// near-equal length, appended to `out` in left-to-right order.
fn split_pieces<C: Chunk>(chunk: C, pieces: usize, out: &mut Vec<C>) {
    if pieces <= 1 || chunk.len() < 2 {
        out.push(chunk);
        return;
    }
    let left = pieces / 2;
    let mid = (chunk.len() * left / pieces).clamp(1, chunk.len() - 1);
    let (l, r) = chunk.split_at(mid);
    split_pieces(l, left, out);
    split_pieces(r, pieces - left, out);
}

/// A parallel iterator: a splittable [`Chunk`] plus the consumer methods
/// that execute it on the shim's work-stealing pool.
pub struct Par<C> {
    chunk: C,
}

/// Conversion into a [`Par`] iterator (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The type of item this iterator yields.
    type Item: Send;
    /// The underlying splittable chunk type.
    type Iter: Chunk<Item = Self::Item>;
    /// Converts `self` into a [`Par`] iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: Chunk> IntoParallelIterator for Par<C> {
    type Item = C::Item;
    type Iter = C;
    fn into_par_iter(self) -> Par<C> {
        self
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Chunk over a half-open integer range.
#[derive(Debug, Clone, Copy)]
pub struct RangeChunk<T> {
    start: T,
    end: T,
}

macro_rules! range_chunk {
    ($ty:ty) => {
        impl Chunk for RangeChunk<$ty> {
            type Item = $ty;
            type SeqIter = std::ops::Range<$ty>;
            fn len(&self) -> usize {
                (self.end - self.start) as usize
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let m = self.start + mid as $ty;
                (
                    RangeChunk {
                        start: self.start,
                        end: m,
                    },
                    RangeChunk {
                        start: m,
                        end: self.end,
                    },
                )
            }
            fn into_seq(self) -> Self::SeqIter {
                self.start..self.end
            }
        }

        impl IndexedChunk for RangeChunk<$ty> {}

        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = RangeChunk<$ty>;
            fn into_par_iter(self) -> Par<Self::Iter> {
                // Normalize inverted ranges to empty so `len` can't wrap.
                let end = self.end.max(self.start);
                Par {
                    chunk: RangeChunk {
                        start: self.start,
                        end,
                    },
                }
            }
        }
    };
}

range_chunk!(u32);
range_chunk!(u64);
range_chunk!(usize);

/// Chunk over an owned vector (splits by `split_off`).
#[derive(Debug)]
pub struct VecChunk<T>(Vec<T>);

impl<T: Send> Chunk for VecChunk<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let right = self.0.split_off(mid);
        (self, VecChunk(right))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.into_iter()
    }
}

impl<T: Send> IndexedChunk for VecChunk<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecChunk<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par {
            chunk: VecChunk(self),
        }
    }
}

/// Chunk over a shared slice, yielding `&T`.
#[derive(Debug)]
pub struct SliceChunk<'a, T>(&'a [T]);

impl<'a, T: Sync> Chunk for SliceChunk<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(mid);
        (SliceChunk(l), SliceChunk(r))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter()
    }
}

impl<T: Sync> IndexedChunk for SliceChunk<'_, T> {}

/// Chunk over an exclusive slice, yielding `&mut T`.
#[derive(Debug)]
pub struct SliceMutChunk<'a, T>(&'a mut [T]);

impl<'a, T: Send> Chunk for SliceMutChunk<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        // UFCS by-value call: consumes the owned `&'a mut [T]` so the
        // halves keep the full `'a` lifetime (no reborrow shortening).
        let (l, r) = <[T]>::split_at_mut(self.0, mid);
        (SliceMutChunk(l), SliceMutChunk(r))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter_mut()
    }
}

impl<T: Send> IndexedChunk for SliceMutChunk<'_, T> {}

/// Chunk over fixed-size windows of a slice, yielding `&[T]`.
#[derive(Debug)]
pub struct ChunksChunk<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Chunk for ChunksChunk<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        // Split on a window boundary so window contents are unchanged.
        let (l, r) = self.slice.split_at(mid * self.size);
        (
            ChunksChunk {
                slice: l,
                size: self.size,
            },
            ChunksChunk {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

impl<T: Sync> IndexedChunk for ChunksChunk<'_, T> {}

/// `par_iter` on slices (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The type of shared reference yielded.
    type Item: Send + 'a;
    /// The underlying splittable chunk type.
    type Iter: Chunk<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceChunk<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par {
            chunk: SliceChunk(self),
        }
    }
}

/// `par_iter_mut` on slices (mirrors
/// `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The type of exclusive reference yielded.
    type Item: Send + 'a;
    /// The underlying splittable chunk type.
    type Iter: Chunk<Item = Self::Item>;
    /// Iterates `&mut self` in parallel.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceMutChunk<'a, T>;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par {
            chunk: SliceMutChunk(self),
        }
    }
}

/// `par_chunks` on slices (mirrors `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Iterates over `chunk_size`-sized windows in parallel.
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksChunk<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksChunk<'_, T>> {
        assert!(chunk_size > 0, "par_chunks: chunk_size must be non-zero");
        Par {
            chunk: ChunksChunk {
                slice: self,
                size: chunk_size,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Adaptor chunks
// ---------------------------------------------------------------------------

/// Chunk adaptor applying a mapping closure per item.
#[derive(Debug)]
pub struct MapChunk<C, F> {
    base: C,
    f: F,
}

impl<C, R, F> Chunk for MapChunk<C, F>
where
    C: Chunk,
    R: Send,
    F: Fn(C::Item) -> R + Clone + Send,
{
    type Item = R;
    type SeqIter = std::iter::Map<C::SeqIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            MapChunk {
                base: l,
                f: self.f.clone(),
            },
            MapChunk { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().map(self.f)
    }
}

impl<C, R, F> IndexedChunk for MapChunk<C, F>
where
    C: IndexedChunk,
    R: Send,
    F: Fn(C::Item) -> R + Clone + Send,
{
}

/// Chunk adaptor keeping items that satisfy a predicate. Not indexed:
/// its post-filter length is unknowable without running the predicate.
#[derive(Debug)]
pub struct FilterChunk<C, P> {
    base: C,
    pred: P,
}

impl<C, P> Chunk for FilterChunk<C, P>
where
    C: Chunk,
    P: Fn(&C::Item) -> bool + Clone + Send,
{
    type Item = C::Item;
    type SeqIter = std::iter::Filter<C::SeqIter, P>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FilterChunk {
                base: l,
                pred: self.pred.clone(),
            },
            FilterChunk {
                base: r,
                pred: self.pred,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().filter(self.pred)
    }
}

/// Chunk adaptor mapping and filtering in one pass. Not indexed.
#[derive(Debug)]
pub struct FilterMapChunk<C, F> {
    base: C,
    f: F,
}

impl<C, R, F> Chunk for FilterMapChunk<C, F>
where
    C: Chunk,
    R: Send,
    F: Fn(C::Item) -> Option<R> + Clone + Send,
{
    type Item = R;
    type SeqIter = std::iter::FilterMap<C::SeqIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FilterMapChunk {
                base: l,
                f: self.f.clone(),
            },
            FilterMapChunk { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().filter_map(self.f)
    }
}

/// Chunk adaptor pairing two indexed chunks positionally.
#[derive(Debug)]
pub struct ZipChunk<A, B> {
    a: A,
    b: B,
}

impl<A, B> Chunk for ZipChunk<A, B>
where
    A: IndexedChunk,
    B: IndexedChunk,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (ZipChunk { a: al, b: bl }, ZipChunk { a: ar, b: br })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

impl<A: IndexedChunk, B: IndexedChunk> IndexedChunk for ZipChunk<A, B> {}

/// Chunk adaptor attaching global item indices.
#[derive(Debug)]
pub struct EnumerateChunk<C> {
    base: C,
    offset: usize,
}

/// Sequential iterator for [`EnumerateChunk`]: like `Iterator::enumerate`
/// but starting at the piece's global offset.
#[derive(Debug)]
pub struct EnumSeq<I> {
    inner: I,
    idx: usize,
}

impl<I: Iterator> Iterator for EnumSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.idx;
        self.idx += 1;
        Some((i, item))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<C: IndexedChunk> Chunk for EnumerateChunk<C> {
    type Item = (usize, C::Item);
    type SeqIter = EnumSeq<C::SeqIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            EnumerateChunk {
                base: l,
                offset: self.offset,
            },
            EnumerateChunk {
                base: r,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumSeq {
            inner: self.base.into_seq(),
            idx: self.offset,
        }
    }
}

impl<C: IndexedChunk> IndexedChunk for EnumerateChunk<C> {}

// ---------------------------------------------------------------------------
// Adaptors + consumers on Par
// ---------------------------------------------------------------------------

impl<C: Chunk> Par<C> {
    /// Splits into pieces per the pool plan, runs `work` on each piece (the
    /// whole chunk when sequential), and returns results in piece order.
    fn drive<T, W>(self, work: W) -> Vec<T>
    where
        T: Send,
        W: Fn(C) -> T + Sync,
    {
        match pool::plan(self.chunk.len()) {
            Plan::Seq => vec![work(self.chunk)],
            Plan::Par(p, pieces) => {
                let mut parts = Vec::with_capacity(pieces);
                split_pieces(self.chunk, pieces, &mut parts);
                pool::execute_batch(&p, parts, &|_idx, c| work(c))
            }
        }
    }

    /// Maps each item through `f`.
    pub fn map<R, F>(self, f: F) -> Par<MapChunk<C, F>>
    where
        R: Send,
        F: Fn(C::Item) -> R + Clone + Send,
    {
        Par {
            chunk: MapChunk {
                base: self.chunk,
                f,
            },
        }
    }

    /// Keeps items satisfying `pred`.
    pub fn filter<P>(self, pred: P) -> Par<FilterChunk<C, P>>
    where
        P: Fn(&C::Item) -> bool + Clone + Send,
    {
        Par {
            chunk: FilterChunk {
                base: self.chunk,
                pred,
            },
        }
    }

    /// Maps and filters in one pass.
    pub fn filter_map<R, F>(self, f: F) -> Par<FilterMapChunk<C, F>>
    where
        R: Send,
        F: Fn(C::Item) -> Option<R> + Clone + Send,
    {
        Par {
            chunk: FilterMapChunk {
                base: self.chunk,
                f,
            },
        }
    }

    /// Pairs items with those of another parallel iterator, in order.
    /// Both sides must be indexed (length-preserving) chunks.
    pub fn zip<Other>(self, other: Other) -> Par<ZipChunk<C, Other::Iter>>
    where
        C: IndexedChunk,
        Other: IntoParallelIterator,
        Other::Iter: IndexedChunk,
    {
        Par {
            chunk: ZipChunk {
                a: self.chunk,
                b: other.into_par_iter().chunk,
            },
        }
    }

    /// Attaches the global item index. Requires an indexed chunk so piece
    /// offsets are exact.
    pub fn enumerate(self) -> Par<EnumerateChunk<C>>
    where
        C: IndexedChunk,
    {
        Par {
            chunk: EnumerateChunk {
                base: self.chunk,
                offset: 0,
            },
        }
    }

    /// Folds items into per-piece accumulators. Rayon yields one
    /// accumulator per task; this shim yields one per piece (exactly one
    /// when sequential), which `reduce` then merges in piece order.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<VecChunk<T>>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, C::Item) -> T + Sync,
    {
        let accs = self.drive(|c| c.into_seq().fold(identity(), &fold_op));
        Par {
            chunk: VecChunk(accs),
        }
    }

    /// Reduces all items with `op`. Each piece folds from `identity()`;
    /// piece results are merged left-to-right in piece order.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> C::Item
    where
        ID: Fn() -> C::Item + Sync,
        F: Fn(C::Item, C::Item) -> C::Item + Sync,
    {
        self.drive(|c| c.into_seq().fold(identity(), &op))
            .into_iter()
            .reduce(&op)
            .unwrap_or_else(identity)
    }

    /// Calls `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(C::Item) + Sync,
    {
        self.drive(|c| c.into_seq().for_each(&f));
    }

    /// Calls `f` on every item with a per-piece state created by `init`
    /// (one state total when sequential).
    pub fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, C::Item) + Sync,
    {
        self.drive(|c| {
            let mut state = init();
            c.into_seq().for_each(|item| f(&mut state, item));
        });
    }

    /// Number of items (post-filter).
    pub fn count(self) -> usize {
        self.drive(|c| c.into_seq().count()).into_iter().sum()
    }

    /// Sum of all items (per-piece partial sums, then summed).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<C::Item> + std::iter::Sum<S> + Send,
    {
        self.drive(|c| c.into_seq().sum::<S>()).into_iter().sum()
    }

    /// Collects into `B`, preserving item order (as rayon does for indexed
    /// iterators): each piece collects locally and the per-piece buffers
    /// are concatenated in piece order.
    pub fn collect<B: FromIterator<C::Item>>(self) -> B {
        self.drive(|c| c.into_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_reduce_matches_rayon_semantics() {
        let v: Vec<u32> = (0..100u32)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..50usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(v, (0..50).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate() {
        let mut a = vec![0u32; 4];
        let b = vec![10u32, 20, 30, 40];
        a.par_iter_mut()
            .zip(b.into_par_iter())
            .enumerate()
            .for_each(|(i, (slot, val))| *slot = val + i as u32);
        assert_eq!(a, vec![10, 21, 32, 43]);
    }

    #[test]
    fn chunks_and_for_each_init() {
        let data: Vec<u32> = (0..10).collect();
        let sums: Vec<u64> = data
            .par_chunks(3)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);

        let total = std::sync::atomic::AtomicU64::new(0);
        (0..10u64).into_par_iter().for_each_init(
            || &total,
            |t, x| {
                t.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_install_runs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
    }

    /// The same consumers, but forced through a real multi-thread pool so
    /// the parallel code paths (split, steal, reassemble) are exercised.
    fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(f)
    }

    #[test]
    fn parallel_collect_preserves_order_large() {
        let v: Vec<u64> = on_pool(4, || {
            (0..10_000u64).into_par_iter().map(|x| x * 3).collect()
        });
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn parallel_filter_collect_preserves_order() {
        let v: Vec<u32> = on_pool(4, || {
            (0..5_000u32)
                .into_par_iter()
                .filter(|x| x % 7 == 0)
                .collect()
        });
        assert_eq!(v, (0..5_000).filter(|x| x % 7 == 0).collect::<Vec<u32>>());
    }

    #[test]
    fn parallel_fold_reduce_associative_sum() {
        let total: u64 = on_pool(8, || {
            (0..100_000u64)
                .into_par_iter()
                .fold(|| 0u64, |acc, x| acc + x)
                .reduce(|| 0u64, |a, b| a + b)
        });
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn parallel_sum_and_count() {
        let (s, c) = on_pool(4, || {
            let s: u64 = (0..10_000u64).into_par_iter().sum();
            let c = (0..10_000u32)
                .into_par_iter()
                .filter(|x| x % 2 == 1)
                .count();
            (s, c)
        });
        assert_eq!(s, 10_000u64 * 9_999 / 2);
        assert_eq!(c, 5_000);
    }

    #[test]
    fn parallel_zip_enumerate_mut_slice() {
        let mut a = vec![0u64; 4096];
        let b: Vec<u64> = (0..4096u64).collect();
        on_pool(4, || {
            a.par_iter_mut()
                .zip(b.into_par_iter())
                .enumerate()
                .for_each(|(i, (slot, val))| *slot = val + i as u64);
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn parallel_for_each_init_flushes_all_pieces() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        on_pool(4, || {
            (0..50_000u64).into_par_iter().for_each_init(
                || 0u64,
                |local, _x| {
                    // Accumulate into piece-local state occasionally flushed.
                    *local += 1;
                    if *local == 1 {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                },
            );
        });
        // One init per piece, at least one piece.
        assert!(total.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn panic_in_parallel_task_propagates() {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            on_pool(4, || {
                (0..10_000u32).into_par_iter().for_each(|x| {
                    if x == 7_777 {
                        panic!("deliberate test panic");
                    }
                });
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn sequential_when_single_thread_pool_installed() {
        // num_threads=1 must take the pure sequential path.
        let v: Vec<u32> = on_pool(1, || (0..1_000u32).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(v, (1..=1_000).collect::<Vec<u32>>());
    }
}
