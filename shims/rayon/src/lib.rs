//! Offline stand-in for [rayon](https://crates.io/crates/rayon) with a real
//! work-stealing executor.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the subset of rayon's API the workspace uses. Unlike
//! the original sequential shim, execution is now genuinely parallel: a
//! hand-rolled pool of `std::thread` workers with chase-lev work-stealing
//! deques (see [`mod@iter`] for the iterator surface and `pool.rs` for the
//! executor). Semantics still match rayon: `fold` produces task-local
//! accumulators merged by `reduce`, `collect`/`zip`/`enumerate` preserve
//! order via indexed chunks, panics in tasks propagate to the caller, and
//! atomics written inside `for_each` are visible afterwards (the batch
//! latch is a full happens-before barrier).
//!
//! # Thread-count resolution
//!
//! The effective thread count is resolved in this order:
//!
//! 1. an explicit [`ThreadPoolBuilder::num_threads`] on a pool you `install`
//!    into (always wins — lets tests pin `threads=1` deterministically);
//! 2. a prior [`ThreadPoolBuilder::build_global`] configuration;
//! 3. the `GRAFT_THREADS` environment variable (parsed once, min 1);
//! 4. **1** — the ambient default stays sequential so recorded matchings
//!    and stats remain byte-identical unless concurrency is requested.
//!
//! With an effective count of 1 every combinator runs the exact sequential
//! code path on the calling thread — bit-identical to the old shim.
//!
//! Concurrency in the service layer (`graft-svc`) does not route through
//! this shim — it uses `std::thread` directly.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
mod pool;
pub mod prelude;

pub use pool::{join, scope, Scope};

// Executor internals for the graft-check model suites (and this crate's
// unit tests). Invisible in normal downstream builds.
#[cfg(graft_check)]
#[doc(hidden)]
pub use pool::check_api;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error returned by [`ThreadPoolBuilder::build_global`] when the global
/// pool was already initialized (mirrors upstream rayon's behavior).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads. `0` (the default) means "use the
    /// ambient default" (`build_global` config, then `GRAFT_THREADS`,
    /// then 1).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool with its own worker threads. A 1-thread pool spawns
    /// no workers and executes sequentially on the calling thread.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            pool::default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            handle: pool::PoolHandle::new(n),
        })
    }

    /// Configures the lazily-built global pool. Like upstream rayon, this
    /// errors if the global pool has already been configured or built.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pool::configure_global(self.num_threads).map_err(|()| ThreadPoolBuildError(()))
    }
}

/// A pool of worker threads (mirrors `rayon::ThreadPool`). Dropping the
/// pool shuts down and joins its workers.
pub struct ThreadPool {
    handle: pool::PoolHandle,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.current_num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool as the target for parallel work. `op`
    /// itself executes on the calling thread, which also participates in
    /// executing any parallel batches it submits.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = pool::push_installed(std::sync::Arc::clone(&self.handle.inner));
        op()
    }

    /// The thread count this pool was built with (workers + caller).
    pub fn current_num_threads(&self) -> usize {
        self.handle.inner.num_threads()
    }
}

/// Number of threads parallel work issued from the current thread would
/// use: the enclosing pool's size on a worker or under
/// [`ThreadPool::install`], otherwise the ambient default (`build_global`
/// config, then `GRAFT_THREADS`, then 1).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_thread_pool_reports_one_and_spawns_nothing() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        assert_eq!(pool.install(crate::current_num_threads), 1);
    }

    #[test]
    fn install_scopes_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn join_sequential_without_pool_still_returns_both() {
        let (a, b) = join(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn build_global_twice_errors() {
        // Both calls happen in this one test so ordering is deterministic
        // regardless of test interleaving.
        let first = ThreadPoolBuilder::new().num_threads(2).build_global();
        let second = ThreadPoolBuilder::new().num_threads(3).build_global();
        // Another test binary may not have configured it; within this
        // process the first call here either succeeds or something else
        // configured it already — the second call must always fail.
        assert!(second.is_err());
        if first.is_ok() {
            assert_eq!(current_num_threads(), 2);
        }
    }
}
