//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the subset of rayon's API that the workspace uses,
//! executed **sequentially** on the calling thread. Every combinator keeps
//! rayon's semantics (fold produces task-local accumulators merged by
//! `reduce`, `collect` preserves order, atomics written inside `for_each`
//! are visible afterwards), so the solver code is written exactly as it
//! would be against real rayon and switches back to the real crate by
//! flipping one `[workspace.dependencies]` entry when a registry is
//! available.
//!
//! Concurrency in the service layer (`graft-svc`) does not route through
//! this shim — it uses `std::thread` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod prelude;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
///
/// The requested thread count is recorded but execution stays on the
/// calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never actually
/// produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested number of threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (degenerate) pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// Degenerate stand-in for `rayon::ThreadPool`: `install` runs the closure
/// on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool (i.e. on the calling thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The thread count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Number of threads in the ambient pool; `1` in this sequential shim.
pub fn current_num_threads() -> usize {
    1
}

/// Runs two closures and returns both results (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
