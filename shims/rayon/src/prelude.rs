//! Glob-import surface mirroring `rayon::prelude`.

pub use crate::iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par, ParallelSlice,
};
