//! Offline stand-in for the `ctrlc` crate (the build environment has no
//! crates.io access; see the workspace `Cargo.toml`).
//!
//! Covers the one call this workspace uses: [`set_handler`], which runs a
//! user callback when the process receives SIGINT or SIGTERM. The real
//! crate uses a self-pipe; this shim keeps the signal handler
//! async-signal-safe by only storing to a `static` atomic, and runs the
//! user callback from a watcher thread that polls the flag. Polling
//! latency (≤50ms) is fine for the graceful-drain use case.
//!
//! On non-Unix platforms `set_handler` is a no-op that still returns
//! `Ok`: the service simply won't react to signals, which matches the
//! degraded behavior callers are expected to tolerate.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Error type mirroring `ctrlc::Error`.
#[derive(Debug)]
pub enum Error {
    /// A handler was already registered.
    MultipleHandlers,
    /// Registering the OS signal handler failed.
    System(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MultipleHandlers => write!(f, "a ctrl-c handler is already registered"),
            Error::System(e) => write!(f, "couldn't register signal handler: {e}"),
        }
    }
}

impl std::error::Error for Error {}

static SIGNALED: AtomicBool = AtomicBool::new(false);
static REGISTERED: AtomicBool = AtomicBool::new(false);
/// How many signals have been delivered (so repeated signals re-trigger
/// the callback, like the real crate).
static DELIVERIES: AtomicUsize = AtomicUsize::new(0);

#[cfg(unix)]
mod sys {
    use super::{DELIVERIES, SIGNALED};
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    // `signal(2)` is in every libc; binding it directly avoids a libc
    // crate dependency. The handler only touches atomics, which is
    // async-signal-safe.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
        DELIVERIES.fetch_add(1, Ordering::SeqCst);
    }

    pub fn install() -> std::io::Result<()> {
        const SIG_ERR: usize = usize::MAX;
        for sig in [SIGINT, SIGTERM] {
            let handler = on_signal as extern "C" fn(i32) as *const () as usize;
            let prev = unsafe { signal(sig, handler) };
            if prev == SIG_ERR {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

/// Registers `handler` to run on SIGINT or SIGTERM (the `termination`
/// feature of the real crate is always on here). The callback runs on a
/// dedicated watcher thread, not in signal context, so it may lock,
/// allocate, and block freely.
pub fn set_handler<F>(handler: F) -> Result<(), Error>
where
    F: FnMut() + Send + 'static,
{
    if REGISTERED.swap(true, Ordering::SeqCst) {
        return Err(Error::MultipleHandlers);
    }
    #[cfg(unix)]
    sys::install().map_err(Error::System)?;

    let mut handler = handler;
    std::thread::Builder::new()
        .name("ctrlc-watcher".into())
        .spawn(move || {
            let mut seen = 0usize;
            loop {
                let delivered = DELIVERIES.load(Ordering::SeqCst);
                if delivered > seen {
                    seen = delivered;
                    handler();
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
        .map_err(Error::System)?;
    Ok(())
}

/// Whether a signal has been received (shim extension used in tests).
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn handler_runs_on_sigterm() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        set_handler(move || {
            h.fetch_add(1, Ordering::SeqCst);
        })
        .expect("register");
        assert!(matches!(set_handler(|| {}), Err(Error::MultipleHandlers)));

        // Send ourselves SIGTERM via kill(2); bind it the same way the
        // shim binds signal(2).
        unsafe extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
            fn getpid() -> i32;
        }
        let rc = unsafe { kill(getpid(), sys::SIGTERM) };
        assert_eq!(rc, 0);

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "handler never ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(signaled());
    }
}
