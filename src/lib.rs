//! # ms-bfs-graft — parallel tree-grafting maximum bipartite matching
//!
//! Umbrella crate for the Rust reproduction of *"A Parallel Tree Grafting
//! Algorithm for Maximum Cardinality Matching in Bipartite Graphs"*
//! (Azad, Buluç, Pothen, IPDPS 2015). It re-exports the workspace crates:
//!
//! * [`graph`] — bipartite CSR graphs, Matrix Market I/O, relabelings;
//! * [`gen`] — seeded synthetic generators and the paper-suite analogs;
//! * [`matching`] — every matching algorithm the paper evaluates,
//!   including the MS-BFS-Graft contribution (serial and parallel);
//! * [`dm`] — the Dulmage-Mendelsohn / block-triangular-form application;
//! * [`dyn_matching`] — incremental matching under edge updates (a CSR
//!   base plus a delta overlay, repaired by bounded augmenting searches);
//! * [`svc`] — the resident matching service behind `graftmatch serve`
//!   (graph registry + LRU cache, worker pool with deadlines and warm
//!   starts, newline-delimited TCP protocol).
//!
//! ## Quickstart
//!
//! ```
//! use ms_bfs_graft::prelude::*;
//!
//! // Generate a scale-free instance and compute a maximum matching.
//! let g = gen::preferential_attachment(1000, 1000, 4, 0.6, 42);
//! let out = matching::solve(&g, Algorithm::MsBfsGraftParallel, &SolveOptions::default());
//!
//! // Certify optimality with a König vertex cover.
//! let cover = matching::verify::certify_maximum(&g, &out.matching).unwrap();
//! assert_eq!(cover.size(), out.matching.cardinality());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates the paper's tables and figures.

pub use graft_core as matching;
pub use graft_dist as dist;
pub use graft_dm as dm;
pub use graft_dyn as dyn_matching;
pub use graft_gen as gen;
pub use graft_graph as graph;
pub use graft_svc as svc;

/// The most common imports in one place.
pub mod prelude {
    pub use graft_core::{
        self as matching, solve, solve_from, solve_from_in, solve_from_traced,
        solve_from_traced_in, solve_in, solve_traced, Algorithm, Matching, MsBfsOptions,
        PushRelabelOptions, RunOutcome, SolveOptions, SolveWorkspace, Tracer,
    };
    pub use graft_dist::{self as dist, distributed_ms_bfs_graft};
    pub use graft_dm::{self as dm, DmDecomposition};
    pub use graft_dyn::{self as dyn_matching, DynConfig, DynamicMatching};
    pub use graft_gen as gen;
    pub use graft_graph::{self as graph, BipartiteCsr, GraphBuilder, VertexId, NONE};
    pub use graft_svc as svc;
}
