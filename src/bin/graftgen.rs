//! `graftgen` — export synthetic instances as Matrix Market files.
//!
//! Generates the Table II analog suite (or any single named instance) so
//! the experiments can be rerun by other matching codes, closing the loop
//! with the paper's UF-collection workflow.
//!
//! ```text
//! graftgen --all --scale small --out data/
//! graftgen --graph wikipedia --scale medium --out data/
//! graftgen --rmat 16 --edges-per-vertex 8 --seed 7 --out data/
//! ```

use ms_bfs_graft::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: graftgen (--all | --graph NAME | --rmat SCALE) [options]\n\
         options:\n\
           --scale S             tiny|small|medium|large (default small)\n\
           --edges-per-vertex K  RMAT edge factor (default 8)\n\
           --seed S              RMAT seed (default 1)\n\
           --out DIR             output directory (default data/)\n\
           --stats               also print per-instance statistics"
    );
    std::process::exit(2);
}

fn export(g: &BipartiteCsr, name: &str, dir: &std::path::Path, stats: bool) {
    std::fs::create_dir_all(dir).expect("cannot create output directory");
    let path = dir.join(format!("{name}.mtx"));
    graph::mtx::write_mtx_file(g, &path).expect("write failed");
    println!(
        "{}: {}×{} with {} nonzeros → {}",
        name,
        g.num_x(),
        g.num_y(),
        g.num_edges(),
        path.display()
    );
    if stats {
        let sx = graph::DegreeStats::x_side(g);
        let sy = graph::DegreeStats::y_side(g);
        let comps = graph::ops::component_sizes(g);
        println!(
            "  X degrees: min {} max {} mean {:.2} cv {:.2} isolated {}",
            sx.min,
            sx.max,
            sx.mean,
            sx.skew(),
            sx.isolated
        );
        println!(
            "  Y degrees: min {} max {} mean {:.2} cv {:.2} isolated {}",
            sy.min,
            sy.max,
            sy.mean,
            sy.skew(),
            sy.isolated
        );
        println!(
            "  components: {} (largest {})",
            comps.len(),
            comps.first().copied().unwrap_or(0)
        );
        let m = matching::hopcroft_karp(g, Matching::for_graph(g)).matching;
        println!(
            "  maximum matching: {} (fraction {:.3})",
            m.cardinality(),
            m.matching_fraction(g)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut all = false;
    let mut name: Option<String> = None;
    let mut rmat_scale: Option<u32> = None;
    let mut scale = gen::Scale::Small;
    let mut edge_factor = 8usize;
    let mut seed = 1u64;
    let mut out = std::path::PathBuf::from("data");
    let mut stats = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--all" => all = true,
            "--graph" => name = Some(next()),
            "--rmat" => rmat_scale = Some(next().parse().unwrap_or_else(|_| usage())),
            "--scale" => scale = gen::Scale::parse(&next()).unwrap_or_else(|| usage()),
            "--edges-per-vertex" => edge_factor = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = next().parse().unwrap_or_else(|_| usage()),
            "--out" => out = next().into(),
            "--stats" => stats = true,
            _ => usage(),
        }
    }

    if all {
        for entry in gen::suite::suite() {
            let g = entry.build(scale);
            export(&g, entry.name, &out, stats);
        }
    } else if let Some(n) = name {
        match gen::suite::by_name(&n) {
            Some(entry) => export(&entry.build(scale), entry.name, &out, stats),
            None => {
                eprintln!("unknown suite graph `{n}`");
                usage();
            }
        }
    } else if let Some(sc) = rmat_scale {
        let g = gen::rmat(sc, sc, edge_factor << sc, gen::RmatParams::graph500(), seed);
        export(&g, &format!("rmat{sc}"), &out, stats);
    } else {
        usage();
    }
}
