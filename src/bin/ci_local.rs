//! `ci_local` — run the same gates CI runs, in the same order, locally.
//!
//! Invoked via the `cargo ci-local` alias (see `.cargo/config.toml`).
//! Runs every gate even after a failure so one pass reports all breakage,
//! then exits nonzero if any gate failed.

use std::process::Command;

struct Gate {
    name: &'static str,
    args: &'static [&'static str],
    env: &'static [(&'static str, &'static str)],
}

const GATES: &[Gate] = &[
    Gate {
        name: "fmt",
        args: &["fmt", "--all", "--", "--check"],
        env: &[],
    },
    Gate {
        name: "clippy",
        args: &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        env: &[],
    },
    Gate {
        name: "test",
        args: &["test", "--workspace", "-q"],
        env: &[],
    },
    Gate {
        name: "doc",
        args: &["doc", "--workspace", "--no-deps", "-q"],
        env: &[("RUSTDOCFLAGS", "-D warnings")],
    },
];

fn main() {
    // `cargo run` sets $CARGO to the invoking binary; fall back to PATH
    // lookup when run directly.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut failed: Vec<&str> = Vec::new();
    for gate in GATES {
        println!("== ci-local: cargo {} ==", gate.args.join(" "));
        let mut cmd = Command::new(&cargo);
        cmd.args(gate.args);
        for (k, v) in gate.env {
            cmd.env(k, v);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("ci-local: `{}` failed ({status})", gate.name);
                failed.push(gate.name);
            }
            Err(e) => {
                eprintln!("ci-local: cannot spawn cargo for `{}`: {e}", gate.name);
                failed.push(gate.name);
            }
        }
    }
    if failed.is_empty() {
        println!("ci-local: all {} gates green", GATES.len());
    } else {
        eprintln!("ci-local: FAILED gates: {}", failed.join(", "));
        std::process::exit(1);
    }
}
