//! `graftmatch` — command-line maximum bipartite matching.
//!
//! Reads a Matrix Market file (or generates a named suite analog), runs
//! the chosen algorithm, certifies the result with a König cover, and
//! optionally reports the Dulmage-Mendelsohn block structure.
//!
//! ```text
//! graftmatch --mtx matrix.mtx [--algorithm ms-bfs-graft-par] [--threads N]
//!            [--init karp-sipser] [--seed S] [--dm] [--out matching.txt]
//! graftmatch --suite wikipedia --scale small --dm --trace run.jsonl
//! graftmatch serve [--addr 127.0.0.1:0] [--workers N] [--threads-per-solve N]
//!                  [--queue N] [--cache-mb N]
//!                  [--trace-events N] [--state DIR] [--drain-ms N]
//!                  [--max-graph-mb N] [--max-connections N]
//!                  [--snapshot-interval-ms N] [--faults SPEC]
//! graftmatch solve-remote --addr HOST:PORT --name NAME [--algorithm A]
//!                         [--timeout-ms N] [--threads N] [--cold]
//!                         [--batch N] [--attempts N] [--retry-seed S]
//! graftmatch update --addr HOST:PORT NAME (add|del) X Y
//!                   [--attempts N] [--retry-seed S]
//! graftmatch sim --seed N [--ops N] [--no-faults] [--log]
//! ```
//!
//! `sim` replays one deterministic simulation scenario: the whole
//! service stack (server, scheduler, retry client, fault plan) runs
//! in-process on a virtual clock and a simulated network, every source
//! of nondeterminism derived from `--seed`. The same seed always
//! produces a byte-identical event log, so a seed printed by a failing
//! CI run replays the failure locally.
//!
//! `serve` installs a SIGINT/SIGTERM handler that drains gracefully:
//! in-flight solves finish (bounded by `--drain-ms`), a final snapshot
//! is written when `--state` is set, then the process exits 0.

use ms_bfs_graft::prelude::*;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: graftmatch (--mtx FILE | --suite NAME) [options]\n\
         \x20      graftmatch serve [serve options]\n\
         \x20      graftmatch solve-remote --addr HOST:PORT --name NAME [remote options]\n\
         \x20      graftmatch update --addr HOST:PORT NAME (add|del) X Y [remote options]\n\
         \x20      graftmatch sim --seed N [--ops N] [--no-faults] [--log]\n\
         options:\n\
           --algorithm A   ss-dfs|ss-bfs|pf|pf-par|hk|ms-bfs|ms-bfs-do|\n\
                           ms-bfs-graft|ms-bfs-graft-par|pr|pr-par|dist\n\
                           (default: ms-bfs-graft-par)\n\
           --threads N     thread count for parallel algorithms (0 = all)\n\
           --ranks N       rank count for --algorithm dist (default 4)\n\
           --init I        none|greedy|random-greedy|karp-sipser (default karp-sipser)\n\
           --seed S        initializer seed (default 1)\n\
           --scale S       tiny|small|medium|large for --suite (default small)\n\
           --reps N        repeat the solve N times against one reused\n\
                           workspace, reporting per-rep times (default 1)\n\
           --dm            print the Dulmage-Mendelsohn summary\n\
           --out FILE      write the matched pairs (x y per line)\n\
           --trace FILE    write a JSONL event trace of the solve\n\
                           (see `experiments trace-report`; not for dist)\n\
         serve options:\n\
           --addr A        bind address (default 127.0.0.1:0 = ephemeral port)\n\
           --workers N     solver worker threads (default 2)\n\
           --threads-per-solve N  default solver threads for a SOLVE that\n\
                           omits threads=k (default 1, must be <= workers)\n\
           --queue N       queued-job bound before ERR overloaded (default 64)\n\
           --cache-mb N    graph cache budget in MiB (default 256)\n\
           --trace-events N  trace ring capacity for TRACE (default 1024, 0 off)\n\
           --state DIR     persist registry snapshots to DIR; restore on boot\n\
           --drain-ms N    grace period for in-flight jobs on drain (default 5000)\n\
           --max-graph-mb N  refuse LOAD/GEN estimated above N MiB (default off)\n\
           --max-connections N  shed connections beyond N (default 256)\n\
           --snapshot-interval-ms N  periodic snapshot cadence (default 30000, 0 off)\n\
           --fsync POLICY  when UPDATE journal appends fsync: always |\n\
                           interval-ms=N | drain (default drain)\n\
           --faults SPEC   fault injection, e.g. seed=42,rate=25,max=16,sites=solver|reload\n\
         remote options:\n\
           --algorithm A   algorithm name sent with SOLVE (default ms-bfs-graft-par)\n\
           --timeout-ms N  server-side solve deadline\n\
           --threads N     worker threads the server should use (0 = its default)\n\
           --cold          ignore any cached warm start\n\
           --batch N       send N copies of the solve as one pipelined\n\
                           SOLVE_BATCH round trip (0 = plain SOLVE)\n\
           --attempts N    total attempts incl. the first (default 5)\n\
           --retry-seed S  jitter seed for the backoff schedule (default policy seed)\n\
         sim options:\n\
           --seed N        scenario seed; same seed => byte-identical log\n\
           --ops N         workload length in operations (default 48)\n\
           --no-faults     disable the seeded fault plan\n\
           --no-disk-faults  disable the simulated disk (no persistence,\n\
                           no post-run crash-recovery check)\n\
           --log           print the full normalized event log"
    );
    std::process::exit(2);
}

fn serve_main(args: Vec<String>) -> ! {
    let mut cfg = svc::ServeConfig::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => cfg.addr = next(),
            "--workers" => cfg.workers = next().parse().unwrap_or_else(|_| usage()),
            "--threads-per-solve" => {
                cfg.threads_per_solve = next().parse().unwrap_or_else(|_| usage())
            }
            "--queue" => cfg.queue_capacity = next().parse().unwrap_or_else(|_| usage()),
            "--cache-mb" => {
                cfg.cache_bytes = next().parse::<usize>().unwrap_or_else(|_| usage()) << 20
            }
            "--trace-events" => cfg.trace_events = next().parse().unwrap_or_else(|_| usage()),
            "--state" => cfg.state_dir = Some(std::path::PathBuf::from(next())),
            "--drain-ms" => cfg.drain_ms = next().parse().unwrap_or_else(|_| usage()),
            "--max-graph-mb" => {
                cfg.max_graph_bytes = next().parse::<usize>().unwrap_or_else(|_| usage()) << 20
            }
            "--max-connections" => cfg.max_connections = next().parse().unwrap_or_else(|_| usage()),
            "--snapshot-interval-ms" => {
                cfg.snapshot_interval_ms = next().parse().unwrap_or_else(|_| usage())
            }
            "--fsync" => {
                cfg.fsync = svc::FsyncPolicy::parse(&next()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--faults" => cfg.fault_spec = Some(next()),
            _ => usage(),
        }
    }
    let server = match svc::Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Printed line is load-bearing: clients scrape the bound
            // address (the default port is ephemeral).
            println!("graft-svc listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
    // SIGINT/SIGTERM start the same drain protocol as SHUTDOWN; `run`
    // returns once in-flight jobs finish and the final snapshot lands.
    if let Ok(handle) = server.shutdown_handle() {
        if let Err(e) = ctrlc::set_handler(move || handle.initiate()) {
            eprintln!("warning: no signal handler, use SHUTDOWN to stop: {e}");
        }
    }
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}

fn solve_remote_main(args: Vec<String>) -> ! {
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut algorithm = "ms-bfs-graft-par".to_string();
    let mut timeout_ms: Option<u64> = None;
    let mut threads = 0usize;
    let mut cold = false;
    let mut batch = 0usize;
    let mut policy = svc::RetryPolicy::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = Some(next()),
            "--name" => name = Some(next()),
            "--algorithm" => algorithm = next(),
            "--timeout-ms" => timeout_ms = Some(next().parse().unwrap_or_else(|_| usage())),
            "--threads" => threads = next().parse().unwrap_or_else(|_| usage()),
            "--cold" => cold = true,
            "--batch" => batch = next().parse().unwrap_or_else(|_| usage()),
            "--attempts" => policy.max_attempts = next().parse().unwrap_or_else(|_| usage()),
            "--retry-seed" => policy.seed = next().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (addr, name) = match (addr, name) {
        (Some(a), Some(n)) => (a, n),
        _ => usage(),
    };
    let algorithm = Algorithm::parse(&algorithm).unwrap_or_else(|| usage());
    let spec = svc::SolveSpec {
        name,
        algorithm,
        timeout_ms,
        threads,
        cold,
    };
    let mut client = svc::RetryClient::new(addr, policy);
    if batch > 0 {
        // One pipelined round trip carrying `batch` copies of the solve.
        let members: Vec<String> = (0..batch)
            .map(|_| svc::BatchMember::Solve(spec.clone()).wire())
            .collect();
        match client.request_batch(&members) {
            Ok(replies) => {
                if client.retries > 0 {
                    eprintln!("succeeded after {} retr(ies)", client.retries);
                }
                let all_ok = replies.iter().all(|r| r.starts_with("OK"));
                for reply in replies {
                    println!("{reply}");
                }
                std::process::exit(if all_ok { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("solve-remote failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let line = svc::Request::Solve(spec).wire();
    match client.request(&line) {
        Ok(reply) => {
            if client.retries > 0 {
                eprintln!("succeeded after {} retr(ies)", client.retries);
            }
            println!("{reply}");
            std::process::exit(if reply.starts_with("OK") { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("solve-remote failed: {e}");
            std::process::exit(1);
        }
    }
}

fn update_main(args: Vec<String>) -> ! {
    let mut addr: Option<String> = None;
    let mut policy = svc::RetryPolicy::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = Some(next()),
            "--attempts" => policy.max_attempts = next().parse().unwrap_or_else(|_| usage()),
            "--retry-seed" => policy.seed = next().parse().unwrap_or_else(|_| usage()),
            _ => positional.push(a),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    let [name, op, x, y]: [String; 4] = match positional.try_into() {
        Ok(p) => p,
        Err(_) => usage(),
    };
    let add = match op.to_ascii_lowercase().as_str() {
        "add" => true,
        "del" => false,
        _ => usage(),
    };
    let spec = svc::UpdateSpec {
        name,
        add,
        x: x.parse().unwrap_or_else(|_| usage()),
        y: y.parse().unwrap_or_else(|_| usage()),
    };
    let mut client = svc::RetryClient::new(addr, policy);
    match client.request(&svc::Request::Update(spec).wire()) {
        Ok(reply) => {
            if client.retries > 0 {
                eprintln!("succeeded after {} retr(ies)", client.retries);
            }
            println!("{reply}");
            std::process::exit(if reply.starts_with("OK") { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("update failed: {e}");
            std::process::exit(1);
        }
    }
}

fn sim_main(args: Vec<String>) -> ! {
    let mut cfg = svc::ScenarioConfig::default();
    let mut want_log = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed" => cfg.seed = next().parse().unwrap_or_else(|_| usage()),
            "--ops" => cfg.ops = next().parse().unwrap_or_else(|_| usage()),
            "--no-faults" => cfg.with_faults = false,
            "--no-disk-faults" => cfg.disk_faults = false,
            "--log" => want_log = true,
            _ => usage(),
        }
    }
    let report = svc::Scenario::new(cfg).run();
    if want_log {
        print!("{}", report.log);
    }
    println!(
        "sim seed={} requests={} violations={}",
        report.seed,
        report.requests,
        report.violations.len()
    );
    for v in &report.violations {
        eprintln!("violation: {v}");
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("sim") {
        sim_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("solve-remote") {
        solve_remote_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("update") {
        update_main(args.split_off(1));
    }
    let mut mtx: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut algorithm = "ms-bfs-graft-par".to_string();
    let mut threads = 0usize;
    let mut ranks = 4usize;
    let mut init = matching::init::Initializer::KarpSipser;
    let mut seed = 1u64;
    let mut scale = gen::Scale::Small;
    let mut reps = 1usize;
    let mut want_dm = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--mtx" => mtx = Some(next()),
            "--suite" => suite = Some(next()),
            "--algorithm" => algorithm = next(),
            "--threads" => threads = next().parse().unwrap_or_else(|_| usage()),
            "--ranks" => ranks = next().parse().unwrap_or_else(|_| usage()),
            "--init" => {
                init = matching::init::Initializer::parse(&next()).unwrap_or_else(|| usage())
            }
            "--seed" => seed = next().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = gen::Scale::parse(&next()).unwrap_or_else(|| usage()),
            "--reps" => reps = next().parse().unwrap_or_else(|_| usage()),
            "--dm" => want_dm = true,
            "--out" => out_path = Some(next()),
            "--trace" => trace_path = Some(next()),
            _ => usage(),
        }
    }

    let g = match (mtx, suite) {
        (Some(path), None) => graph::mtx::read_mtx_file(&path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }),
        (None, Some(name)) => match gen::suite::by_name(&name) {
            Some(entry) => entry.build(scale),
            None => {
                eprintln!("unknown suite graph `{name}`; known:");
                for e in gen::suite::suite() {
                    eprintln!("  {}", e.name);
                }
                std::process::exit(1);
            }
        },
        _ => usage(),
    };
    eprintln!(
        "graph: {} rows × {} cols, {} nonzeros",
        g.num_x(),
        g.num_y(),
        g.num_edges()
    );

    let started = std::time::Instant::now();
    let m0 = init.run(&g, seed);
    eprintln!(
        "{} initialization: |M₀| = {}",
        init.name(),
        m0.cardinality()
    );

    let tracer = match &trace_path {
        Some(path) if algorithm == "dist" => {
            eprintln!("--trace is not supported with --algorithm dist; ignoring {path}");
            Tracer::disabled()
        }
        Some(path) => match matching::trace::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => Tracer::to_sink(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Tracer::disabled(),
    };

    let (matching_result, label) = if algorithm == "dist" {
        let out = distributed_ms_bfs_graft(&g, m0, ranks);
        eprintln!(
            "distributed: {} supersteps, {} messages, {} phases",
            out.stats.supersteps, out.stats.messages, out.stats.phases
        );
        (out.matching, "dist".to_string())
    } else {
        let alg = Algorithm::parse(&algorithm).unwrap_or_else(|| usage());
        let opts = SolveOptions {
            initializer: matching::init::Initializer::None, // already applied
            threads,
            ..SolveOptions::default()
        };
        // One workspace shared by all reps: rep 1 grows it, later reps run
        // allocation-free on the serial engines. Only rep 1 is traced, so
        // a `--trace` file describes a single solve regardless of --reps.
        let mut ws = SolveWorkspace::new();
        let out = solve_from_traced_in(&g, m0.clone(), alg, &opts, &tracer, &mut ws);
        if reps > 1 {
            eprintln!(
                "rep 1: {:.3?} (|M| = {}, cold workspace)",
                out.stats.elapsed,
                out.matching.cardinality()
            );
        }
        for rep in 1..reps.max(1) {
            let again =
                solve_from_traced_in(&g, m0.clone(), alg, &opts, &Tracer::disabled(), &mut ws);
            eprintln!(
                "rep {}: {:.3?} (|M| = {})",
                rep + 1,
                again.stats.elapsed,
                again.matching.cardinality()
            );
        }
        eprintln!(
            "{}: {} phases, {} augmenting paths, {} edges traversed",
            alg.name(),
            out.stats.phases,
            out.stats.augmenting_paths,
            out.stats.edges_traversed
        );
        (out.matching, alg.name().to_string())
    };
    let elapsed = started.elapsed();
    if let Err(e) = tracer.flush() {
        eprintln!("trace write failed: {e}");
        std::process::exit(1);
    }
    if let Some(path) = &trace_path {
        if algorithm != "dist" {
            eprintln!("trace written to {path}");
        }
    }

    match matching::verify::certify_maximum(&g, &matching_result) {
        Ok(cover) => eprintln!(
            "certified maximum: |M| = {} = |König cover| = {}",
            matching_result.cardinality(),
            cover.size()
        ),
        Err(e) => {
            eprintln!("CERTIFICATION FAILED: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "{label}: cardinality {} of max {} rows / {} cols in {:.3?}",
        matching_result.cardinality(),
        g.num_x(),
        g.num_y(),
        elapsed
    );

    if want_dm {
        let dm = DmDecomposition::with_matching(&g, matching_result.clone());
        let (h, s, v) = dm.row_counts();
        let (hc, sc, vc) = dm.col_counts();
        println!("Dulmage-Mendelsohn: rows H/S/V = {h}/{s}/{v}, cols = {hc}/{sc}/{vc}");
        println!(
            "square part: {} irreducible blocks (largest {})",
            dm.square_blocks.len(),
            dm.square_blocks.iter().map(Vec::len).max().unwrap_or(0)
        );
        println!(
            "structurally nonsingular: {}",
            if dm.is_structurally_nonsingular() {
                "yes"
            } else {
                "no"
            }
        );
    }

    if let Some(path) = out_path {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        }));
        for (x, y) in matching_result.edges() {
            writeln!(f, "{x} {y}").expect("write failed");
        }
        eprintln!("matching written to {path}");
    }
}
