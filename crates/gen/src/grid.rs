//! Structured generators for the "scientific computing and road networks"
//! class (Table II group 1): stencil grids, banded matrices and sparse
//! road-like meshes.
//!
//! These graphs have bounded degree and matching number ≈ 1.0. The paper
//! observes (Fig. 3, Fig. 6) that such inputs spend most of their time in
//! BFS traversal and benefit least from grafting — the ablation benches
//! verify that the same holds here.

use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The bipartite graph of a 5-point-stencil matrix on a `rows × cols`
/// grid: row vertex `i` connects to column `i` and to the columns of its
/// four grid neighbors (analog of `kkt_power` / `delaunay`-style
/// discretization matrices — symmetric structure with a full diagonal, so
/// the matching number is exactly 1).
pub fn grid2d(rows: usize, cols: usize) -> BipartiteCsr {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, n, 5 * n);
    let idx = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            b.add_edge(v, v);
            if r > 0 {
                b.add_edge(v, idx(r - 1, c));
            }
            if r + 1 < rows {
                b.add_edge(v, idx(r + 1, c));
            }
            if c > 0 {
                b.add_edge(v, idx(r, c - 1));
            }
            if c + 1 < cols {
                b.add_edge(v, idx(r, c + 1));
            }
        }
    }
    b.build()
}

/// 7-point stencil on an `nx × ny × nz` grid (3D analog, e.g. `hugetrace`
/// scale structure).
pub fn grid3d(dx: usize, dy: usize, dz: usize) -> BipartiteCsr {
    let n = dx * dy * dz;
    let mut b = GraphBuilder::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (x * dy * dz + y * dz + z) as VertexId;
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                let v = idx(x, y, z);
                b.add_edge(v, v);
                if x > 0 {
                    b.add_edge(v, idx(x - 1, y, z));
                }
                if x + 1 < dx {
                    b.add_edge(v, idx(x + 1, y, z));
                }
                if y > 0 {
                    b.add_edge(v, idx(x, y - 1, z));
                }
                if y + 1 < dy {
                    b.add_edge(v, idx(x, y + 1, z));
                }
                if z > 0 {
                    b.add_edge(v, idx(x, y, z - 1));
                }
                if z + 1 < dz {
                    b.add_edge(v, idx(x, y, z + 1));
                }
            }
        }
    }
    b.build()
}

/// Square banded matrix: the diagonal plus `fill` random entries per row
/// within `±bandwidth` of the diagonal.
pub fn banded(n: usize, bandwidth: usize, fill: usize, seed: u64) -> BipartiteCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n, n * (fill + 1));
    for i in 0..n {
        b.add_edge(i as VertexId, i as VertexId);
        for _ in 0..fill {
            let lo = i.saturating_sub(bandwidth);
            let hi = (i + bandwidth + 1).min(n);
            let j = rng.gen_range(lo..hi);
            b.add_edge(i as VertexId, j as VertexId);
        }
    }
    b.build()
}

/// Road-network analog (`road_usa` / `hugetrace`): a 2D grid whose edges
/// are kept with probability `keep` and **without** the diagonal, so long
/// winding augmenting paths appear (the property that makes road networks
/// hard for DFS-based algorithms in Fig. 1c) while the matching number
/// stays high but below 1.
pub fn road_network(rows: usize, cols: usize, keep: f64, seed: u64) -> BipartiteCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, n, 4 * n);
    let idx = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            // Jittered diagonal: connect to a *nearby* column, not always
            // the own column, so the perfect diagonal matching disappears.
            if rng.gen_bool(keep) {
                b.add_edge(v, v);
            }
            if r > 0 && rng.gen_bool(keep) {
                b.add_edge(v, idx(r - 1, c));
            }
            if c > 0 && rng.gen_bool(keep) {
                b.add_edge(v, idx(r, c - 1));
            }
            if c + 1 < cols && rng.gen_bool(keep) {
                b.add_edge(v, idx(r, c + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_graph::DegreeStats;

    #[test]
    fn grid2d_structure() {
        let g = grid2d(4, 5);
        assert_eq!(g.num_x(), 20);
        assert_eq!(g.num_y(), 20);
        // Interior vertex degree 5, corner degree 3.
        assert_eq!(g.x_degree(0), 3);
        assert_eq!(g.x_degree(6), 5);
        assert!(g.validate().is_ok());
        // Symmetric structure.
        for (x, y) in g.edges().collect::<Vec<_>>() {
            assert!(g.has_edge(y, x));
        }
    }

    #[test]
    fn grid2d_has_perfect_matching_via_diagonal() {
        let g = grid2d(6, 6);
        for v in 0..36u32 {
            assert!(g.has_edge(v, v));
        }
    }

    #[test]
    fn grid3d_degrees_bounded() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.num_x(), 27);
        let s = DegreeStats::x_side(&g);
        assert_eq!(s.max, 7);
        assert_eq!(s.min, 4);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn banded_entries_within_band() {
        let g = banded(50, 3, 4, 9);
        for (x, y) in g.edges() {
            let (x, y) = (x as i64, y as i64);
            assert!((x - y).abs() <= 3, "entry ({x},{y}) outside band");
        }
        assert!(g.validate().is_ok());
    }

    #[test]
    fn road_network_is_sparse_and_bounded() {
        let g = road_network(20, 20, 0.7, 5);
        let s = DegreeStats::x_side(&g);
        assert!(s.max <= 4);
        assert!(g.num_edges() < 4 * 400);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(banded(30, 2, 3, 1), banded(30, 2, 3, 1));
        assert_eq!(road_network(10, 10, 0.8, 2), road_network(10, 10, 0.8, 2));
    }

    #[test]
    fn degenerate_dimensions() {
        assert_eq!(grid2d(0, 5).num_edges(), 0);
        assert_eq!(grid2d(1, 1).num_edges(), 1);
        assert_eq!(grid3d(1, 1, 1).num_edges(), 1);
    }
}
