//! RMAT (recursive matrix) generator, the Graph500 workload the paper's
//! Table II lists as its synthetic skewed-degree instance.

use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the recursive descent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (0.57, 0.19, 0.19, 0.05), which
    /// produce the skewed degree distribution the paper mentions (§IV-B).
    pub fn graph500() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Uniform quadrants: degenerates to an Erdős–Rényi-like graph.
    pub fn uniform() -> Self {
        Self {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        }
    }
}

/// Generates a `2^scale_x × 2^scale_y` RMAT bipartite graph with `m`
/// sampled edges (duplicates merged by CSR normalization, as in the
/// Graph500 reference code).
pub fn rmat(scale_x: u32, scale_y: u32, m: usize, params: RmatParams, seed: u64) -> BipartiteCsr {
    assert!(
        scale_x < 31 && scale_y < 31,
        "scale too large for u32 vertex ids"
    );
    let nx = 1usize << scale_x;
    let ny = 1usize << scale_y;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(nx, ny, m);
    let RmatParams { a, b, c, .. } = params;
    for _ in 0..m {
        let mut x = 0usize;
        let mut y = 0usize;
        let depth = scale_x.max(scale_y);
        for lvl in 0..depth {
            // When one dimension is exhausted, collapse the choice onto
            // the other axis (rectangular RMAT).
            let split_x = lvl < scale_x;
            let split_y = lvl < scale_y;
            let r: f64 = rng.gen();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            if split_x {
                x = (x << 1) | usize::from(down);
            }
            if split_y {
                y = (y << 1) | usize::from(right);
            }
        }
        builder.add_edge(x as VertexId, y as VertexId);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_graph::DegreeStats;

    #[test]
    fn dimensions() {
        let g = rmat(6, 6, 500, RmatParams::graph500(), 1);
        assert_eq!(g.num_x(), 64);
        assert_eq!(g.num_y(), 64);
        assert!(g.num_edges() <= 500);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn rectangular_dimensions() {
        let g = rmat(5, 7, 400, RmatParams::graph500(), 2);
        assert_eq!(g.num_x(), 32);
        assert_eq!(g.num_y(), 128);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn graph500_params_are_skewed() {
        // Graph500 quadrant weights concentrate edges on low ids: the
        // degree distribution must be visibly more skewed than uniform.
        let skewed = rmat(9, 9, 4000, RmatParams::graph500(), 3);
        let uniform = rmat(9, 9, 4000, RmatParams::uniform(), 3);
        let s_skew = DegreeStats::x_side(&skewed).skew();
        let s_uni = DegreeStats::x_side(&uniform).skew();
        assert!(
            s_skew > 1.5 * s_uni,
            "expected heavier tail: skewed cv={s_skew:.3} uniform cv={s_uni:.3}"
        );
        // Skewed RMAT leaves many vertices isolated — the low-matching
        // property class 3 relies on.
        assert!(DegreeStats::x_side(&skewed).isolated > DegreeStats::x_side(&uniform).isolated);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(7, 7, 1000, RmatParams::graph500(), 42);
        let b = rmat(7, 7, 1000, RmatParams::graph500(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn params_sum_check() {
        let p = RmatParams::graph500();
        assert!((p.a + p.b + p.c + p.d - 1.0).abs() < 1e-12);
    }
}
