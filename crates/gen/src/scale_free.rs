//! Heavy-tailed generators: preferential attachment (class 2, scale-free)
//! and skewed web-crawl analogs with low matching number (class 3).

use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bipartite preferential attachment: `X` vertices arrive one by one and
/// attach `edges_per_x` times; each attachment picks an endpoint of a
/// previously placed edge with probability `pref` (reinforcing popular
/// `Y` vertices — a Yule process yielding a power-law `Y`-degree tail) and
/// a uniform `Y` vertex otherwise.
///
/// Analog of the paper's citation / co-purchase / co-author graphs
/// (`cit-Patents`, `amazon0312`, `coPapersDBLP`).
pub fn preferential_attachment(
    nx: usize,
    ny: usize,
    edges_per_x: usize,
    pref: f64,
    seed: u64,
) -> BipartiteCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nx, ny, nx * edges_per_x);
    if nx == 0 || ny == 0 {
        return b.build();
    }
    // Endpoint pool: picking uniformly from it realizes degree-
    // proportional selection.
    let mut pool: Vec<VertexId> = Vec::with_capacity(nx * edges_per_x);
    for x in 0..nx as VertexId {
        for _ in 0..edges_per_x {
            let y = if !pool.is_empty() && rng.gen_bool(pref) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..ny) as VertexId
            };
            b.add_edge(x, y);
            pool.push(y);
        }
    }
    b.build()
}

/// Parameters of the web-crawl analog.
#[derive(Clone, Copy, Debug)]
pub struct WebCrawlParams {
    /// Number of page (X) vertices.
    pub nx: usize,
    /// Number of link-target (Y) vertices.
    pub ny: usize,
    /// Zipf-ish exponent for out-degrees (larger = more degree-0/1 pages).
    pub degree_exponent: f64,
    /// Maximum out-degree of a page.
    pub max_degree: usize,
    /// Fraction of link targets drawn from the popular head of `Y`.
    pub hub_bias: f64,
    /// Size of the popular head as a fraction of `ny`.
    pub hub_fraction: f64,
}

impl Default for WebCrawlParams {
    fn default() -> Self {
        Self {
            nx: 4096,
            ny: 4096,
            degree_exponent: 1.8,
            max_degree: 64,
            hub_bias: 0.85,
            hub_fraction: 0.02,
        }
    }
}

/// Web-crawl analog (`wikipedia`, `wb-edu`, `web-Google`): page
/// out-degrees follow a truncated power law (many pages with zero or one
/// link), and most links target a small popular head of `Y`. The result
/// has **low matching number** — the defining property of the paper's
/// third class, where tree grafting shows its largest wins — because the
/// popular head saturates quickly and the long tail of `Y` is mostly
/// untouched.
pub fn web_crawl(params: WebCrawlParams, seed: u64) -> BipartiteCsr {
    let WebCrawlParams {
        nx,
        ny,
        degree_exponent,
        max_degree,
        hub_bias,
        hub_fraction,
    } = params;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(nx, ny);
    if nx == 0 || ny == 0 {
        return b.build();
    }
    let hub_count = ((ny as f64 * hub_fraction).ceil() as usize).clamp(1, ny);
    for x in 0..nx as VertexId {
        // Inverse-CDF sample of a truncated power-law degree ≥ 0:
        // P(deg ≥ k) ∝ k^(1-exponent); degree 0 pages arise from the
        // integer floor.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let deg = (u.powf(-1.0 / (degree_exponent - 1.0)) - 1.0).floor() as usize;
        let deg = deg.min(max_degree);
        for _ in 0..deg {
            let y = if rng.gen_bool(hub_bias) {
                rng.gen_range(0..hub_count) as VertexId
            } else {
                rng.gen_range(0..ny) as VertexId
            };
            b.add_edge(x, y);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_graph::DegreeStats;

    #[test]
    fn pa_dimensions_and_validity() {
        let g = preferential_attachment(500, 400, 4, 0.6, 1);
        assert_eq!(g.num_x(), 500);
        assert_eq!(g.num_y(), 400);
        assert!(g.num_edges() <= 2000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn pa_y_side_is_heavy_tailed() {
        let g = preferential_attachment(2000, 2000, 4, 0.75, 5);
        let s = DegreeStats::y_side(&g);
        // Preferential attachment: max degree far above the mean.
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn pa_deterministic() {
        assert_eq!(
            preferential_attachment(100, 100, 3, 0.5, 2),
            preferential_attachment(100, 100, 3, 0.5, 2)
        );
    }

    #[test]
    fn web_crawl_validity() {
        let g = web_crawl(WebCrawlParams::default(), 3);
        assert_eq!(g.num_x(), 4096);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn web_crawl_has_low_matching_number() {
        // The matching number (certified by König via graft-core in the
        // integration tests) is bounded here by a cheap structural proxy:
        // many X vertices have degree 0 and most edges hit the small hub
        // head, so distinct-neighborhood coverage is far below nx.
        let g = web_crawl(WebCrawlParams::default(), 7);
        let sx = DegreeStats::x_side(&g);
        assert!(
            sx.isolated * 3 > g.num_x(),
            "power-law floor should isolate a large fraction: {} of {}",
            sx.isolated,
            g.num_x()
        );
        let sy = DegreeStats::y_side(&g);
        assert!(
            sy.isolated as f64 > 0.3 * g.num_y() as f64,
            "a large share of Y's tail stays untouched: {} of {}",
            sy.isolated,
            g.num_y()
        );
    }

    #[test]
    fn web_crawl_deterministic() {
        let p = WebCrawlParams {
            nx: 300,
            ny: 300,
            ..Default::default()
        };
        assert_eq!(web_crawl(p, 9), web_crawl(p, 9));
    }
}
