//! # graft-gen — seeded synthetic bipartite graph generators
//!
//! The paper evaluates on matrices from the University of Florida sparse
//! matrix collection plus Graph500 RMAT instances, grouped into three
//! classes (§IV-B, Table II):
//!
//! 1. **scientific computing & road networks** — bounded degree, high
//!    matching number (≈ 1.0);
//! 2. **scale-free graphs** — heavy-tailed degrees, moderate-to-high
//!    matching number;
//! 3. **web crawls & networks with low matching number** — extreme skew,
//!    many unmatchable vertices.
//!
//! The UF collection is not available offline, so this crate provides
//! seeded generators whose outputs land in the same structural classes,
//! and [`suite`] registers one named analog per paper input. All
//! generators are deterministic for a fixed seed (ChaCha-based `StdRng`),
//! so every experiment in the harness is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod erdos_renyi;
mod grid;
pub mod pathological;
mod rmat;
mod scale_free;
pub mod suite;

pub use erdos_renyi::erdos_renyi;
pub use grid::{banded, grid2d, grid3d, road_network};
pub use rmat::{rmat, RmatParams};
pub use scale_free::{preferential_attachment, web_crawl, WebCrawlParams};

/// Problem size multiplier used by the suite: tests run `Tiny`, the
/// default experiment harness runs `Small`, and `--scale` flags can select
/// larger instances on bigger machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1–3k vertices per side: unit/integration tests.
    Tiny,
    /// ~20–60k vertices: default harness scale, seconds per experiment.
    Small,
    /// ~200–500k vertices: multi-core benchmarking.
    Medium,
    /// ~1–4M vertices: approaching the paper's instance sizes.
    Large,
}

impl Scale {
    /// Multiplier applied to the suite's base dimensions.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 16,
            Scale::Medium => 128,
            Scale::Large => 1024,
        }
    }

    /// The canonical lower-case name, inverse of [`Scale::parse`] (used
    /// by the service's snapshot format).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Parses the names used by the harness `--scale` flag.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scale_factors_monotone() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Medium.factor());
        assert!(Scale::Medium.factor() < Scale::Large.factor());
    }
}
