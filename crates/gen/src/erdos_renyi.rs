//! Uniform random bipartite graphs.

use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `G(nx, ny, m)`: `m` edges sampled uniformly at random (with rejection
/// of duplicates left to CSR normalization — the generator oversamples by
/// the expected collision count so the edge total lands near `m`).
///
/// Random bipartite graphs with mean degree above the `e` threshold have
/// near-perfect matchings (Erdős–Rényi theory), making this a good
/// smoke-test workload; it is also the base noise model mixed into the
/// suite's analogs.
pub fn erdos_renyi(nx: usize, ny: usize, m: usize, seed: u64) -> BipartiteCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nx, ny, m);
    if nx == 0 || ny == 0 {
        return b.build();
    }
    for _ in 0..m {
        let x = rng.gen_range(0..nx) as VertexId;
        let y = rng.gen_range(0..ny) as VertexId;
        b.add_edge(x, y);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_validity() {
        let g = erdos_renyi(100, 120, 500, 7);
        assert_eq!(g.num_x(), 100);
        assert_eq!(g.num_y(), 120);
        assert!(g.num_edges() <= 500);
        assert!(
            g.num_edges() > 450,
            "few duplicates expected at this density"
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 50, 200, 3), erdos_renyi(50, 50, 200, 3));
        assert_ne!(erdos_renyi(50, 50, 200, 3), erdos_renyi(50, 50, 200, 4));
    }

    #[test]
    fn empty_sides() {
        let g = erdos_renyi(0, 10, 100, 1);
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi(10, 0, 100, 1);
        assert_eq!(g.num_edges(), 0);
    }
}
