//! The experiment suite: one seeded synthetic analog per input graph of
//! the paper's Table II, organized in the paper's three classes.
//!
//! | paper graph | class | analog here |
//! |---|---|---|
//! | kkt_power | scientific | banded KKT-style matrix |
//! | delaunay | scientific | 5-point stencil grid |
//! | hugetrace | scientific | 7-point 3D stencil |
//! | road_usa | scientific/road | degraded 2D mesh |
//! | cit-Patents | scale-free | preferential attachment (sparse) |
//! | amazon0312 | scale-free | preferential attachment (medium) |
//! | coPapersDBLP | scale-free | preferential attachment (dense) |
//! | RMAT | scale-free | Graph500 RMAT |
//! | wikipedia | web / low matching | web-crawl analog |
//! | web-Google | web / low matching | web-crawl analog (milder) |
//! | wb-edu | web / low matching | web-crawl analog (extreme hubs) |
//!
//! The analogs are sized by a [`Scale`] factor so tests stay fast while
//! the benchmark harness can approach paper-scale instances. Each entry's
//! *measured* matching number is reported by the `table2` experiment,
//! which is how we check the analog lands in the intended class.

use crate::{
    banded, grid2d, grid3d, preferential_attachment, rmat, road_network, web_crawl, RmatParams,
    Scale, WebCrawlParams,
};
use graft_graph::BipartiteCsr;

/// The paper's three input classes (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Scientific computing & road networks: bounded degree, matching
    /// number ≈ 1.
    Scientific,
    /// Scale-free graphs: heavy-tailed degrees.
    ScaleFree,
    /// Web crawls and other graphs with low matching number.
    Web,
}

impl GraphClass {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            GraphClass::Scientific => "scientific",
            GraphClass::ScaleFree => "scale-free",
            GraphClass::Web => "web/low-matching",
        }
    }
}

/// A named suite instance.
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// Name of the paper input this instance stands in for.
    pub name: &'static str,
    /// Structural class.
    pub class: GraphClass,
    /// Short description of the generator configuration.
    pub analog: &'static str,
    seed: u64,
    kind: Kind,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    KktPower,
    Delaunay,
    HugeTrace,
    RoadUsa,
    CitPatents,
    Amazon,
    CoPapersDblp,
    Rmat,
    Wikipedia,
    WebGoogle,
    WbEdu,
}

/// Integer square root scaling for 2D grids.
fn sqrt_factor(f: usize) -> usize {
    (f as f64).sqrt().round().max(1.0) as usize
}

/// Integer cube root scaling for 3D grids.
fn cbrt_factor(f: usize) -> usize {
    (f as f64).cbrt().round().max(1.0) as usize
}

impl SuiteEntry {
    /// Builds the instance at the given scale.
    pub fn build(&self, scale: Scale) -> BipartiteCsr {
        let f = scale.factor();
        match self.kind {
            Kind::KktPower => banded(1500 * f, 20, 6, self.seed),
            Kind::Delaunay => {
                let s = 40 * sqrt_factor(f);
                grid2d(s, s)
            }
            Kind::HugeTrace => {
                let s = 12 * cbrt_factor(f);
                grid3d(s, s, s)
            }
            Kind::RoadUsa => {
                let s = 45 * sqrt_factor(f);
                road_network(s, s, 0.88, self.seed)
            }
            Kind::CitPatents => preferential_attachment(2000 * f, 2000 * f, 5, 0.55, self.seed),
            Kind::Amazon => preferential_attachment(1800 * f, 1800 * f, 4, 0.65, self.seed),
            Kind::CoPapersDblp => preferential_attachment(1200 * f, 1200 * f, 12, 0.7, self.seed),
            Kind::Rmat => {
                // 2^scale with ~8 edges per vertex, Graph500 parameters.
                let log_f = (f as f64).log2().round() as u32;
                let sc = 11 + log_f;
                rmat(sc, sc, 8 << sc, RmatParams::graph500(), self.seed)
            }
            Kind::Wikipedia => web_crawl(
                WebCrawlParams {
                    nx: 2500 * f,
                    ny: 2500 * f,
                    degree_exponent: 1.7,
                    max_degree: 96,
                    hub_bias: 0.8,
                    hub_fraction: 0.03,
                },
                self.seed,
            ),
            Kind::WebGoogle => web_crawl(
                WebCrawlParams {
                    nx: 2200 * f,
                    ny: 2200 * f,
                    degree_exponent: 1.9,
                    max_degree: 64,
                    hub_bias: 0.7,
                    hub_fraction: 0.05,
                },
                self.seed,
            ),
            Kind::WbEdu => web_crawl(
                WebCrawlParams {
                    nx: 2600 * f,
                    ny: 2600 * f,
                    degree_exponent: 1.6,
                    max_degree: 128,
                    hub_bias: 0.92,
                    hub_fraction: 0.01,
                },
                self.seed,
            ),
        }
    }

    /// Estimates `(nx, ny, edges)` at `scale` **without materializing**
    /// the graph. Every suite generator scales linearly in
    /// [`Scale::factor`] by construction, so the instance's shape is
    /// (approximately) the tiny instance's shape times the factor; the
    /// tiny build itself costs well under a millisecond. Admission
    /// control in the service uses this to shed oversized `GEN` requests
    /// before allocating anything large.
    pub fn estimated_shape(&self, scale: Scale) -> (usize, usize, usize) {
        let tiny = self.build(Scale::Tiny);
        let f = scale.factor();
        (tiny.num_x() * f, tiny.num_y() * f, tiny.num_edges() * f)
    }
}

/// The full suite in Table II order: scientific, scale-free, web.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "kkt_power",
            class: GraphClass::Scientific,
            analog: "banded matrix, bandwidth 20, 7 nnz/row",
            seed: 101,
            kind: Kind::KktPower,
        },
        SuiteEntry {
            name: "delaunay",
            class: GraphClass::Scientific,
            analog: "5-point stencil grid",
            seed: 102,
            kind: Kind::Delaunay,
        },
        SuiteEntry {
            name: "hugetrace",
            class: GraphClass::Scientific,
            analog: "7-point 3D stencil",
            seed: 103,
            kind: Kind::HugeTrace,
        },
        SuiteEntry {
            name: "road_usa",
            class: GraphClass::Scientific,
            analog: "2D mesh, 12% edges removed, no diagonal",
            seed: 104,
            kind: Kind::RoadUsa,
        },
        SuiteEntry {
            name: "cit-Patents",
            class: GraphClass::ScaleFree,
            analog: "preferential attachment, 5 edges/vertex, pref 0.55",
            seed: 201,
            kind: Kind::CitPatents,
        },
        SuiteEntry {
            name: "amazon0312",
            class: GraphClass::ScaleFree,
            analog: "preferential attachment, 4 edges/vertex, pref 0.65",
            seed: 202,
            kind: Kind::Amazon,
        },
        SuiteEntry {
            name: "coPapersDBLP",
            class: GraphClass::ScaleFree,
            analog: "preferential attachment, 12 edges/vertex, pref 0.70",
            seed: 203,
            kind: Kind::CoPapersDblp,
        },
        SuiteEntry {
            name: "RMAT",
            class: GraphClass::ScaleFree,
            analog: "Graph500 RMAT (0.57,0.19,0.19,0.05), 8 edges/vertex",
            seed: 204,
            kind: Kind::Rmat,
        },
        SuiteEntry {
            name: "wikipedia",
            class: GraphClass::Web,
            analog: "web crawl, exponent 1.7, 3% hubs @ 80% bias",
            seed: 301,
            kind: Kind::Wikipedia,
        },
        SuiteEntry {
            name: "web-Google",
            class: GraphClass::Web,
            analog: "web crawl, exponent 1.9, 5% hubs @ 70% bias",
            seed: 302,
            kind: Kind::WebGoogle,
        },
        SuiteEntry {
            name: "wb-edu",
            class: GraphClass::Web,
            analog: "web crawl, exponent 1.6, 1% hubs @ 92% bias",
            seed: 303,
            kind: Kind::WbEdu,
        },
    ]
}

/// Looks up a suite entry by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    suite()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

/// The three representative graphs of Fig. 1 (one per class): kkt_power,
/// cit-Patents, wikipedia.
pub fn fig1_graphs() -> Vec<SuiteEntry> {
    ["kkt_power", "cit-Patents", "wikipedia"]
        .iter()
        .map(|n| by_name(n).expect("fig1 graph registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_entries_in_three_classes() {
        let s = suite();
        assert_eq!(s.len(), 11);
        for class in [
            GraphClass::Scientific,
            GraphClass::ScaleFree,
            GraphClass::Web,
        ] {
            assert!(
                s.iter().filter(|e| e.class == class).count() >= 3,
                "{class:?}"
            );
        }
    }

    #[test]
    fn names_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn all_entries_build_at_tiny_scale() {
        for e in suite() {
            let g = e.build(Scale::Tiny);
            assert!(g.num_x() > 0, "{} empty", e.name);
            assert!(g.num_edges() > 0, "{} has no edges", e.name);
            assert!(g.validate().is_ok(), "{} invalid", e.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let e = by_name("wikipedia").unwrap();
        assert_eq!(e.build(Scale::Tiny), e.build(Scale::Tiny));
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("KKT_POWER").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(fig1_graphs().len(), 3);
    }

    #[test]
    fn small_scale_is_larger() {
        let e = by_name("delaunay").unwrap();
        assert!(e.build(Scale::Small).num_x() > e.build(Scale::Tiny).num_x());
    }

    #[test]
    fn estimated_shape_tracks_real_builds_within_2x() {
        // The estimate is used for admission control, so it must stay in
        // the right ballpark — within a factor of two of the real build.
        for e in suite() {
            let (enx, _eny, eedges) = e.estimated_shape(Scale::Small);
            let g = e.build(Scale::Small);
            assert!(
                enx <= 2 * g.num_x() && g.num_x() <= 2 * enx,
                "{}: nx estimate {enx} vs actual {}",
                e.name,
                g.num_x()
            );
            assert!(
                eedges <= 2 * g.num_edges() && g.num_edges() <= 2 * eedges,
                "{}: edge estimate {eedges} vs actual {}",
                e.name,
                g.num_edges()
            );
        }
    }
}
