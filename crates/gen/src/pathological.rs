//! Adversarial instances: graphs engineered to stress specific parts of
//! the matching algorithms, used by the edge-case tests and ablation
//! benches.
//!
//! * [`long_chain`] — forces a single augmenting path of length `2k−1`
//!   (the worst case for Fig. 1c's path-length metric and for the
//!   token-passing augmentation of the distributed engine);
//! * [`crown`] — the classic greedy trap: first-fit matches the crown
//!   edges and every repair needs a length-3 augmenting path;
//! * [`hub_contention`] — many sources racing for a few targets,
//!   maximizing visited-flag contention in the parallel engines;
//! * [`comb`] — a comb of long teeth: many simultaneous long disjoint
//!   augmenting paths (stress for the parallel augmentation step);
//! * [`grid_ladder`] — long even cycles that force Hopcroft-Karp into
//!   many increasing-length phases.

use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};

/// A chain `x₀-y₀-x₁-y₁-…` of `k` diagonal plus `k−1` sub-diagonal edges.
/// With the adversarial matching `{(xᵢ, yᵢ₋₁)}` (see
/// [`long_chain_adversarial_matching`]) exactly one augmenting path
/// exists and it has length `2k−1`.
pub fn long_chain(k: usize) -> BipartiteCsr {
    let mut b = GraphBuilder::with_capacity(k, k, 2 * k);
    for i in 0..k as VertexId {
        b.add_edge(i, i);
        if i > 0 {
            b.add_edge(i, i - 1);
        }
    }
    b.build()
}

/// The sub-diagonal matching that maximizes the augmenting-path length of
/// [`long_chain`]: `(xᵢ, yᵢ₋₁)` for `i ≥ 1`, leaving `x₀` and `y_{k−1}`
/// free at opposite ends.
pub fn long_chain_adversarial_matching(k: usize) -> Vec<(VertexId, VertexId)> {
    (1..k as VertexId).map(|i| (i, i - 1)).collect()
}

/// A crown graph-ish trap with `2k` vertices per side: pairs
/// `(x_{2i}, x_{2i+1})` share `y_{2i}`, and only `x_{2i}` can reach the
/// private `y_{2i+1}`. First-fit greedy (scanning neighbors in sorted
/// order) matches `x_{2i}` to the shared vertex, forcing a repair path
/// for every pair — the maximum matching is perfect.
pub fn crown(k: usize) -> BipartiteCsr {
    let n = 2 * k;
    let mut b = GraphBuilder::with_capacity(n, n, 3 * k);
    for i in 0..k as VertexId {
        let shared = 2 * i;
        let private = 2 * i + 1;
        b.add_edge(2 * i, shared);
        b.add_edge(2 * i, private);
        b.add_edge(2 * i + 1, shared);
    }
    b.build()
}

/// `nx` sources all adjacent to the same `hubs` targets: maximum matching
/// is `hubs`, and every parallel algorithm funnels its claims through the
/// same cache lines.
pub fn hub_contention(nx: usize, hubs: usize) -> BipartiteCsr {
    let mut b = GraphBuilder::with_capacity(nx, hubs, nx * hubs);
    for x in 0..nx as VertexId {
        for y in 0..hubs as VertexId {
            b.add_edge(x, y);
        }
    }
    b.build()
}

/// `teeth` vertex-disjoint chains of length `2·tooth_len − 1` sharing
/// nothing: with the adversarial initial matching (every chain shifted),
/// one phase must discover and augment `teeth` long paths concurrently.
pub fn comb(teeth: usize, tooth_len: usize) -> BipartiteCsr {
    let n = teeth * tooth_len;
    let mut b = GraphBuilder::with_capacity(n, n, 2 * n);
    for t in 0..teeth {
        let base = (t * tooth_len) as VertexId;
        for i in 0..tooth_len as VertexId {
            b.add_edge(base + i, base + i);
            if i > 0 {
                b.add_edge(base + i, base + i - 1);
            }
        }
    }
    b.build()
}

/// The shifted matching leaving one free vertex at each end of every
/// tooth of [`comb`].
pub fn comb_adversarial_matching(teeth: usize, tooth_len: usize) -> Vec<(VertexId, VertexId)> {
    let mut m = Vec::new();
    for t in 0..teeth {
        let base = (t * tooth_len) as VertexId;
        for i in 1..tooth_len as VertexId {
            m.push((base + i, base + i - 1));
        }
    }
    m
}

/// A `rows × 2` ladder of 4-cycles chained together: even cycles
/// everywhere, so augmenting paths grow by at least 2 per Hopcroft-Karp
/// phase when started from the "rung" matching.
pub fn grid_ladder(rows: usize) -> BipartiteCsr {
    // x_i adjacent to y_i and y_{i+1} (mod rows): a single even cycle of
    // length 2·rows.
    let mut b = GraphBuilder::with_capacity(rows, rows, 2 * rows);
    for i in 0..rows as VertexId {
        b.add_edge(i, i);
        b.add_edge(i, (i + 1) % rows as VertexId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_chain_structure() {
        let g = long_chain(10);
        assert_eq!(g.num_edges(), 19);
        let m = long_chain_adversarial_matching(10);
        assert_eq!(m.len(), 9);
        for &(x, y) in &m {
            assert!(g.has_edge(x, y));
        }
    }

    #[test]
    fn crown_has_perfect_matching_structure() {
        let g = crown(5);
        assert_eq!(g.num_x(), 10);
        assert_eq!(g.num_edges(), 15);
        // Every even x has degree 2, every odd x degree 1.
        for i in 0..5u32 {
            assert_eq!(g.x_degree(2 * i), 2);
            assert_eq!(g.x_degree(2 * i + 1), 1);
        }
    }

    #[test]
    fn hub_contention_dimensions() {
        let g = hub_contention(50, 3);
        assert_eq!(g.num_edges(), 150);
        assert_eq!(g.y_degree(0), 50);
    }

    #[test]
    fn comb_teeth_are_disjoint() {
        let g = comb(4, 5);
        assert_eq!(g.num_x(), 20);
        // No edges cross tooth boundaries.
        for (x, y) in g.edges() {
            assert_eq!(x / 5, y / 5, "edge ({x},{y}) crosses teeth");
        }
        let m = comb_adversarial_matching(4, 5);
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn grid_ladder_is_single_cycle() {
        let g = grid_ladder(8);
        assert_eq!(g.num_edges(), 16);
        for x in 0..8u32 {
            assert_eq!(g.x_degree(x), 2);
            assert_eq!(g.y_degree(x), 2);
        }
    }
}
