//! graft-check: a deterministic concurrency model checker for the
//! workspace's lock-free core, in the spirit of loom and shuttle.
//!
//! The checker runs a closure many times, serializing its threads so
//! that every atomic access, fence, mutex operation, condvar wait/notify
//! and spawn/join is a *scheduling point*. At each point with more than
//! one possibility — which thread runs next, which visible store a
//! relaxed load returns, which waiter a `notify_one` wakes — the
//! explorer either enumerates the alternatives (exhaustive DFS under a
//! preemption bound, with state-hash pruning) or samples them
//! (seeded-random mode). Any failure is reported with a schedule string
//! that replays that exact interleaving.
//!
//! # Usage
//!
//! ```
//! use graft_check::{Checker, sync::atomic::{AtomicU32, Ordering}};
//! use std::sync::Arc;
//!
//! Checker::new().check(|| {
//!     let x = Arc::new(AtomicU32::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = graft_check::thread::spawn(move || {
//!         x2.store(1, Ordering::Release);
//!     });
//!     let _ = x.load(Ordering::Acquire);
//!     t.join().unwrap();
//! });
//! ```
//!
//! Production code opts in via `#[cfg(graft_check)]` type aliases (see
//! `shims/rayon/src/pool.rs`): the instrumented types pass through to
//! `std` on any thread that is not part of a checked execution, so the
//! same binary runs normal tests and model tests.
//!
//! # Replaying a failure
//!
//! A violation panic prints `schedule: 3,0,1,…`. Re-run just that
//! interleaving with:
//!
//! ```text
//! CHECK_SCHEDULE='3,0,1' cargo test -p <crate> -- <exact test name>
//! ```
//!
//! `CHECK_SEED=<n>` switches any checker into seeded-random mode for
//! spaces too large to enumerate. See DESIGN.md §18 for the memory-model
//! approximation and its limits versus C11.

#![warn(missing_docs)]

mod checker;
mod clock;
mod exec;
mod rt;
pub mod sync;
pub mod thread;

pub use checker::{Checker, Report, Violation};

/// Explores `f` with default bounds, panicking on any violation with a
/// replayable schedule. Shorthand for `Checker::new().check(f)`.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f)
}
