//! Thread-local runtime context linking instrumented primitives to the
//! execution that owns the calling thread.
//!
//! Outside a model-checked execution the context is `None` and every
//! primitive in [`crate::sync`] / [`crate::thread`] falls through to its
//! `std` counterpart — that is what makes the instrumented types safe to
//! alias into production code under `--cfg graft_check` while ordinary
//! unit tests in the same build keep working.

use crate::exec::{Execution, OpResult};
use std::cell::RefCell;
use std::sync::Arc;

/// Panic payload used to unwind model threads when an execution aborts
/// (violation found, deadlock, step budget). Thread wrappers swallow it;
/// anything else unwinding out of user code is a real panic and becomes a
/// violation.
pub(crate) struct AbortSignal;

struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn set(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec, tid }));
}

pub(crate) fn clear() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The calling thread's execution handle and model tid, if any.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().as_ref().map(|x| (x.exec.clone(), x.tid)))
}

/// Unwinds the current model thread with the abort payload.
pub(crate) fn unwind_abort() -> ! {
    std::panic::resume_unwind(Box::new(AbortSignal))
}

/// Unwraps an op result, unwinding the model thread on abort. Never call
/// from a `Drop` impl that can run during unwinding — ignore the error
/// there instead (panic-in-panic aborts the process).
pub(crate) fn ok_or_unwind<T>(r: OpResult<T>) -> T {
    match r {
        Ok(v) => v,
        Err(_) => unwind_abort(),
    }
}
