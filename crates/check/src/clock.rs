//! Vector clocks tracking happens-before between model threads.
//!
//! Entry `c[t]` is the number of steps of thread `t` that the clock's
//! owner has synchronized with. A store is *superseded* for a reader once
//! a later store to the same location happens-before the reader's clock —
//! that is the rule deciding which stale values a relaxed load may still
//! return (see `exec.rs`).

/// A vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn new() -> Self {
        VClock(Vec::new())
    }

    /// Value for thread `t` (absent entries are 0).
    pub(crate) fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Sets entry `t` to at least `v`.
    pub(crate) fn raise(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        if self.0[t] < v {
            self.0[t] = v;
        }
    }

    /// Pointwise maximum with `other`.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            if *a < b {
                *a = b;
            }
        }
    }

    /// Feeds the clock into a state hash.
    pub(crate) fn hash_into(&self, h: &mut u64) {
        for (i, &v) in self.0.iter().enumerate() {
            if v != 0 {
                *h = mix(*h ^ ((i as u64) << 32 | v as u64));
            }
        }
    }
}

/// splitmix64 finalizer; the workspace's standard tiny hash.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.raise(0, 3);
        a.raise(2, 1);
        let mut b = VClock::new();
        b.raise(0, 1);
        b.raise(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    fn raise_only_increases() {
        let mut a = VClock::new();
        a.raise(1, 4);
        a.raise(1, 2);
        assert_eq!(a.get(1), 4);
    }
}
