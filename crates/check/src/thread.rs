//! Instrumented thread spawn/join.
//!
//! On a model thread, `spawn` registers a new model thread (the spawn is
//! a scheduling point, and the child inherits the parent's vector clock)
//! and runs the closure on a real OS thread that obeys the execution's
//! token protocol. Off a model thread it is `std::thread::spawn`.

use crate::checker::panic_msg;
use crate::exec::Execution;
use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned (possibly model) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish; a model scheduling point.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, tid, result } => {
                let (_, me) = rt::ctx().expect("joining a model thread from outside its execution");
                rt::ok_or_unwind(exec.join_wait(me, tid));
                match result.lock().unwrap_or_else(|p| p.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread produced no result")
                        as Box<dyn std::any::Any + Send>),
                }
            }
        }
    }
}

/// Spawns a thread; on a model thread the child joins the execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::ctx() {
        Some((exec, me)) => {
            let tid = rt::ok_or_unwind(exec.spawn_register(me));
            let result = Arc::new(StdMutex::new(None));
            let r2 = Arc::clone(&result);
            let e2 = Arc::clone(&exec);
            let h = std::thread::Builder::new()
                .name(format!("graft-check-t{tid}"))
                .spawn(move || {
                    rt::set(Arc::clone(&e2), tid);
                    if e2.park_initial(tid).is_ok() {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => {
                                *r2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                            }
                            Err(p) => {
                                if p.downcast_ref::<rt::AbortSignal>().is_none() {
                                    e2.fail(format!(
                                        "panic in model thread t{tid}: {}",
                                        panic_msg(&*p)
                                    ));
                                }
                            }
                        }
                    }
                    e2.thread_finished(tid);
                    rt::clear();
                })
                .expect("failed to spawn model thread");
            exec.real_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(h);
            // The child's OS thread exists now — only here may the
            // scheduler hand it the token (spawn_register keeps it).
            rt::ok_or_unwind(exec.yield_op(me));
            JoinHandle(Inner::Model { exec, tid, result })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// Yields; on a model thread this is a pure scheduling point.
pub fn yield_now() {
    match rt::ctx() {
        Some((e, me)) => rt::ok_or_unwind(e.yield_op(me)),
        None => std::thread::yield_now(),
    }
}
