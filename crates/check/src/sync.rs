//! Drop-in instrumented replacements for `std::sync` types.
//!
//! Each type wraps its `std` counterpart (the *mirror*). On a thread that
//! belongs to a model-checked execution, every operation is routed through
//! the execution's memory model and scheduler; the mirror is kept in sync
//! with the latest value in modification order so first-touch
//! initialization and non-instrumented observers stay coherent. On any
//! other thread the operation is a plain passthrough to `std` — so a
//! build compiled with `--cfg graft_check` behaves normally outside
//! [`crate::Checker`] runs.
//!
//! Layout mirrors `std::sync`: atomics live in [`atomic`], `Mutex` /
//! `Condvar` / `MutexGuard` / `WaitTimeoutResult` at the module root.

use crate::rt;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};
use std::time::Duration;

/// Instrumented atomic types and fences.
pub mod atomic {
    use super::rt;
    pub use std::sync::atomic::Ordering;

    /// An atomic memory fence, modeled when on a model thread.
    pub fn fence(order: Ordering) {
        match rt::ctx() {
            Some((e, me)) => rt::ok_or_unwind(e.fence(me, order)),
            None => std::sync::atomic::fence(order),
        }
    }

    macro_rules! instrumented_atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty, $uns:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                fn addr(&self) -> usize {
                    &self.inner as *const $std as usize
                }

                fn bits(v: $prim) -> u64 {
                    v as $uns as u64
                }

                fn unbits(b: u64) -> $prim {
                    b as $uns as $prim
                }

                fn mirror(&self) -> u64 {
                    Self::bits(self.inner.load(Ordering::Relaxed))
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $prim {
                    match rt::ctx() {
                        Some((e, me)) => Self::unbits(rt::ok_or_unwind(
                            e.atomic_load(me, self.addr(), self.mirror(), order),
                        )),
                        None => self.inner.load(order),
                    }
                }

                /// Atomic store.
                pub fn store(&self, v: $prim, order: Ordering) {
                    match rt::ctx() {
                        Some((e, me)) => {
                            rt::ok_or_unwind(e.atomic_store(
                                me,
                                self.addr(),
                                self.mirror(),
                                Self::bits(v),
                                order,
                            ));
                            self.inner.store(v, Ordering::Relaxed);
                        }
                        None => self.inner.store(v, order),
                    }
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |_| v)
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old.wrapping_add(v))
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old.wrapping_sub(v))
                }

                /// Atomic bitwise or; returns the previous value.
                pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old | v)
                }

                /// Atomic bitwise and; returns the previous value.
                pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old & v)
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old.max(v))
                }

                /// Atomic min; returns the previous value.
                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    self.rmw(order, |old| old.min(v))
                }

                fn rmw(&self, order: Ordering, f: impl Fn($prim) -> $prim) -> $prim {
                    match rt::ctx() {
                        Some((e, me)) => {
                            let old = Self::unbits(rt::ok_or_unwind(e.atomic_rmw(
                                me,
                                self.addr(),
                                self.mirror(),
                                order,
                                |b| Self::bits(f(Self::unbits(b))),
                            )));
                            self.inner.store(f(old), Ordering::Relaxed);
                            old
                        }
                        None => {
                            // Passthrough RMW via a CAS loop so one closure
                            // serves every fetch_* flavor.
                            let mut cur = self.inner.load(Ordering::Relaxed);
                            loop {
                                match self.inner.compare_exchange_weak(
                                    cur,
                                    f(cur),
                                    order,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(old) => return old,
                                    Err(now) => cur = now,
                                }
                            }
                        }
                    }
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match rt::ctx() {
                        Some((e, me)) => {
                            let r = rt::ok_or_unwind(e.atomic_cas(
                                me,
                                self.addr(),
                                self.mirror(),
                                Self::bits(current),
                                Self::bits(new),
                                success,
                                failure,
                            ));
                            match r {
                                Ok(old) => {
                                    self.inner.store(new, Ordering::Relaxed);
                                    Ok(Self::unbits(old))
                                }
                                Err(old) => Err(Self::unbits(old)),
                            }
                        }
                        None => self.inner.compare_exchange(current, new, success, failure),
                    }
                }

                /// Atomic compare-exchange, allowed to fail spuriously.
                /// The model never fails spuriously (strictly fewer
                /// behaviors than hardware; see DESIGN.md §18).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match rt::ctx() {
                        Some(_) => self.compare_exchange(current, new, success, failure),
                        None => self
                            .inner
                            .compare_exchange_weak(current, new, success, failure),
                    }
                }
            }
        };
    }

    instrumented_atomic_int!(
        /// Instrumented `AtomicU32`.
        AtomicU32, std::sync::atomic::AtomicU32, u32, u32
    );
    instrumented_atomic_int!(
        /// Instrumented `AtomicU64`.
        AtomicU64, std::sync::atomic::AtomicU64, u64, u64
    );
    instrumented_atomic_int!(
        /// Instrumented `AtomicI64`.
        AtomicI64, std::sync::atomic::AtomicI64, i64, u64
    );
    instrumented_atomic_int!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize, std::sync::atomic::AtomicUsize, usize, u64
    );

    /// Instrumented `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: AtomicU32,
    }

    impl AtomicBool {
        /// Creates the atomic with an initial value.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: AtomicU32::new(v as u32),
            }
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            self.inner.load(order) != 0
        }

        /// Atomic store.
        pub fn store(&self, v: bool, order: Ordering) {
            self.inner.store(v as u32, order)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.inner.swap(v as u32, order) != 0
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.inner
                .compare_exchange(current as u32, new as u32, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }

    /// Instrumented `AtomicPtr<T>`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates the atomic with an initial pointer.
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        fn addr(&self) -> usize {
            &self.inner as *const std::sync::atomic::AtomicPtr<T> as usize
        }

        fn mirror(&self) -> u64 {
            self.inner.load(Ordering::Relaxed) as usize as u64
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> *mut T {
            match rt::ctx() {
                Some((e, me)) => {
                    rt::ok_or_unwind(e.atomic_load(me, self.addr(), self.mirror(), order)) as usize
                        as *mut T
                }
                None => self.inner.load(order),
            }
        }

        /// Atomic store.
        pub fn store(&self, p: *mut T, order: Ordering) {
            match rt::ctx() {
                Some((e, me)) => {
                    rt::ok_or_unwind(e.atomic_store(
                        me,
                        self.addr(),
                        self.mirror(),
                        p as usize as u64,
                        order,
                    ));
                    self.inner.store(p, Ordering::Relaxed);
                }
                None => self.inner.store(p, order),
            }
        }

        /// Atomic swap; returns the previous pointer.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            match rt::ctx() {
                Some((e, me)) => {
                    let old = rt::ok_or_unwind(e.atomic_rmw(
                        me,
                        self.addr(),
                        self.mirror(),
                        order,
                        |_| p as usize as u64,
                    )) as usize as *mut T;
                    self.inner.store(p, Ordering::Relaxed);
                    old
                }
                None => self.inner.swap(p, order),
            }
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            match rt::ctx() {
                Some((e, me)) => {
                    let r = rt::ok_or_unwind(e.atomic_cas(
                        me,
                        self.addr(),
                        self.mirror(),
                        current as usize as u64,
                        new as usize as u64,
                        success,
                        failure,
                    ));
                    match r {
                        Ok(old) => {
                            self.inner.store(new, Ordering::Relaxed);
                            Ok(old as usize as *mut T)
                        }
                        Err(old) => Err(old as usize as *mut T),
                    }
                }
                None => self.inner.compare_exchange(current, new, success, failure),
            }
        }

        /// Atomic compare-exchange, allowed to fail spuriously (the model
        /// never does).
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            match rt::ctx() {
                Some(_) => self.compare_exchange(current, new, success, failure),
                None => self
                    .inner
                    .compare_exchange_weak(current, new, success, failure),
            }
        }
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because of a timeout.
///
/// Own type because `std`'s has no public constructor. In the model, a
/// timeout fires only when no other thread is runnable (see DESIGN.md
/// §18), which preserves every wakeup-race behavior without livelocking
/// the explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented `Mutex<T>`: scheduler-visible lock state in the model,
/// plain `std::sync::Mutex` otherwise.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (a scheduling point) on
/// drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    /// True when this guard holds the *model* lock and must release it.
    model: bool,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: StdMutex::new(t),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        &self.inner as *const StdMutex<T> as *const () as usize
    }

    /// Acquires the lock (a model scheduling point on model threads).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::ctx() {
            Some((e, me)) => {
                rt::ok_or_unwind(e.mutex_lock(me, self.addr()));
                // The model grants exclusivity, so the std lock is
                // uncontended here.
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: true,
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(p.into_inner()),
                    model: false,
                })),
            },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard used after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard used after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model unlock hands the token
        // to another thread that may immediately std-lock it.
        drop(self.std.take());
        if self.model {
            if let Some((e, me)) = rt::ctx() {
                // Ignore aborts: this can run while unwinding, and a
                // panic here would abort the process.
                let _ = e.mutex_unlock(me, self.lock.addr());
            }
        }
    }
}

/// Instrumented `Condvar` with modeled notify choice and idle-only
/// timeouts.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const StdCondvar as usize
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.wait_impl(guard, None) {
            Ok((g, _)) => Ok(g),
            Err(p) => Err(PoisonError::new(p.into_inner().0)),
        }
    }

    /// Blocks until notified or (model: only when the system is otherwise
    /// idle) the timeout elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        self.wait_impl(guard, Some(dur))
    }

    fn wait_impl<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model {
            let (e, me) = rt::ctx().expect("model guard on non-model thread");
            let mutex_addr = guard.lock.addr();
            drop(guard.std.take());
            // Disarm the guard: if the wait unwinds (abort), its Drop
            // must not model-unlock a lock we no longer hold.
            guard.model = false;
            let timed_out =
                rt::ok_or_unwind(e.condvar_wait(me, self.addr(), mutex_addr, dur.is_some()));
            guard.std = Some(guard.lock.inner.lock().unwrap_or_else(|p| p.into_inner()));
            guard.model = true;
            Ok((guard, WaitTimeoutResult(timed_out)))
        } else {
            let std = guard.std.take().expect("guard used after release");
            match dur {
                Some(d) => match self.inner.wait_timeout(std, d) {
                    Ok((g, r)) => {
                        guard.std = Some(g);
                        Ok((guard, WaitTimeoutResult(r.timed_out())))
                    }
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        guard.std = Some(g);
                        Err(PoisonError::new((guard, WaitTimeoutResult(r.timed_out()))))
                    }
                },
                None => match self.inner.wait(std) {
                    Ok(g) => {
                        guard.std = Some(g);
                        Ok((guard, WaitTimeoutResult(false)))
                    }
                    Err(p) => {
                        guard.std = Some(p.into_inner());
                        Err(PoisonError::new((guard, WaitTimeoutResult(false))))
                    }
                },
            }
        }
    }

    /// Wakes one waiter; in the model, *which* waiter is a decision point.
    pub fn notify_one(&self) {
        match rt::ctx() {
            Some((e, me)) => rt::ok_or_unwind(e.condvar_notify(me, self.addr(), false)),
            None => self.inner.notify_one(),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match rt::ctx() {
            Some((e, me)) => rt::ok_or_unwind(e.condvar_notify(me, self.addr(), true)),
            None => self.inner.notify_all(),
        }
    }
}
