//! Schedule exploration: exhaustive DFS under a preemption bound, a
//! seeded-random fallback, and single-schedule replay.
//!
//! A [`Checker`] runs the closure under test many times. Each run is one
//! [`crate::exec::Execution`]: real threads serialized by a token, with a
//! decision recorded at every point that had more than one alternative
//! (which thread runs, which visible store a weak load returns, which
//! waiter a notify wakes). DFS backtracks over those decisions — the
//! recorded `(chosen, n_admissible)` pairs form the stack — so the space
//! is enumerated without ever storing whole states. State hashing prunes
//! branches that re-reach an already-seen state, and the preemption bound
//! (default 4) caps how many times control may switch away from a runnable
//! thread, which is what keeps the space finite and small (CHESS-style:
//! most real bugs need very few preemptions).
//!
//! On a violation, [`Checker::check`] panics with the failing schedule
//! string and the event trace; `CHECK_SCHEDULE="…" cargo test <test>`
//! replays exactly that interleaving. `CHECK_SEED=<n>` switches any
//! checker to seeded-random mode, for spaces too large to enumerate.

use crate::clock::mix;
use crate::exec::{Controller, ExecOutcome, Execution, Failure, PointRecord};
use crate::rt;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A found counterexample: what failed, the schedule to replay it, and
/// the tail of the event trace leading up to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description (panic message, deadlock, …).
    pub message: String,
    /// Comma-joined decision indices; feed to [`Checker::replay`] or the
    /// `CHECK_SCHEDULE` env var.
    pub schedule: String,
    /// Last events (thread, op, value) before the failure.
    pub trace: Vec<String>,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct schedules executed.
    pub executions: usize,
    /// True when DFS exhausted the (bounded, pruned) space with no
    /// violation. Random mode never reports complete.
    pub complete: bool,
    /// Decision points whose branching was cut by the state-hash filter.
    pub pruned_points: usize,
    /// The first violation found, if any (exploration stops at it).
    pub violation: Option<Violation>,
    /// Executions whose replayed prefix diverged (program nondeterminism
    /// not under checker control — e.g. address-dependent branching).
    pub divergent: usize,
    /// Total instrumented steps across all executions.
    pub total_steps: usize,
}

/// Configurable model-checking session. See the module docs.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: u32,
    max_steps: usize,
    max_executions: usize,
    stale_reads: bool,
    prune: bool,
    seed: Option<u64>,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: 4,
            max_steps: 10_000,
            max_executions: 500_000,
            stale_reads: true,
            prune: true,
            seed: None,
        }
    }
}

impl Checker {
    /// A checker with the default bounds (4 preemptions, pruning on,
    /// stale reads explored, DFS mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Max context switches away from a runnable thread per execution.
    pub fn preemption_bound(mut self, n: u32) -> Self {
        self.preemption_bound = n;
        self
    }

    /// Per-execution instrumented-step budget (livelock detector).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Cap on executions; DFS reports `complete: false` when hit.
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Whether non-SeqCst loads branch over stale (unsuperseded) stores.
    /// Off = sequentially consistent exploration (scheduling only).
    pub fn stale_reads(mut self, on: bool) -> Self {
        self.stale_reads = on;
        self
    }

    /// Whether to prune branches at already-seen state hashes.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Seeded-random mode instead of DFS (for very large spaces).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Explores `f` and panics with a replayable schedule on violation.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.check_report(f);
        if let Some(v) = report.violation {
            panic!(
                "graft-check: violation after {} execution(s): {}\n\
                 schedule: {}\n\
                 replay with: CHECK_SCHEDULE='{}' cargo test -- <this test, exact filter>\n\
                 trace (last {} events):\n  {}",
                report.executions,
                v.message,
                v.schedule,
                v.schedule,
                v.trace.len(),
                v.trace.join("\n  "),
            );
        }
    }

    /// Explores `f` and returns the [`Report`] instead of panicking.
    /// Honors `CHECK_SCHEDULE` (single replay) and `CHECK_SEED` (random
    /// mode) from the environment.
    pub fn check_report<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        if let Ok(s) = std::env::var("CHECK_SCHEDULE") {
            return self.replay_arc(&f, &s);
        }
        let seed = self.seed.or_else(|| {
            std::env::var("CHECK_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        match seed {
            None => self.dfs(&f),
            Some(s) => self.random(&f, s),
        }
    }

    /// Runs exactly one execution following `schedule` (a comma-joined
    /// decision string from a [`Violation`]), then default choices.
    pub fn replay<F>(&self, f: F, schedule: &str) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.replay_arc(&Arc::new(f), schedule)
    }

    fn replay_arc<F>(&self, f: &Arc<F>, schedule: &str) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let prefix: Vec<u32> = schedule
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad schedule element {s:?}"))
            })
            .collect();
        let out = self.run_one(f, prefix, None, HashSet::new());
        Report {
            executions: 1,
            complete: false,
            pruned_points: out.pruned_points,
            violation: out.failure.map(to_violation),
            divergent: out.replay_divergence as usize,
            total_steps: out.steps,
        }
    }

    fn dfs<F>(&self, f: &Arc<F>) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut stack: Vec<PointRecord> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut executions = 0usize;
        let mut pruned = 0usize;
        let mut divergent = 0usize;
        let mut total_steps = 0usize;
        loop {
            let prefix: Vec<u32> = stack.iter().map(|p| p.chosen).collect();
            let plen = prefix.len();
            let out = self.run_one(f, prefix, None, std::mem::take(&mut seen));
            seen = out.seen;
            executions += 1;
            pruned += out.pruned_points;
            total_steps += out.steps;
            if out.replay_divergence {
                divergent += 1;
            }
            if let Some(fl) = out.failure {
                return Report {
                    executions,
                    complete: false,
                    pruned_points: pruned,
                    violation: Some(to_violation(fl)),
                    divergent,
                    total_steps,
                };
            }
            // Keep the stack's original n_admissible for the replayed
            // prefix; graft the fresh decision points on after it.
            stack.truncate(plen.min(out.recorded.len()));
            stack.extend_from_slice(&out.recorded[stack.len()..]);
            // Backtrack to the deepest point with an untried alternative.
            loop {
                match stack.last_mut() {
                    None => {
                        return Report {
                            executions,
                            complete: true,
                            pruned_points: pruned,
                            violation: None,
                            divergent,
                            total_steps,
                        };
                    }
                    Some(top) if top.chosen + 1 < top.n_admissible => {
                        top.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                }
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    complete: false,
                    pruned_points: pruned,
                    violation: None,
                    divergent,
                    total_steps,
                };
            }
        }
    }

    fn random<F>(&self, f: &Arc<F>, seed: u64) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut pruned = 0usize;
        let mut divergent = 0usize;
        let mut total_steps = 0usize;
        for i in 0..self.max_executions {
            let rng = mix(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let out = self.run_one(f, Vec::new(), Some(rng), std::mem::take(&mut seen));
            seen = out.seen;
            pruned += out.pruned_points;
            total_steps += out.steps;
            if out.replay_divergence {
                divergent += 1;
            }
            if let Some(fl) = out.failure {
                return Report {
                    executions: i + 1,
                    complete: false,
                    pruned_points: pruned,
                    violation: Some(to_violation(fl)),
                    divergent,
                    total_steps,
                };
            }
        }
        Report {
            executions: self.max_executions,
            complete: false,
            pruned_points: pruned,
            violation: None,
            divergent,
            total_steps,
        }
    }

    /// Runs one execution of `f` on a fresh OS thread tree and collects
    /// the outcome once every model thread has exited.
    fn run_one<F>(
        &self,
        f: &Arc<F>,
        prefix: Vec<u32>,
        rng: Option<u64>,
        seen: HashSet<u64>,
    ) -> ExecOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let controller = Controller::new(
            prefix,
            rng,
            seen,
            self.prune,
            self.preemption_bound,
            self.stale_reads,
        );
        let exec = Arc::new(Execution::new(self.max_steps, controller));
        let e2 = Arc::clone(&exec);
        let f2 = Arc::clone(f);
        let main = std::thread::Builder::new()
            .name("graft-check-t0".into())
            .spawn(move || {
                rt::set(Arc::clone(&e2), 0);
                let r = catch_unwind(AssertUnwindSafe(|| f2()));
                if let Err(p) = r {
                    if p.downcast_ref::<rt::AbortSignal>().is_none() {
                        e2.fail(format!("panic in model thread t0: {}", panic_msg(&*p)));
                    }
                }
                e2.thread_finished(0);
                rt::clear();
            })
            .expect("failed to spawn model main thread");
        let _ = main.join();
        loop {
            let h = exec
                .real_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        match Arc::try_unwrap(exec) {
            Ok(e) => e.into_outcome(),
            Err(_) => panic!(
                "graft-check: execution leaked references \
                 (a JoinHandle or context escaped the closure)"
            ),
        }
    }
}

pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn to_violation(f: Failure) -> Violation {
    Violation {
        message: f.message,
        schedule: f
            .schedule
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(","),
        trace: f.trace,
    }
}
