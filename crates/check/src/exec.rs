//! One model-checked execution: serialized threads, instrumented memory,
//! and the per-execution decision controller.
//!
//! Real OS threads run the code under test, but a token-passing protocol
//! guarantees exactly one of them executes between two *scheduling points*
//! (every instrumented operation is one). At each point with more than one
//! enabled alternative — which thread steps next, or which visible store a
//! weak load returns — the [`Controller`] either replays a recorded choice
//! (DFS prefix / `CHECK_SCHEDULE`) or takes the default / a seeded-random
//! pick. Every choice is recorded, so any failing execution is replayable
//! from its schedule string alone.
//!
//! The memory model is sequential consistency plus *explicit reorder
//! windows*: each location keeps a short history of stores, and a
//! non-SeqCst load may (as an explored branch) return a stale store unless
//! a later store to the location already happens-before the loading
//! thread. Happens-before is tracked with vector clocks over release
//! stores, acquire loads, release/acquire fences (pending-clock scheme),
//! SeqCst operations (via a global SC clock), mutexes, and spawn/join.
//! See DESIGN.md §18 for what this approximates vs. C11.

use crate::clock::{mix, VClock};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard cap on model threads per execution.
pub(crate) const MAX_THREADS: usize = 8;
/// Stale stores retained per location (plus the latest one).
const HISTORY: usize = 4;
/// Trace ring capacity (last events shown on a violation).
const TRACE_CAP: usize = 48;

/// Signal that the execution aborted; instrumented code unwinds with this
/// payload and the thread wrapper swallows it.
pub(crate) struct Abort;

pub(crate) type OpResult<T> = Result<T, Abort>;

/// How an execution ended.
#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub message: String,
    pub trace: Vec<String>,
    pub schedule: Vec<u32>,
}

/// One recorded decision point (only points with > 1 alternative count).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PointRecord {
    /// Total alternatives at the point (kept for debugging dumps).
    #[allow(dead_code)]
    pub n_alts: u32,
    /// Alternatives the explorer may branch to (1 when the preemption
    /// budget is exhausted or the state hash was already seen).
    pub n_admissible: u32,
    /// The alternative taken in this execution.
    pub chosen: u32,
}

/// Cross-execution exploration inputs threaded into one execution.
pub(crate) struct Controller {
    /// Choices to replay verbatim before free exploration starts.
    pub prefix: Vec<u32>,
    cursor: usize,
    /// Seeded RNG for the random fallback; `None` = DFS default policy.
    pub rng: Option<u64>,
    /// Every decision made (replayed and fresh), in order.
    pub recorded: Vec<PointRecord>,
    /// State hashes seen across executions (for prefix pruning).
    pub seen: std::collections::HashSet<u64>,
    pub prune: bool,
    pub preemption_bound: u32,
    pub stale_reads: bool,
    /// Points whose branches were cut by the state-hash filter.
    pub pruned_points: usize,
    /// Replay mismatch (program nondeterminism) detected.
    pub replay_divergence: bool,
}

impl Controller {
    pub(crate) fn new(
        prefix: Vec<u32>,
        rng: Option<u64>,
        seen: std::collections::HashSet<u64>,
        prune: bool,
        preemption_bound: u32,
        stale_reads: bool,
    ) -> Self {
        Controller {
            prefix,
            cursor: 0,
            rng,
            recorded: Vec::new(),
            seen,
            prune,
            preemption_bound,
            stale_reads,
            pruned_points: 0,
            replay_divergence: false,
        }
    }

    fn next_rand(&mut self, n: u32) -> u32 {
        let s = self.rng.as_mut().expect("random choice without rng");
        *s = mix(*s);
        (*s % n as u64) as u32
    }

    /// Decides one point. `state_hash` is the pruning key; `schedule_cost`
    /// is true when non-default alternatives spend preemption budget.
    fn choose(
        &mut self,
        n_alts: u32,
        state_hash: u64,
        schedule_cost: bool,
        preemptions_used: u32,
    ) -> u32 {
        debug_assert!(n_alts >= 1);
        if n_alts == 1 {
            return 0;
        }
        if self.cursor < self.prefix.len() {
            let c = self.prefix[self.cursor];
            self.cursor += 1;
            let c = if c >= n_alts {
                self.replay_divergence = true;
                0
            } else {
                c
            };
            self.recorded.push(PointRecord {
                n_alts,
                n_admissible: 1, // replayed points never re-branch
                chosen: c,
            });
            return c;
        }
        let mut n_admissible = if schedule_cost && preemptions_used >= self.preemption_bound {
            1
        } else {
            n_alts
        };
        if self.prune && n_admissible > 1 && !self.seen.insert(state_hash) {
            self.pruned_points += 1;
            n_admissible = 1;
        }
        let c = match self.rng {
            Some(_) => self.next_rand(n_admissible),
            None => 0,
        };
        self.recorded.push(PointRecord {
            n_alts,
            n_admissible,
            chosen: c,
        });
        c
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Blocked acquiring the mutex with this model id.
    Mutex(usize),
    /// Waiting on a condvar (holds the mutex to reacquire on wake).
    Cond {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    /// Blocked joining the given thread.
    Join(usize),
    Finished,
}

struct ThreadSlot {
    status: Status,
    clock: VClock,
    /// Steps executed by this thread (its own clock entry).
    steps: u32,
    /// Rolling hash of (op, value) pairs — the thread's "program counter"
    /// for state hashing.
    pos_hash: u64,
    /// Release clocks picked up by relaxed loads, waiting for an acquire
    /// fence to take effect.
    pending_acquire: VClock,
    /// Clock snapshot at the last release fence; stamped onto subsequent
    /// relaxed stores.
    pending_release: Option<VClock>,
    /// Set when the thread was woken by a (virtual) wait timeout.
    timed_out: bool,
}

/// One store in a location's history.
struct Store {
    value: u64,
    writer: usize,
    /// Writer's step count at the store (its clock entry).
    windex: u32,
    /// Release clock (None for plain relaxed stores with no prior fence).
    rel: Option<VClock>,
    /// Global modification-order index.
    seq: u64,
}

struct LocState {
    history: Vec<Store>,
    /// Per-thread coherence floor: lowest modification index each thread
    /// may still read.
    floor: Vec<u64>,
}

struct MutexState {
    locked_by: Option<usize>,
    release_clock: VClock,
}

struct ExecInner {
    threads: Vec<ThreadSlot>,
    current: usize,
    /// Thread that executed the previous step (preemption accounting).
    last: usize,
    preemptions: u32,
    step_count: usize,
    max_steps: usize,
    locations: Vec<LocState>,
    addr_to_loc: HashMap<usize, usize>,
    mutexes: Vec<MutexState>,
    addr_to_mutex: HashMap<usize, usize>,
    addr_to_cv: HashMap<usize, usize>,
    n_cvs: usize,
    mod_seq: u64,
    sc_clock: VClock,
    trace: VecDeque<String>,
    failure: Option<String>,
    aborted: bool,
    controller: Controller,
}

impl ExecInner {
    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn trace_push(&mut self, tid: usize, desc: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(format!("t{tid}: {desc}"));
    }

    /// Registers (or finds) the location behind `addr`, seeding its
    /// history from the mirrored std value on first touch.
    fn loc_id(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&id) = self.addr_to_loc.get(&addr) {
            return id;
        }
        let id = self.locations.len();
        let seq = self.mod_seq;
        self.mod_seq += 1;
        self.locations.push(LocState {
            history: vec![Store {
                value: init,
                writer: usize::MAX,
                windex: 0,
                rel: None,
                seq,
            }],
            floor: vec![0; MAX_THREADS],
        });
        self.addr_to_loc.insert(addr, id);
        id
    }

    fn mutex_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.addr_to_mutex.get(&addr) {
            return id;
        }
        let id = self.mutexes.len();
        self.mutexes.push(MutexState {
            locked_by: None,
            release_clock: VClock::new(),
        });
        self.addr_to_mutex.insert(addr, id);
        id
    }

    fn cv_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.addr_to_cv.get(&addr) {
            return id;
        }
        let id = self.n_cvs;
        self.n_cvs += 1;
        self.addr_to_cv.insert(addr, id);
        id
    }

    /// Full-state hash for prefix pruning. Covers thread positions (with
    /// read values folded in), clocks, memory histories (values relative
    /// to each history, not absolute sequence numbers), lock/waiter state,
    /// and the preemption budget.
    fn state_hash(&self) -> u64 {
        let mut h = mix(self.last as u64 ^ ((self.preemptions as u64) << 32));
        for (i, t) in self.threads.iter().enumerate() {
            let s = match &t.status {
                Status::Runnable => 1u64,
                Status::Mutex(m) => 2 | ((*m as u64) << 8),
                Status::Cond { cv, mutex, timed } => {
                    3 | ((*cv as u64) << 8) | ((*mutex as u64) << 24) | ((*timed as u64) << 40)
                }
                Status::Join(j) => 4 | ((*j as u64) << 8),
                Status::Finished => 5,
            };
            h = mix(h ^ (i as u64) ^ (s << 3) ^ t.pos_hash);
            t.clock.hash_into(&mut h);
        }
        self.sc_clock.hash_into(&mut h);
        for loc in &self.locations {
            let base = loc.history.first().map(|s| s.seq).unwrap_or(0);
            for s in &loc.history {
                h = mix(h
                    ^ s.value
                    ^ ((s.writer as u64) << 48)
                    ^ ((s.windex as u64) << 16)
                    ^ (s.seq - base));
            }
            for (t, &f) in loc.floor.iter().enumerate() {
                h = mix(h ^ ((t as u64) << 56) ^ f.saturating_sub(base));
            }
        }
        for m in &self.mutexes {
            h = mix(h ^ m.locked_by.map(|t| t as u64 + 1).unwrap_or(0));
            m.release_clock.hash_into(&mut h);
        }
        h
    }

    /// Picks the next thread to run. Returns `Err(Abort)` on deadlock or
    /// after a failure. When nothing is runnable but timed waiters exist,
    /// one of them times out (timeouts fire only when the system is
    /// otherwise idle — see DESIGN.md §18).
    fn pick_next(&mut self) -> OpResult<()> {
        if self.aborted {
            return Err(Abort);
        }
        let mut enabled = self.enabled();
        if enabled.is_empty() {
            let timed: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Cond { timed: true, .. }))
                .map(|(i, _)| i)
                .collect();
            if timed.is_empty() {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    return Ok(()); // execution complete; nobody to schedule
                }
                return self.fail_locked("deadlock: no runnable thread and no timed waiter");
            }
            let hash = self.state_hash();
            let pre = self.preemptions;
            let idx = self.controller.choose(timed.len() as u32, hash, false, pre);
            let tid = timed[idx as usize];
            let Status::Cond { mutex, .. } = self.threads[tid].status else {
                unreachable!()
            };
            self.threads[tid].status = Status::Mutex(mutex);
            self.threads[tid].timed_out = true;
            self.trace_push(tid, "wait timeout fires (system idle)".into());
            self.wake_mutex_waiters_if_free(mutex);
            enabled = self.enabled();
            if enabled.is_empty() {
                // Still blocked on the mutex; schedule its holder — but the
                // holder must be runnable for us to get here, so this means
                // real deadlock.
                return self.fail_locked("deadlock after wait timeout");
            }
        }
        // Canonical alternative order: continuing the last-run thread
        // first (no preemption), then the other enabled threads ascending.
        let cont = enabled.iter().position(|&t| t == self.last);
        let mut alts = Vec::with_capacity(enabled.len());
        if let Some(ci) = cont {
            alts.push(enabled[ci]);
            for (i, &t) in enabled.iter().enumerate() {
                if i != ci {
                    alts.push(t);
                }
            }
        } else {
            alts.extend_from_slice(&enabled);
        }
        let idx = if alts.len() == 1 {
            0
        } else {
            let hash = self.state_hash();
            let pre = self.preemptions;
            self.controller
                .choose(alts.len() as u32, hash, cont.is_some(), pre)
        };
        let next = alts[idx as usize];
        if cont.is_some() && next != self.last {
            self.preemptions += 1;
        }
        self.current = next;
        Ok(())
    }

    /// If `mutex` is free, make all its waiters runnable (they re-race).
    fn wake_mutex_waiters_if_free(&mut self, mutex: usize) {
        if self.mutexes[mutex].locked_by.is_some() {
            return;
        }
        for t in self.threads.iter_mut() {
            if t.status == Status::Mutex(mutex) {
                t.status = Status::Runnable;
            }
        }
    }

    fn fail_locked(&mut self, msg: &str) -> OpResult<()> {
        if self.failure.is_none() {
            self.failure = Some(msg.to_string());
        }
        self.aborted = true;
        Err(Abort)
    }

    /// Charges one step to `me` and checks the step budget.
    fn step(&mut self, me: usize, opcode: u64, value: u64) -> OpResult<()> {
        if self.aborted {
            return Err(Abort);
        }
        self.step_count += 1;
        if self.step_count > self.max_steps {
            return self
                .fail_locked("step budget exceeded (possible livelock, or raise max_steps)");
        }
        let t = &mut self.threads[me];
        t.steps += 1;
        let steps = t.steps;
        t.clock.raise(me, steps);
        t.pos_hash = mix(t.pos_hash ^ opcode ^ value.rotate_left(17));
        self.last = me;
        Ok(())
    }

    /// The set of stores of `loc` thread `me` may read, newest first.
    /// `viewer` is the clock deciding supersession (the thread clock, plus
    /// the SC clock for SeqCst loads).
    fn visible(&self, loc: usize, me: usize, seqcst: bool) -> Vec<usize> {
        let l = &self.locations[loc];
        let mut viewer = self.threads[me].clock.clone();
        if seqcst {
            viewer.join(&self.sc_clock);
        }
        // A store is a floor-raiser if the viewer already knows about it:
        // nothing older may be read.
        let mut known_floor = l.floor[me];
        for s in &l.history {
            let known = s.writer == usize::MAX && s.seq == l.history[0].seq
                || s.writer != usize::MAX && s.windex <= viewer.get(s.writer);
            if known && s.seq > known_floor {
                known_floor = s.seq;
            }
        }
        // The base (init) entry is "known" only in the sense that it is
        // readable when nothing newer is known.
        let mut out: Vec<usize> = l
            .history
            .iter()
            .enumerate()
            .filter(|(_, s)| s.seq >= known_floor)
            .map(|(i, _)| i)
            .collect();
        out.sort_by(|&a, &b| l.history[b].seq.cmp(&l.history[a].seq));
        out
    }

    fn apply_read(&mut self, loc: usize, me: usize, idx: usize, ord: Ordering) -> u64 {
        let rel = self.locations[loc].history[idx].rel.clone();
        let seq = self.locations[loc].history[idx].seq;
        let value = self.locations[loc].history[idx].value;
        let floor = &mut self.locations[loc].floor[me];
        if seq > *floor {
            *floor = seq;
        }
        if let Some(rel) = rel {
            let t = &mut self.threads[me];
            match ord {
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => t.clock.join(&rel),
                _ => t.pending_acquire.join(&rel),
            }
        }
        value
    }

    fn push_store(&mut self, loc: usize, me: usize, value: u64, ord: Ordering) {
        let t = &self.threads[me];
        let rel = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => Some(t.clock.clone()),
            _ => t.pending_release.clone(),
        };
        let windex = t.steps;
        if ord == Ordering::SeqCst {
            let clock = self.threads[me].clock.clone();
            self.sc_clock.join(&clock);
        }
        let seq = self.mod_seq;
        self.mod_seq += 1;
        let l = &mut self.locations[loc];
        l.history.push(Store {
            value,
            writer: me,
            windex,
            rel,
            seq,
        });
        if l.history.len() > HISTORY + 1 {
            l.history.remove(0);
        }
        if seq > l.floor[me] {
            l.floor[me] = seq;
        }
    }
}

/// Shared state of one model-checked execution.
pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    /// Real OS handles of spawned model threads, joined at execution end.
    pub(crate) real_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Outcome extracted after all threads of an execution exit.
pub(crate) struct ExecOutcome {
    pub recorded: Vec<PointRecord>,
    pub seen: std::collections::HashSet<u64>,
    pub pruned_points: usize,
    pub failure: Option<Failure>,
    pub steps: usize,
    pub replay_divergence: bool,
}

impl Execution {
    pub(crate) fn new(max_steps: usize, controller: Controller) -> Self {
        let main = ThreadSlot {
            status: Status::Runnable,
            clock: VClock::new(),
            steps: 0,
            pos_hash: 0,
            pending_acquire: VClock::new(),
            pending_release: None,
            timed_out: false,
        };
        Execution {
            inner: StdMutex::new(ExecInner {
                threads: vec![main],
                current: 0,
                last: 0,
                preemptions: 0,
                step_count: 0,
                max_steps,
                locations: Vec::new(),
                addr_to_loc: HashMap::new(),
                mutexes: Vec::new(),
                addr_to_mutex: HashMap::new(),
                addr_to_cv: HashMap::new(),
                n_cvs: 0,
                mod_seq: 0,
                sc_clock: VClock::new(),
                trace: VecDeque::new(),
                failure: None,
                aborted: false,
                controller,
            }),
            cv: StdCondvar::new(),
            real_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Parks the calling model thread until it is scheduled (or abort).
    fn park<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, ExecInner>,
        me: usize,
    ) -> OpResult<StdMutexGuard<'a, ExecInner>> {
        while g.current != me && !g.aborted {
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if g.aborted {
            Err(Abort)
        } else {
            Ok(g)
        }
    }

    /// Ends the current step: schedules the next thread, hands off the
    /// token, and parks if the token moved away.
    fn handoff<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, ExecInner>,
        me: usize,
    ) -> OpResult<StdMutexGuard<'a, ExecInner>> {
        g.pick_next()?;
        if g.current != me {
            self.cv.notify_all();
            g = self.park(g, me)?;
        }
        Ok(g)
    }

    /// Called by a newly spawned model thread before running user code.
    pub(crate) fn park_initial(&self, me: usize) -> OpResult<()> {
        let g = self.lock();
        let _g = self.park(g, me)?;
        Ok(())
    }

    /// Records a failure from outside the token protocol (panic in user
    /// code on the current thread) and wakes everyone.
    pub(crate) fn fail(&self, message: String) {
        let mut g = self.lock();
        if g.failure.is_none() {
            g.failure = Some(message);
        }
        g.aborted = true;
        drop(g);
        self.cv.notify_all();
    }

    // ---------------------------------------------------------------
    // Atomic operations
    // ---------------------------------------------------------------

    pub(crate) fn atomic_load(
        &self,
        me: usize,
        addr: usize,
        init: u64,
        ord: Ordering,
    ) -> OpResult<u64> {
        let mut g = self.lock();
        g.step(me, 0x11, addr as u64)?;
        let loc = g.loc_id(addr, init);
        let vis = g.visible(loc, me, ord == Ordering::SeqCst);
        let n = if g.controller.stale_reads {
            vis.len()
        } else {
            1
        };
        let idx = if n > 1 {
            let hash = g.state_hash();
            let pre = g.preemptions;
            g.controller.choose(n as u32, hash, false, pre)
        } else {
            0
        };
        let value = g.apply_read(loc, me, vis[idx as usize], ord);
        let stale = if idx > 0 { " STALE" } else { "" };
        g.trace_push(me, format!("load loc{loc} -> {value} ({ord:?}){stale}"));
        g.threads[me].pos_hash = mix(g.threads[me].pos_hash ^ value);
        drop(self.handoff(g, me)?);
        Ok(value)
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        addr: usize,
        init: u64,
        value: u64,
        ord: Ordering,
    ) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x12, addr as u64 ^ value)?;
        let loc = g.loc_id(addr, init);
        g.push_store(loc, me, value, ord);
        g.trace_push(me, format!("store loc{loc} <- {value} ({ord:?})"));
        drop(self.handoff(g, me)?);
        Ok(())
    }

    /// Read-modify-write: always reads the latest store (C11 guarantees
    /// RMWs read the newest value in modification order).
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        addr: usize,
        init: u64,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> OpResult<u64> {
        let mut g = self.lock();
        g.step(me, 0x13, addr as u64)?;
        let loc = g.loc_id(addr, init);
        let latest = g.locations[loc].history.len() - 1;
        let old = g.apply_read(loc, me, latest, rmw_load_part(ord));
        let new = f(old);
        g.push_store(loc, me, new, rmw_store_part(ord));
        g.trace_push(me, format!("rmw loc{loc} {old} -> {new} ({ord:?})"));
        g.threads[me].pos_hash = mix(g.threads[me].pos_hash ^ old);
        drop(self.handoff(g, me)?);
        Ok(old)
    }

    /// Compare-exchange. Reads the latest store; on mismatch behaves as a
    /// load with the failure ordering (no stale branching — stronger than
    /// C11, see DESIGN.md §18).
    #[allow(clippy::too_many_arguments)] // mirrors `compare_exchange`'s shape
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        addr: usize,
        init: u64,
        expected: u64,
        new: u64,
        ord: Ordering,
        ord_fail: Ordering,
    ) -> OpResult<Result<u64, u64>> {
        let mut g = self.lock();
        g.step(me, 0x14, addr as u64 ^ expected)?;
        let loc = g.loc_id(addr, init);
        let latest = g.locations[loc].history.len() - 1;
        let current = g.locations[loc].history[latest].value;
        let res = if current == expected {
            let old = g.apply_read(loc, me, latest, rmw_load_part(ord));
            g.push_store(loc, me, new, rmw_store_part(ord));
            g.trace_push(me, format!("cas loc{loc} {old} -> {new} ok ({ord:?})"));
            Ok(old)
        } else {
            let old = g.apply_read(loc, me, latest, ord_fail);
            g.trace_push(
                me,
                format!("cas loc{loc} failed: saw {old}, wanted {expected}"),
            );
            Err(old)
        };
        let tag = if res.is_ok() { 1 } else { 0 };
        g.threads[me].pos_hash = mix(g.threads[me].pos_hash ^ current ^ tag);
        drop(self.handoff(g, me)?);
        Ok(res)
    }

    pub(crate) fn fence(&self, me: usize, ord: Ordering) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x15, ord as u64)?;
        let pending = std::mem::take(&mut g.threads[me].pending_acquire);
        match ord {
            Ordering::Acquire => {
                g.threads[me].clock.join(&pending);
            }
            Ordering::Release => {
                let snap = g.threads[me].clock.clone();
                g.threads[me].pending_release = Some(snap);
                g.threads[me].pending_acquire = pending; // untouched
            }
            Ordering::AcqRel => {
                g.threads[me].clock.join(&pending);
                let snap = g.threads[me].clock.clone();
                g.threads[me].pending_release = Some(snap);
            }
            _ => {
                // SeqCst: acquire side, then synchronize with the global
                // SC clock in both directions, then release side.
                g.threads[me].clock.join(&pending);
                let sc = g.sc_clock.clone();
                g.threads[me].clock.join(&sc);
                let clock = g.threads[me].clock.clone();
                g.sc_clock.join(&clock);
                g.threads[me].pending_release = Some(clock);
            }
        }
        g.trace_push(me, format!("fence ({ord:?})"));
        drop(self.handoff(g, me)?);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Mutex / Condvar
    // ---------------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, addr: usize) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x21, addr as u64)?;
        let mid = g.mutex_id(addr);
        loop {
            if g.mutexes[mid].locked_by.is_none() {
                g.mutexes[mid].locked_by = Some(me);
                let rc = g.mutexes[mid].release_clock.clone();
                g.threads[me].clock.join(&rc);
                g.trace_push(me, format!("lock m{mid}"));
                g = self.handoff(g, me)?;
                drop(g);
                return Ok(());
            }
            g.threads[me].status = Status::Mutex(mid);
            g.trace_push(me, format!("blocked on m{mid}"));
            g = self.handoff(g, me)?;
            // Rescheduled: the mutex was free when we were woken, but
            // another waiter may have re-taken it; loop and re-check.
        }
    }

    pub(crate) fn mutex_unlock(&self, me: usize, addr: usize) -> OpResult<()> {
        let mut g = self.lock();
        if g.aborted {
            return Err(Abort);
        }
        g.step(me, 0x22, addr as u64)?;
        let mid = g.mutex_id(addr);
        debug_assert_eq!(g.mutexes[mid].locked_by, Some(me));
        g.mutexes[mid].locked_by = None;
        let clock = g.threads[me].clock.clone();
        g.mutexes[mid].release_clock.join(&clock);
        g.wake_mutex_waiters_if_free(mid);
        g.trace_push(me, format!("unlock m{mid}"));
        drop(self.handoff(g, me)?);
        Ok(())
    }

    /// Condvar wait: releases the mutex, blocks until notified (or a
    /// virtual timeout when `timed`), then reacquires the mutex. Returns
    /// whether the wake was a timeout.
    pub(crate) fn condvar_wait(
        &self,
        me: usize,
        cv_addr: usize,
        mutex_addr: usize,
        timed: bool,
    ) -> OpResult<bool> {
        let mut g = self.lock();
        g.step(me, 0x23, cv_addr as u64)?;
        let cvid = g.cv_id(cv_addr);
        let mid = g.mutex_id(mutex_addr);
        debug_assert_eq!(g.mutexes[mid].locked_by, Some(me));
        g.mutexes[mid].locked_by = None;
        let clock = g.threads[me].clock.clone();
        g.mutexes[mid].release_clock.join(&clock);
        g.wake_mutex_waiters_if_free(mid);
        g.threads[me].timed_out = false;
        g.threads[me].status = Status::Cond {
            cv: cvid,
            mutex: mid,
            timed,
        };
        g.trace_push(me, format!("cv{cvid} wait (timed={timed})"));
        g = self.handoff(g, me)?;
        // Woken: status is Runnable again (notify/timeout moved us to the
        // mutex queue, unlock made us runnable). Reacquire the mutex.
        loop {
            if g.mutexes[mid].locked_by.is_none() {
                g.mutexes[mid].locked_by = Some(me);
                let rc = g.mutexes[mid].release_clock.clone();
                g.threads[me].clock.join(&rc);
                let timed_out = std::mem::take(&mut g.threads[me].timed_out);
                g.trace_push(me, format!("cv{cvid} woke, relocked m{mid}"));
                drop(g);
                return Ok(timed_out);
            }
            g.threads[me].status = Status::Mutex(mid);
            g = self.handoff(g, me)?;
        }
    }

    /// Notify: moves one (chosen) or all waiters to the mutex queue.
    pub(crate) fn condvar_notify(&self, me: usize, cv_addr: usize, all: bool) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x24, cv_addr as u64)?;
        let cvid = g.cv_id(cv_addr);
        let waiters: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Cond { cv, .. } if cv == cvid))
            .map(|(i, _)| i)
            .collect();
        let chosen: Vec<usize> = if all || waiters.len() <= 1 {
            waiters
        } else {
            let hash = g.state_hash();
            let pre = g.preemptions;
            let idx = g.controller.choose(waiters.len() as u32, hash, false, pre);
            vec![waiters[idx as usize]]
        };
        for t in chosen {
            let Status::Cond { mutex, .. } = g.threads[t].status else {
                unreachable!()
            };
            g.threads[t].status = Status::Mutex(mutex);
            g.threads[t].timed_out = false;
            g.wake_mutex_waiters_if_free(mutex);
            g.trace_push(me, format!("cv{cvid} notify t{t}"));
        }
        drop(self.handoff(g, me)?);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Threads
    // ---------------------------------------------------------------

    /// Registers a child thread (clock-inherits from the parent).
    ///
    /// Deliberately NOT a scheduling point: the caller still has to spawn
    /// the child's real OS thread, so the token must stay with the parent
    /// until that exists (the caller issues a [`Self::yield_op`] after).
    pub(crate) fn spawn_register(&self, me: usize) -> OpResult<usize> {
        let mut g = self.lock();
        g.step(me, 0x31, 0)?;
        if g.threads.len() >= MAX_THREADS {
            return g
                .fail_locked("too many model threads (MAX_THREADS = 8)")
                .map(|_| unreachable!());
        }
        let tid = g.threads.len();
        let clock = g.threads[me].clock.clone();
        g.threads.push(ThreadSlot {
            status: Status::Runnable,
            clock,
            steps: 0,
            pos_hash: mix(tid as u64),
            pending_acquire: VClock::new(),
            pending_release: None,
            timed_out: false,
        });
        g.trace_push(me, format!("spawn t{tid}"));
        drop(g);
        Ok(tid)
    }

    /// Marks `me` finished and publishes its clock for joiners.
    pub(crate) fn thread_finished(&self, me: usize) {
        let mut g = self.lock();
        if g.aborted {
            drop(g);
            self.cv.notify_all();
            return;
        }
        if g.step(me, 0x32, 0).is_err() {
            drop(g);
            self.cv.notify_all();
            return;
        }
        g.threads[me].status = Status::Finished;
        for t in g.threads.iter_mut() {
            if t.status == Status::Join(me) {
                t.status = Status::Runnable;
            }
        }
        g.trace_push(me, "finished".into());
        let _ = g.pick_next();
        drop(g);
        self.cv.notify_all();
    }

    /// Blocks until `child` finishes, then joins its clock.
    pub(crate) fn join_wait(&self, me: usize, child: usize) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x33, child as u64)?;
        loop {
            if g.threads[child].status == Status::Finished {
                let c = g.threads[child].clock.clone();
                g.threads[me].clock.join(&c);
                g.trace_push(me, format!("joined t{child}"));
                g = self.handoff(g, me)?;
                drop(g);
                return Ok(());
            }
            g.threads[me].status = Status::Join(child);
            g = self.handoff(g, me)?;
        }
    }

    /// A pure scheduling point (`thread::yield_now`).
    pub(crate) fn yield_op(&self, me: usize) -> OpResult<()> {
        let mut g = self.lock();
        g.step(me, 0x34, 0)?;
        drop(self.handoff(g, me)?);
        Ok(())
    }

    /// Extracts the outcome once every real thread has exited.
    pub(crate) fn into_outcome(self) -> ExecOutcome {
        let inner = match self.inner.into_inner() {
            Ok(i) => i,
            Err(p) => p.into_inner(),
        };
        let failure = inner.failure.map(|message| Failure {
            message,
            trace: inner.trace.iter().cloned().collect(),
            schedule: inner.controller.recorded.iter().map(|r| r.chosen).collect(),
        });
        ExecOutcome {
            recorded: inner.controller.recorded,
            seen: inner.controller.seen,
            pruned_points: inner.controller.pruned_points,
            failure,
            steps: inner.step_count,
            replay_divergence: inner.controller.replay_divergence,
        }
    }
}

/// The load half of an RMW ordering.
fn rmw_load_part(ord: Ordering) -> Ordering {
    match ord {
        Ordering::AcqRel => Ordering::Acquire,
        Ordering::Release | Ordering::Relaxed => Ordering::Relaxed,
        o => o,
    }
}

/// The store half of an RMW ordering.
fn rmw_store_part(ord: Ordering) -> Ordering {
    match ord {
        Ordering::AcqRel => Ordering::Release,
        Ordering::Acquire | Ordering::Relaxed => Ordering::Relaxed,
        o => o,
    }
}
