//! Litmus tests for graft-check itself: known-racy programs must produce
//! violations, known-correct ones must explore clean, and failing
//! schedules must replay deterministically.

use graft_check::sync::atomic::{fence, AtomicU32, Ordering};
use graft_check::sync::{Condvar, Mutex};
use graft_check::{thread, Checker};
use std::sync::Arc;

/// Unsynchronized read-modify-write: two threads each do `x = x + 1`
/// with separate load/store. The lost-update interleaving must be found.
#[test]
fn finds_lost_update() {
    let report = Checker::new().check_report(|| {
        let x = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    let v = x.load(Ordering::SeqCst);
                    x.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
    });
    let v = report.violation.expect("lost update must be found");
    assert!(v.message.contains("lost update"), "got: {}", v.message);
    assert!(!v.schedule.is_empty());
}

/// The same program with fetch_add is correct; the bounded exploration
/// must complete with no violation.
#[test]
fn fetch_add_is_clean() {
    let report = Checker::new().check_report(|| {
        let x = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    x.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "exploration should exhaust this space");
    assert!(report.executions > 1, "must explore more than one schedule");
}

/// Store-buffer litmus (Dekker core): with SeqCst everywhere, both
/// threads reading 0 is impossible.
#[test]
fn dekker_seqcst_is_clean() {
    let report = Checker::new().check_report(|| {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let a = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        let (x3, y3) = (Arc::clone(&x), Arc::clone(&y));
        let b = thread::spawn(move || {
            y3.store(1, Ordering::SeqCst);
            x3.load(Ordering::SeqCst)
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert!(
            ra == 1 || rb == 1,
            "store-buffer reordering visible under SeqCst"
        );
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// The same litmus with Relaxed operations: both-read-0 is allowed and
/// the stale-read exploration must exhibit it.
#[test]
fn dekker_relaxed_exhibits_store_buffering() {
    let report = Checker::new().check_report(|| {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let a = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        let (x3, y3) = (Arc::clone(&x), Arc::clone(&y));
        let b = thread::spawn(move || {
            y3.store(1, Ordering::Relaxed);
            x3.load(Ordering::Relaxed)
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert!(ra == 1 || rb == 1, "both-zero observed");
    });
    let v = report
        .violation
        .expect("relaxed store buffering must be observable");
    assert!(v.message.contains("both-zero"), "got: {}", v.message);
}

/// Message passing: Release store / Acquire load synchronize, so the
/// flag implies the payload is visible.
#[test]
fn message_passing_release_acquire_clean() {
    let report = Checker::new().check_report(|| {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// Message passing with Relaxed flag: the stale payload read must be
/// found.
#[test]
fn message_passing_relaxed_is_racy() {
    let report = Checker::new().check_report(|| {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join().unwrap();
    });
    let v = report.violation.expect("relaxed message passing is racy");
    assert!(v.message.contains("stale payload"), "got: {}", v.message);
}

/// Release/acquire *fences* restore message passing over relaxed
/// accesses.
#[test]
fn message_passing_with_fences_clean() {
    let report = Checker::new().check_report(|| {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// Mutex-protected counter is correct and the lock is scheduler-visible.
#[test]
fn mutex_counter_clean() {
    let report = Checker::new().check_report(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// Classic AB/BA lock ordering deadlock must be detected (not hang).
#[test]
fn detects_lock_order_deadlock() {
    let report = Checker::new().check_report(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let v = report.violation.expect("deadlock must be detected");
    assert!(v.message.contains("deadlock"), "got: {}", v.message);
}

/// Condvar handoff: waiter with a predicate loop, notifier under the
/// lock. Must complete without deadlock or livelock.
#[test]
fn condvar_handoff_clean() {
    let report = Checker::new().check_report(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// wait_timeout without any notifier: the virtual timeout must fire
/// (system idle) instead of deadlocking.
#[test]
fn wait_timeout_fires_when_idle() {
    let report = Checker::new().check_report(|| {
        let pair = (Mutex::new(()), Condvar::new());
        let g = pair.0.lock().unwrap();
        let (_g, r) = pair
            .1
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(r.timed_out());
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

/// A failing schedule replays to the same failure, and a DFS re-run
/// finds the same first counterexample (determinism).
#[test]
fn replay_reproduces_failure() {
    fn racy() -> impl Fn() + Send + Sync + 'static {
        || {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                let v = x2.load(Ordering::SeqCst);
                x2.store(v + 1, Ordering::SeqCst);
            });
            let v = x.load(Ordering::SeqCst);
            x.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        }
    }
    let checker = Checker::new();
    let r1 = checker.check_report(racy());
    let v1 = r1.violation.expect("race must be found");
    let r2 = checker.check_report(racy());
    let v2 = r2.violation.expect("race must be found again");
    assert_eq!(v1.schedule, v2.schedule, "DFS must be deterministic");
    assert_eq!(r1.executions, r2.executions);

    let replayed = checker.replay(racy(), &v1.schedule);
    assert_eq!(replayed.executions, 1);
    let rv = replayed.violation.expect("replay must reproduce");
    assert!(rv.message.contains("lost update"), "got: {}", rv.message);
}

/// Seeded-random mode also finds the lost update, and is reproducible
/// for a fixed seed.
#[test]
fn random_mode_finds_race() {
    let mk = || Checker::new().seed(0xC0FFEE).max_executions(5_000);
    let run = || {
        mk().check_report(|| {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                let v = x2.load(Ordering::SeqCst);
                x2.store(v + 1, Ordering::SeqCst);
            });
            let v = x.load(Ordering::SeqCst);
            x.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        })
    };
    let r1 = run();
    let v1 = r1.violation.expect("random mode must find the race");
    let r2 = run();
    let v2 = r2.violation.expect("random mode must find it again");
    assert_eq!(r1.executions, r2.executions, "fixed seed is reproducible");
    assert_eq!(v1.schedule, v2.schedule);
}

/// Instrumented primitives pass through to std off model threads: plain
/// use outside a Checker works (this very test body).
#[test]
fn passthrough_outside_checker() {
    let x = AtomicU32::new(7);
    assert_eq!(x.load(Ordering::SeqCst), 7);
    x.store(9, Ordering::SeqCst);
    assert_eq!(x.fetch_add(1, Ordering::AcqRel), 9);
    assert_eq!(
        x.compare_exchange(10, 11, Ordering::SeqCst, Ordering::Relaxed),
        Ok(10)
    );
    let m = Mutex::new(5u32);
    {
        let mut g = m.lock().unwrap();
        *g = 6;
    }
    assert_eq!(*m.lock().unwrap(), 6);
    let h = thread::spawn(|| 40 + 2);
    assert_eq!(h.join().unwrap(), 42);
    fence(Ordering::SeqCst);
}

/// Three threads under the preemption bound: exploration stays bounded
/// and completes (sanity check that pruning + bound terminate).
#[test]
fn three_thread_exploration_terminates() {
    let report = Checker::new()
        .preemption_bound(2)
        .max_executions(200_000)
        .check_report(|| {
            let x = Arc::new(AtomicU32::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        x.fetch_add(1, Ordering::AcqRel);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(x.load(Ordering::Acquire), 3);
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "space must be exhausted");
}
