//! Tabular reporting: aligned stdout tables plus CSV files.

use std::io::Write;
use std::path::Path;

/// One experiment's output table.
#[derive(Clone, Debug)]
pub struct Report {
    /// File/figure identifier, e.g. `fig1_edges`.
    pub name: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper-expectation text).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.name
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.name, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
    }

    /// Writes the table as `<dir>/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", escape_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_row(row))?;
        }
        Ok(path)
    }

    /// Prints and writes in one step; returns the CSV path.
    pub fn emit(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        self.print();
        let p = self.write_csv(dir)?;
        println!("  → {}", p.display());
        Ok(p)
    }
}

fn escape_cell(c: &str) -> String {
    if c.contains(',') || c.contains('"') || c.contains('\n') {
        format!("\"{}\"", c.replace('"', "\"\""))
    } else {
        c.to_string()
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| escape_cell(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a `f64` with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a `f64` with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.row(vec!["1".into(), "x,y".into()]);
        r.note("hello");
        let dir = std::env::temp_dir().join("graft_bench_report_test");
        let p = r.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.1), "0.100");
        assert_eq!(dur(std::time::Duration::from_millis(1500)), "1.50s");
        assert_eq!(dur(std::time::Duration::from_micros(1500)), "1.50ms");
        assert_eq!(dur(std::time::Duration::from_nanos(500_000)), "500µs");
    }
}
