//! Timing helpers shared by the experiments: repeated runs, mean/σ, and
//! the relative-speedup accounting the paper uses in Fig. 3.

use graft_core::{solve_from, Algorithm, Matching, RunOutcome, SolveOptions};
use graft_graph::BipartiteCsr;
use std::time::Duration;

/// Mean and standard deviation of a sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sample {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of observations.
    pub n: usize,
}

impl Sample {
    /// Summarizes a slice of observations.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self::default();
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Self {
            mean,
            std_dev: var.sqrt(),
            n,
        }
    }

    /// The paper's parallel sensitivity ψ = 100·σ/μ (§V-B).
    pub fn sensitivity(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }
}

/// The result of a repeated timing measurement.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Outcome of the last run (counters are identical across runs for
    /// deterministic serial algorithms).
    pub outcome: RunOutcome,
    /// Per-run solve durations in seconds.
    pub seconds: Vec<f64>,
}

impl Timing {
    /// Summary of the run durations.
    pub fn sample(&self) -> Sample {
        Sample::of(&self.seconds)
    }

    /// Mean duration.
    pub fn mean(&self) -> Duration {
        Duration::from_secs_f64(self.sample().mean)
    }
}

/// Runs `alg` on `g` `reps` times from the same initial matching, timing
/// only the solve (initialization is shared and excluded, as the paper
/// times matching algorithms after Karp-Sipser).
pub fn time_algorithm(
    g: &BipartiteCsr,
    m0: &Matching,
    alg: Algorithm,
    opts: &SolveOptions,
    reps: usize,
) -> Timing {
    let reps = reps.max(1);
    let mut seconds = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let out = solve_from(g, m0.clone(), alg, opts);
        seconds.push(out.stats.elapsed.as_secs_f64());
        last = Some(out);
    }
    Timing {
        outcome: last.expect("reps >= 1"),
        seconds,
    }
}

/// Relative speedups against the slowest entry (Fig. 3's normalization:
/// the slowest algorithm for a graph has speedup 1.0).
pub fn relative_speedups(times: &[f64]) -> Vec<f64> {
    let slowest = times.iter().cloned().fold(f64::MIN, f64::max);
    times
        .iter()
        .map(|&t| if t > 0.0 { slowest / t } else { f64::INFINITY })
        .collect()
}

/// Geometric mean, the right average for speedup ratios.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_statistics() {
        let s = Sample::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert!((s.sensitivity() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sample_empty() {
        let s = Sample::of(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sensitivity(), 0.0);
    }

    #[test]
    fn relative_speedups_normalize_to_slowest() {
        let s = relative_speedups(&[2.0, 1.0, 4.0]);
        assert_eq!(s, vec![2.0, 4.0, 1.0]);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn time_algorithm_runs() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]);
        let m0 = Matching::for_graph(&g);
        let t = time_algorithm(
            &g,
            &m0,
            Algorithm::HopcroftKarp,
            &SolveOptions::default(),
            3,
        );
        assert_eq!(t.seconds.len(), 3);
        assert_eq!(t.outcome.matching.cardinality(), 3);
    }
}
