//! Experiment runner: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments <all|table1|table2|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|variability>...
//!             [--scale tiny|small|medium|large] [--threads N] [--reps N] [--out DIR]
//! experiments trace-report <file.jsonl>
//! experiments loadgen [--connections N] [--requests N] [--batch N] [--seed S]
//!             [--open-loop-rate R] [--virtual-open-loop] [--scale ...] [--threads N] [--out DIR]
//! experiments stress [--seed S] [--budget-secs N] [--scale ...] [--out DIR]
//! ```

use graft_bench::experiments::{LoadgenOptions, StressOptions};
use graft_bench::{experiments, Config};
use graft_gen::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <experiment>... [--scale tiny|small|medium|large] [--threads N] [--reps N] [--out DIR] [--init none|greedy|random-greedy|karp-sipser]\n\
         \x20      experiments trace-report <file.jsonl>\n\
         \x20      experiments loadgen [--connections N] [--requests N] [--batch N] [--seed S] [--open-loop-rate R] [--virtual-open-loop]\n\
         \x20      experiments stress [--seed S] [--budget-secs N]\n\
         experiments: all table1 table2 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 variability ablation_alpha ablation_init ablation_pr_order dist anatomy perf-gate scaling stress dynbench loadgen"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-report") {
        let rest = args.split_off(1);
        let [file] = rest.as_slice() else { usage() };
        match graft_bench::trace_report::run(std::path::Path::new(file)) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("trace-report failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut cfg = Config::default();
    let mut lg = LoadgenOptions::default();
    let mut st = StressOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget-secs" => {
                let v = it.next().unwrap_or_else(|| usage());
                st.budget = std::time::Duration::from_secs(v.parse().unwrap_or_else(|_| usage()));
            }
            "--connections" => {
                let v = it.next().unwrap_or_else(|| usage());
                lg.connections = v.parse().unwrap_or_else(|_| usage());
            }
            "--requests" => {
                let v = it.next().unwrap_or_else(|| usage());
                lg.requests_per_conn = v.parse().unwrap_or_else(|_| usage());
            }
            "--batch" => {
                let v = it.next().unwrap_or_else(|| usage());
                lg.batch_size = v.parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                let seed = v.parse().unwrap_or_else(|_| usage());
                lg.seed = seed;
                st.seed = seed;
            }
            "--open-loop-rate" => {
                let v = it.next().unwrap_or_else(|| usage());
                lg.open_loop_rate = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--virtual-open-loop" => lg.virtual_open_loop = true,
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--reps" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.reps = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.out_dir = v.into();
            }
            "--init" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.init = graft_core::init::Initializer::parse(&v).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names.push("all".to_string());
    }
    println!(
        "experiment config: scale={:?} (×{}), threads={} (max {}), reps={}, init={}, out={}",
        cfg.scale,
        cfg.scale.factor(),
        cfg.threads,
        cfg.max_threads(),
        cfg.reps,
        cfg.init.name(),
        cfg.out_dir.display()
    );
    for name in names {
        // loadgen has its own knobs beyond `Config`, so it dispatches
        // directly; everything else goes through the generic registry.
        let outcome = if name == "loadgen" {
            experiments::loadgen(&cfg, &lg).map(|()| true)
        } else if name == "stress" {
            experiments::stress(&cfg, &st).map(|()| true)
        } else {
            experiments::run_by_name(&name, &cfg)
        };
        match outcome {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("unknown experiment `{name}`");
                usage();
            }
            Err(e) => {
                eprintln!("experiment `{name}` failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
