//! `experiments trace-report <file.jsonl>` — replay a `--trace` capture
//! into the paper-style anatomy tables.
//!
//! The replay is also a validation pass: [`graft_core::trace::replay`]
//! re-checks every recorded direction and grafting decision against the
//! engine's arithmetic, so a report only prints from a trace that is
//! internally consistent. Any violation (or parse error) is returned as
//! an error and the binary exits nonzero.

use crate::report::{f2, Report};
use graft_core::trace::{read_jsonl, replay, RunSummary};
use std::io::BufReader;
use std::path::Path;

/// Reads, validates, and prints one JSONL trace file.
pub fn run(path: &Path) -> Result<(), String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let events =
        read_jsonl(BufReader::new(file)).map_err(|e| format!("{}: {e}", path.display()))?;
    if events.is_empty() {
        return Err(format!("{}: trace holds no events", path.display()));
    }
    let runs = replay(&events).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "trace {}: {} events, {} run{}",
        path.display(),
        events.len(),
        runs.len(),
        if runs.len() == 1 { "" } else { "s" }
    );
    for (i, run) in runs.iter().enumerate() {
        print_run(i, run);
    }
    Ok(())
}

fn print_run(index: usize, run: &RunSummary) {
    println!(
        "\nrun {index}: {} on {}×{} ({} edges), |M| {} → {} in {} phase{}, \
         {} augmenting paths, {} µs{}",
        run.algorithm,
        run.nx,
        run.ny,
        run.edges,
        run.initial_cardinality,
        run.final_cardinality,
        run.total_phases,
        if run.total_phases == 1 { "" } else { "s" },
        run.augmenting_paths,
        run.elapsed_us,
        if run.timed_out { " (timed out)" } else { "" },
    );
    if run.phases.is_empty() {
        println!("  (no per-phase events recorded for this algorithm)");
        return;
    }

    let mut phases = Report::new(
        "trace_phases",
        format!("per-phase anatomy ({})", run.algorithm),
        &[
            "phase",
            "levels",
            "bottom-up",
            "peak",
            "augs",
            "path-edges",
            "edges",
            "µs",
            "decision",
        ],
    );
    for p in &run.phases {
        let decision = match p.graft {
            Some(g) if g.grafted => format!("graft ({}>{}/α)", g.active_x, g.renewable_y),
            Some(g) => format!("rebuild ({}≤{}/α)", g.active_x, g.renewable_y),
            None => "-".to_string(),
        };
        phases.row(vec![
            p.phase.to_string(),
            p.levels.to_string(),
            p.bottom_up_levels.to_string(),
            p.frontier_peak.to_string(),
            p.augmentations.to_string(),
            p.path_edges.to_string(),
            p.edges_traversed.to_string(),
            p.elapsed_us.to_string(),
            decision,
        ]);
    }
    phases.print();

    let (grafted, rebuilt) = run.graft_counts();
    let total_levels: u64 = run.phases.iter().map(|p| p.levels).sum();
    let mut summary = Report::new(
        "trace_summary",
        "run summary (paper §5 anatomy)",
        &["metric", "value"],
    );
    summary.row(vec!["phases recorded".into(), run.phases.len().to_string()]);
    summary.row(vec!["total BFS levels".into(), total_levels.to_string()]);
    summary.row(vec![
        "bottom-up level fraction".into(),
        f2(run.bottom_up_fraction()),
    ]);
    summary.row(vec!["trees grafted".into(), grafted.to_string()]);
    summary.row(vec!["forests rebuilt".into(), rebuilt.to_string()]);
    if run.alpha > 0.0 {
        summary.row(vec!["alpha".into(), f2(run.alpha)]);
        summary.row(vec![
            "direction optimizing".into(),
            run.direction_optimizing.to_string(),
        ]);
        summary.row(vec!["grafting enabled".into(), run.grafting.to_string()]);
    }
    summary.print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_core::trace::{JsonlSink, TraceSink as _};
    use graft_core::{solve_traced, Algorithm, SolveOptions, Tracer};
    use std::io::Write as _;
    use std::sync::Arc;

    fn trace_file(name: &str, lines: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("graft_trace_report_{name}.jsonl"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(lines.as_bytes()).unwrap();
        path
    }

    #[test]
    fn reports_a_real_capture() {
        let g = graft_gen::suite::by_name("kkt_power")
            .unwrap()
            .build(graft_gen::Scale::Tiny);
        let path = std::env::temp_dir().join("graft_trace_report_real.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let tracer = Tracer::to_sink(Arc::clone(&sink) as _);
        let out = solve_traced(&g, Algorithm::MsBfsGraft, &SolveOptions::default(), &tracer);
        assert!(out.matching.cardinality() > 0);
        sink.flush().unwrap();
        run(&path).unwrap();
    }

    #[test]
    fn rejects_missing_and_invalid_traces() {
        assert!(run(Path::new("/nonexistent/trace.jsonl")).is_err());
        let empty = trace_file("empty", "");
        assert!(run(&empty).unwrap_err().contains("no events"));
        let garbage = trace_file("garbage", "not json\n");
        assert!(run(&garbage).is_err());
        // Structurally valid JSON that violates replay invariants: a run
        // that ends without starting.
        let orphan = trace_file(
            "orphan",
            "{\"ev\":\"run_end\",\"final_cardinality\":1,\"phases\":0,\
             \"augmenting_paths\":0,\"edges_traversed\":0,\"elapsed_us\":0,\
             \"timed_out\":false}\n",
        );
        assert!(run(&orphan).is_err());
    }
}
