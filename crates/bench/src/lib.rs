//! # graft-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see DESIGN.md §6 for the experiment index). Each experiment prints an
//! aligned table to stdout and writes a CSV under `results/`.
//!
//! Run all of them:
//!
//! ```text
//! cargo run -p graft-bench --release --bin experiments -- all --scale small
//! ```
//!
//! or a single one, e.g. `... -- fig7 --scale tiny --reps 3`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod sysinfo;
pub mod trace_report;

use graft_core::init::Initializer;
use graft_gen::Scale;

/// Shared experiment configuration parsed from the CLI.
#[derive(Clone, Debug)]
pub struct Config {
    /// Instance scale (tiny for smoke runs, small default, medium/large
    /// for real machines).
    pub scale: Scale,
    /// Maximum thread count for parallel algorithms (0 = all cores).
    pub threads: usize,
    /// Repetitions per timing measurement.
    pub reps: usize,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Initial-matching algorithm shared by every solver.
    ///
    /// The paper uses Karp-Sipser, but KS *solves our synthetic analogs
    /// outright* (its degree-1 rule is provably near-optimal on random
    /// power-law instances), which would reduce every maximum-matching
    /// solver to a single verification phase. The harness therefore
    /// defaults to [`Initializer::RandomGreedy`], which leaves a realistic
    /// 5-15% residual on every class; pass `--init karp-sipser` for the
    /// paper's exact setup.
    pub init: Initializer,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: 0,
            reps: 3,
            out_dir: std::path::PathBuf::from("results"),
            init: Initializer::RandomGreedy,
        }
    }
}

impl Config {
    /// Effective thread count. `0` resolves to what parallel solves will
    /// actually use — [`rayon::current_num_threads`] (the `GRAFT_THREADS`
    /// override or the sequential default), not the machine's core count,
    /// so figure labels match the executed configuration.
    pub fn max_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            rayon::current_num_threads()
        }
    }
}
