//! Host introspection for Table I (machine description).
//!
//! The paper's Table I lists Edison (2×12-core Ivy Bridge) and Mirasol
//! (4×10-core Westmere-EX). This module reports the equivalent facts for
//! the machine the reproduction actually runs on, so EXPERIMENTS.md can
//! record paper-vs-measured hardware context honestly.

/// A machine description, best-effort from `/proc` and the environment.
#[derive(Clone, Debug, Default)]
pub struct SystemInfo {
    /// CPU model string.
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Physical cores (best effort; falls back to logical count).
    pub physical_cores: usize,
    /// Total memory in GiB (0 if unknown).
    pub memory_gib: f64,
    /// Operating system description.
    pub os: String,
    /// rustc version used to build (compile-time environment if present).
    pub rustc: String,
}

impl SystemInfo {
    /// Collects host facts.
    pub fn collect() -> Self {
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu_model = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".into());
        let logical_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Physical cores: count distinct (physical id, core id) pairs.
        let mut pairs = std::collections::HashSet::new();
        let mut phys = String::new();
        for line in cpuinfo.lines() {
            if let Some(v) = line.strip_prefix("physical id") {
                phys = v.trim_start_matches([' ', '\t', ':']).to_string();
            }
            if let Some(v) = line.strip_prefix("core id") {
                let core = v.trim_start_matches([' ', '\t', ':']).to_string();
                pairs.insert((phys.clone(), core));
            }
        }
        let physical_cores = if pairs.is_empty() {
            logical_cpus
        } else {
            pairs.len()
        };
        let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
        let memory_gib = meminfo
            .lines()
            .find(|l| l.starts_with("MemTotal"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<f64>().ok())
            .map(|kb| kb / 1024.0 / 1024.0)
            .unwrap_or(0.0);
        let os = std::fs::read_to_string("/proc/sys/kernel/osrelease")
            .map(|s| format!("Linux {}", s.trim()))
            .unwrap_or_else(|_| std::env::consts::OS.to_string());
        Self {
            cpu_model,
            logical_cpus,
            physical_cores,
            memory_gib,
            os,
            rustc: option_env!("RUSTC_VERSION")
                .unwrap_or("(build rustc)")
                .to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reports_at_least_one_cpu() {
        let s = SystemInfo::collect();
        assert!(s.logical_cpus >= 1);
        assert!(s.physical_cores >= 1);
        assert!(!s.cpu_model.is_empty());
    }
}
