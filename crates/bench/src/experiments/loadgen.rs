//! `loadgen` — a seeded load generator for graft-svc, and the CI gate
//! for the pipelined `SOLVE_BATCH` path.
//!
//! An in-process server is registered with the pinned kkt_power + RMAT
//! pair, then the *same* seeded per-connection workload (a mix of warm
//! solves across both graphs and several engines) is driven twice:
//!
//! * **sequential** — the classic closed loop: each connection issues
//!   one `SOLVE`, waits for its reply, issues the next. Every request
//!   pays a full round trip (two syscall-laden handoffs per solve).
//! * **pipelined** — the same requests chunked into `SOLVE_BATCH`es via
//!   [`graft_svc::RetryClient::request_batch`]: one round trip per
//!   batch, members scheduled concurrently across the worker pool,
//!   replies reordered back into request order by the server.
//!
//! Each pass records throughput and closed-loop latency percentiles
//! (p50/p95/p99; a pipelined member's latency is its batch's round-trip
//! time — what a caller awaiting the batch actually observes).
//! Optionally a third, **open-loop** pass replays the workload at a
//! fixed arrival rate on one connection, measuring latency against the
//! *scheduled* send time (so queueing delay is not hidden by
//! coordinated omission). The open-loop pass is reported, never gated.
//! With `--virtual-open-loop` the same schedule additionally runs on a
//! virtual clock against a simulated-network server ([`graft_svc`]'s
//! sim substrate): solves take zero virtual time there, so every
//! latency must come out exactly zero — a deterministic null test that
//! the open-loop accounting adds no latency of its own, finished in
//! microseconds of wall time.
//!
//! The gate checks **relative** invariants only — absolute numbers vary
//! wildly with host load and are recorded, not judged:
//!
//! 1. every reply in both passes is an `OK` line;
//! 2. request-for-request, the sequential and pipelined passes report
//!    identical cardinalities (the solves are semantically equivalent);
//! 3. pipelined throughput ≥ [`PIPELINE_SPEEDUP_MIN`] × sequential
//!    throughput on the same workload and connection count.
//!
//! Results land in a schema-versioned `BENCH_5.json` that CI archives,
//! keeping a diffable history of throughput/latency alongside the
//! BENCH_4 solve-time history.

use super::perf_gate::{git_sha, json_escape, json_secs};
use crate::report::Report;
use crate::sysinfo::SystemInfo;
use crate::Config;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier embedded in the JSON artifact; bump on layout change.
/// v2 adds the optional `open_loop_virtual` calibration block.
pub const LOADGEN_SCHEMA: &str = "graft-bench/loadgen/v2";

/// Artifact file name (numbered after the PR that introduced it).
pub const LOADGEN_FILE: &str = "BENCH_5.json";

/// The relative gate: pipelined must beat sequential by at least this
/// factor on the same workload. The win comes from amortizing round
/// trips, syscalls, and scheduler handoffs over whole batches, so it
/// holds on a single-core runner too — no parallelism required.
pub const PIPELINE_SPEEDUP_MIN: f64 = 1.5;

/// Load-generator knobs (see `experiments loadgen --help`).
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent client connections (closed-loop workers).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Members per `SOLVE_BATCH` in the pipelined pass.
    pub batch_size: usize,
    /// Workload seed (same seed → same request mix).
    pub seed: u64,
    /// Fixed arrival rate (requests/s) for the optional open-loop pass;
    /// `None` skips it.
    pub open_loop_rate: Option<f64>,
    /// Also run the open-loop schedule on a *virtual* clock against a
    /// simulated-network server (requires `open_loop_rate`). Solves take
    /// zero virtual time there, so every measured latency must be
    /// exactly zero — the pass is the null test of the open-loop
    /// accounting and it completes in microseconds of wall time.
    pub virtual_open_loop: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            connections: 2,
            requests_per_conn: 256,
            batch_size: 32,
            seed: 0x10AD_6E4E,
            open_loop_rate: None,
            virtual_open_loop: false,
        }
    }
}

/// The pinned workload mix: both suite graphs × engines with distinct
/// warm-path shapes (the multi-source families and the classic serial
/// pair), all of which reach the same maximum cardinality per graph.
const GRAPHS: [(&str, &str); 2] = [("lg_kkt", "kkt_power"), ("lg_rmat", "RMAT")];
const ALGOS: [&str; 4] = ["ms-bfs-graft", "ms-bfs", "hk", "pf"];

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        // One syscall per request line, so the sequential pass measures
        // the round trip, not write-fragmentation artifacts.
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        self.writer.flush()
    }

    fn recv(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    fn req(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The seeded request mix: one `SOLVE` argument list per request, per
/// connection (also a valid `SOLVE_BATCH` member line).
fn build_workload(opts: &LoadgenOptions) -> Vec<Vec<String>> {
    (0..opts.connections)
        .map(|c| {
            let mut rng = opts.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..opts.requests_per_conn)
                .map(|_| {
                    let (name, _) = GRAPHS[(xorshift(&mut rng) as usize) % GRAPHS.len()];
                    let alg = ALGOS[(xorshift(&mut rng) as usize) % ALGOS.len()];
                    format!("{name} {alg}")
                })
                .collect()
        })
        .collect()
}

fn cardinality_of(reply: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("cardinality="))
        .and_then(|v| v.parse().ok())
}

/// Nearest-rank percentile over a sorted sample; `q` in (0, 1].
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// What one connection thread brings home from a pass: its latencies,
/// its reply cardinalities in request order, and any non-`OK` replies.
type ConnOutcome = (Vec<f64>, Vec<Option<u64>>, Vec<String>);

/// One measured pass over the whole workload.
struct PassResult {
    /// Per-request closed-loop latencies, seconds, sorted ascending.
    latencies: Vec<f64>,
    /// Per-connection reply cardinalities, in request order.
    cards: Vec<Vec<Option<u64>>>,
    /// Replies that were not `OK` lines, with their coordinates.
    errors: Vec<String>,
    /// Wall-clock for the pass (slowest connection bounds it).
    elapsed_s: f64,
}

impl PassResult {
    fn throughput(&self, total_requests: usize) -> f64 {
        if self.elapsed_s > 0.0 {
            total_requests as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Closed-loop sequential pass: `connections` threads, one request in
/// flight per connection.
fn run_sequential(addr: &str, workload: &[Vec<String>]) -> std::io::Result<PassResult> {
    let t0 = Instant::now();
    let per_conn: Vec<ConnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = workload
            .iter()
            .enumerate()
            .map(|(ci, reqs)| {
                s.spawn(move || -> std::io::Result<_> {
                    let mut conn = Conn::connect(addr)?;
                    let mut lats = Vec::with_capacity(reqs.len());
                    let mut cards = Vec::with_capacity(reqs.len());
                    let mut errors = Vec::new();
                    for (ri, r) in reqs.iter().enumerate() {
                        let t = Instant::now();
                        let reply = conn.req(&format!("SOLVE {r}"))?;
                        lats.push(t.elapsed().as_secs_f64());
                        if !reply.starts_with("OK ") {
                            errors.push(format!("sequential conn {ci} req {ri}: {reply}"));
                        }
                        cards.push(cardinality_of(&reply));
                    }
                    Ok((lats, cards, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect::<std::io::Result<Vec<_>>>()
    })?;
    let elapsed_s = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut cards = Vec::new();
    let mut errors = Vec::new();
    for (l, c, e) in per_conn {
        latencies.extend(l);
        cards.push(c);
        errors.extend(e);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok(PassResult {
        latencies,
        cards,
        errors,
        elapsed_s,
    })
}

/// Closed-loop pipelined pass: the same request streams chunked into
/// `SOLVE_BATCH`es through the retrying client. A member's recorded
/// latency is its batch's round trip — the time a caller awaiting the
/// batch observes for it.
fn run_pipelined(
    addr: &str,
    workload: &[Vec<String>],
    batch_size: usize,
) -> std::io::Result<PassResult> {
    let t0 = Instant::now();
    let per_conn: Vec<ConnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = workload
            .iter()
            .enumerate()
            .map(|(ci, reqs)| {
                s.spawn(move || -> std::io::Result<_> {
                    let mut client =
                        graft_svc::RetryClient::new(addr, graft_svc::RetryPolicy::default());
                    let mut lats = Vec::with_capacity(reqs.len());
                    let mut cards = Vec::with_capacity(reqs.len());
                    let mut errors = Vec::new();
                    for (bi, chunk) in reqs.chunks(batch_size).enumerate() {
                        let members: Vec<String> = chunk.to_vec();
                        let t = Instant::now();
                        let replies = client
                            .request_batch(&members)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        let batch_s = t.elapsed().as_secs_f64();
                        if replies.len() != members.len() {
                            errors.push(format!(
                                "pipelined conn {ci} batch {bi}: {} replies for {} members: {:?}",
                                replies.len(),
                                members.len(),
                                replies.first()
                            ));
                            continue;
                        }
                        for (mi, reply) in replies.iter().enumerate() {
                            lats.push(batch_s);
                            if !reply.starts_with("OK ") {
                                errors.push(format!(
                                    "pipelined conn {ci} batch {bi} member {mi}: {reply}"
                                ));
                            }
                            cards.push(cardinality_of(reply));
                        }
                    }
                    Ok((lats, cards, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect::<std::io::Result<Vec<_>>>()
    })?;
    let elapsed_s = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut cards = Vec::new();
    let mut errors = Vec::new();
    for (l, c, e) in per_conn {
        latencies.extend(l);
        cards.push(c);
        errors.extend(e);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok(PassResult {
        latencies,
        cards,
        errors,
        elapsed_s,
    })
}

/// Open-loop pass: one connection, requests written on a fixed schedule
/// regardless of reply progress; latency is measured from the
/// *scheduled* send time, so server-side queueing shows up instead of
/// being absorbed by a waiting client.
fn run_open_loop(addr: &str, reqs: &[String], rate: f64) -> std::io::Result<(Vec<f64>, f64)> {
    let conn = Conn::connect(addr)?;
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let t0 = Instant::now();
    let mut writer = conn.writer.try_clone()?;
    let reqs_owned: Vec<String> = reqs.to_vec();
    let sender = std::thread::spawn(move || -> std::io::Result<()> {
        for (i, r) in reqs_owned.iter().enumerate() {
            let target = interval * (i as u32);
            if let Some(wait) = target.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            writer.write_all(format!("SOLVE {r}\n").as_bytes())?;
            writer.flush()?;
        }
        Ok(())
    });
    let mut reader = conn.reader;
    let mut lats = Vec::with_capacity(reqs.len());
    for i in 0..reqs.len() {
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-open-loop",
            ));
        }
        let scheduled = interval * (i as u32);
        lats.push((t0.elapsed() - scheduled.min(t0.elapsed())).as_secs_f64());
    }
    let elapsed = t0.elapsed().as_secs_f64();
    sender.join().expect("open-loop sender panicked")?;
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok((lats, reqs.len() as f64 / elapsed.max(1e-9)))
}

/// Virtual-time open-loop pass: the identical schedule arithmetic on a
/// virtual clock against an in-process server on a simulated network.
/// With zero virtual service time queueing cannot build, so the
/// open-loop schedule degenerates to a paced single-threaded loop —
/// which also keeps the virtual timeline deterministic (one sleeper at
/// a time) — and every measured latency must come out exactly zero.
/// Any nonzero value means the accounting pipeline itself manufactured
/// latency, which the caller turns into a violation.
fn run_open_loop_virtual(
    scale_name: &str,
    reqs: &[String],
    rate: f64,
) -> std::io::Result<(Vec<f64>, f64)> {
    use graft_svc::{Clock, SimClock, SimNet, SimNetConfig, Transport};
    let clock = Arc::new(SimClock::new());
    // Default sim-net config: zero connect latency, no drops — the
    // arrival schedule is the only time source in this pass.
    let net = SimNet::new(
        SimNetConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let server = graft_svc::Server::bind_with(
        &graft_svc::ServeConfig {
            workers: 1,
            queue_capacity: reqs.len().max(64),
            snapshot_interval_ms: 0,
            ..graft_svc::ServeConfig::default()
        },
        Arc::clone(&net) as Arc<dyn Transport>,
        Arc::clone(&clock) as Arc<dyn Clock>,
    )?;
    let addr = server.local_addr()?.to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut conn = net.connect(&addr, None)?;
    let mut reader = BufReader::new(conn.try_clone_conn()?);
    fn request(
        conn: &mut Box<dyn graft_svc::Conn>,
        reader: &mut BufReader<Box<dyn graft_svc::Conn>>,
        line: &str,
    ) -> std::io::Result<String> {
        conn.write_all(format!("{line}\n").as_bytes())?;
        conn.flush()?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "sim server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }
    for (name, suite) in GRAPHS {
        let reply = request(
            &mut conn,
            &mut reader,
            &format!("GEN {name} {suite}:{scale_name}"),
        )?;
        if !reply.starts_with("OK ") {
            return Err(std::io::Error::other(format!(
                "virtual GEN failed: {reply}"
            )));
        }
    }
    // Warm every (graph, engine) cell, mirroring the real-time passes.
    for (name, _) in GRAPHS {
        for alg in ALGOS {
            let reply = request(&mut conn, &mut reader, &format!("SOLVE {name} {alg}"))?;
            if !reply.starts_with("OK ") {
                return Err(std::io::Error::other(format!(
                    "virtual warmup failed: {reply}"
                )));
            }
        }
    }

    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let t0 = clock.now();
    let mut lats = Vec::with_capacity(reqs.len());
    for (i, r) in reqs.iter().enumerate() {
        let scheduled = interval * (i as u32);
        let elapsed = clock.now().saturating_duration_since(t0);
        if let Some(wait) = scheduled.checked_sub(elapsed) {
            clock.sleep(wait);
        }
        let reply = request(&mut conn, &mut reader, &format!("SOLVE {r}"))?;
        if !reply.starts_with("OK ") {
            return Err(std::io::Error::other(format!(
                "virtual open-loop reply: {reply}"
            )));
        }
        let done = clock.now().saturating_duration_since(t0);
        lats.push(done.saturating_sub(scheduled).as_secs_f64());
    }
    let elapsed = clock.now().saturating_duration_since(t0).as_secs_f64();
    let _ = request(&mut conn, &mut reader, "SHUTDOWN");
    drop(reader);
    drop(conn);
    let _ = server_thread
        .join()
        .expect("virtual server thread panicked");
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok((lats, reqs.len() as f64 / elapsed.max(1e-9)))
}

fn pcts(lat: &[f64]) -> (f64, f64, f64) {
    (
        percentile(lat, 0.50),
        percentile(lat, 0.95),
        percentile(lat, 0.99),
    )
}

fn ms(v: f64) -> String {
    format!("{:.3}ms", v * 1e3)
}

/// Runs the load generator: measure both passes, write `BENCH_5.json`,
/// then fail (`Err`) iff a relative invariant is violated.
pub fn loadgen(cfg: &Config, opts: &LoadgenOptions) -> std::io::Result<()> {
    let total_requests = opts.connections * opts.requests_per_conn;
    println!(
        "loadgen: {} connections × {} requests, batch={}, seed={:#x}, scale={:?}",
        opts.connections, opts.requests_per_conn, opts.batch_size, opts.seed, cfg.scale
    );

    // The resident service under test. Worker count mirrors --threads
    // (0 = one worker per connection); the queue must hold a whole
    // batch per connection so backpressure never skews the comparison.
    let server = graft_svc::Server::bind(&graft_svc::ServeConfig {
        workers: if cfg.threads == 0 {
            opts.connections
        } else {
            cfg.threads
        },
        queue_capacity: (opts.batch_size * opts.connections).max(64),
        ..graft_svc::ServeConfig::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Register the pinned pair over the wire and warm every
    // (graph, engine) cell, so both passes measure the steady state a
    // resident service actually serves (cold materialization amortized
    // away long before).
    let mut admin = Conn::connect(&addr)?;
    let scale_name = format!("{:?}", cfg.scale).to_lowercase();
    for (name, suite) in GRAPHS {
        let reply = admin.req(&format!("GEN {name} {suite}:{scale_name}"))?;
        if !reply.starts_with("OK ") {
            return Err(std::io::Error::other(format!("GEN {name} failed: {reply}")));
        }
    }
    for (name, _) in GRAPHS {
        for alg in ALGOS {
            let reply = admin.req(&format!("SOLVE {name} {alg}"))?;
            if !reply.starts_with("OK ") {
                return Err(std::io::Error::other(format!("warmup failed: {reply}")));
            }
        }
    }

    let workload = build_workload(opts);
    let seq = run_sequential(&addr, &workload)?;
    let pipe = run_pipelined(&addr, &workload, opts.batch_size.max(1))?;
    let open = match opts.open_loop_rate {
        Some(rate) => Some((rate, run_open_loop(&addr, &workload[0], rate)?)),
        None => None,
    };
    let open_virtual = if opts.virtual_open_loop {
        let Some(rate) = opts.open_loop_rate else {
            return Err(std::io::Error::other(
                "--virtual-open-loop requires --open-loop-rate",
            ));
        };
        Some((
            rate,
            run_open_loop_virtual(&scale_name, &workload[0], rate)?,
        ))
    } else {
        None
    };

    let _ = admin.req("SHUTDOWN");
    let _ = server_thread.join().expect("server thread panicked");

    let seq_tput = seq.throughput(total_requests);
    let pipe_tput = pipe.throughput(total_requests);
    let speedup = if seq_tput > 0.0 {
        pipe_tput / seq_tput
    } else {
        0.0
    };

    let mut violations: Vec<String> = Vec::new();
    violations.extend(seq.errors.iter().cloned());
    violations.extend(pipe.errors.iter().cloned());
    for (ci, (a, b)) in seq.cards.iter().zip(&pipe.cards).enumerate() {
        if a != b {
            violations.push(format!(
                "conn {ci}: cardinality sequence diverged between sequential and pipelined passes"
            ));
        }
    }
    if speedup < PIPELINE_SPEEDUP_MIN {
        violations.push(format!(
            "pipelined throughput {pipe_tput:.1} req/s is only {speedup:.2}× sequential \
             {seq_tput:.1} req/s (gate: ≥ {PIPELINE_SPEEDUP_MIN}×)"
        ));
    }
    if let Some((_, (ref lats, _))) = open_virtual {
        // Deterministic null check, not a performance gate: on a virtual
        // clock the schedule is exact and service time is zero, so any
        // nonzero latency was manufactured by the accounting itself.
        let max = lats.last().copied().unwrap_or(0.0);
        if max != 0.0 {
            violations.push(format!(
                "virtual-time open-loop measured nonzero latency (max {max:.9}s): \
                 the open-loop accounting manufactured latency"
            ));
        }
    }

    let (sp50, sp95, sp99) = pcts(&seq.latencies);
    let (pp50, pp95, pp99) = pcts(&pipe.latencies);
    let mut rep = Report::new(
        "loadgen",
        format!(
            "closed-loop service throughput — {} conns × {} reqs, batch {}",
            opts.connections, opts.requests_per_conn, opts.batch_size
        ),
        &["mode", "req/s", "p50", "p95", "p99", "elapsed_s", "errors"],
    );
    rep.row(vec![
        "sequential".into(),
        format!("{seq_tput:.1}"),
        ms(sp50),
        ms(sp95),
        ms(sp99),
        format!("{:.3}", seq.elapsed_s),
        seq.errors.len().to_string(),
    ]);
    rep.row(vec![
        "pipelined".into(),
        format!("{pipe_tput:.1}"),
        ms(pp50),
        ms(pp95),
        ms(pp99),
        format!("{:.3}", pipe.elapsed_s),
        pipe.errors.len().to_string(),
    ]);
    if let Some((rate, (ref lats, achieved))) = open {
        let (op50, op95, op99) = pcts(lats);
        rep.row(vec![
            format!("open-loop@{rate:.0}/s"),
            format!("{achieved:.1}"),
            ms(op50),
            ms(op95),
            ms(op99),
            String::new(),
            String::new(),
        ]);
    }
    if let Some((rate, (ref lats, achieved))) = open_virtual {
        let (op50, op95, op99) = pcts(lats);
        rep.row(vec![
            format!("open-loop@{rate:.0}/s (virtual)"),
            format!("{achieved:.1}"),
            ms(op50),
            ms(op95),
            ms(op99),
            String::new(),
            String::new(),
        ]);
    }
    rep.note(format!(
        "speedup {speedup:.2}× (gate ≥ {PIPELINE_SPEEDUP_MIN}×); pipelined member latency \
         is its batch's round trip; gates are relative only"
    ));
    for v in &violations {
        rep.note(format!("VIOLATION: {v}"));
    }
    rep.emit(&cfg.out_dir)?;

    // Machine-readable artifact.
    let sys = SystemInfo::collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json_escape(LOADGEN_SCHEMA)
    ));
    json.push_str(&format!(
        "  \"git_sha\": \"{}\",\n",
        json_escape(&git_sha())
    ));
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    json.push_str(&format!(
        "  \"workload\": {{\"connections\": {}, \"requests_per_conn\": {}, \"batch_size\": {}, \"seed\": {}, \"graphs\": [\"kkt_power\", \"RMAT\"], \"algorithms\": [\"ms-bfs-graft\", \"ms-bfs\", \"hk\", \"pf\"]}},\n",
        opts.connections, opts.requests_per_conn, opts.batch_size, opts.seed
    ));
    json.push_str(&format!(
        "  \"system\": {{\"cpu_model\": \"{}\", \"logical_cpus\": {}, \"physical_cores\": {}, \"memory_gib\": {:.1}, \"os\": \"{}\"}},\n",
        json_escape(&sys.cpu_model),
        sys.logical_cpus,
        sys.physical_cores,
        sys.memory_gib,
        json_escape(&sys.os)
    ));
    for (mode, tput, r) in [
        ("sequential", seq_tput, &seq),
        ("pipelined", pipe_tput, &pipe),
    ] {
        let (p50, p95, p99) = pcts(&r.latencies);
        json.push_str(&format!(
            "  \"{mode}\": {{\"throughput_rps\": {}, \"elapsed_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"errors\": {}}},\n",
            json_secs(tput),
            json_secs(r.elapsed_s),
            json_secs(p50),
            json_secs(p95),
            json_secs(p99),
            r.errors.len()
        ));
    }
    if let Some((rate, (ref lats, achieved))) = open {
        let (p50, p95, p99) = pcts(lats);
        json.push_str(&format!(
            "  \"open_loop\": {{\"target_rps\": {}, \"achieved_rps\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}}},\n",
            json_secs(rate),
            json_secs(achieved),
            json_secs(p50),
            json_secs(p95),
            json_secs(p99)
        ));
    }
    if let Some((rate, (ref lats, achieved))) = open_virtual {
        let (p50, p95, p99) = pcts(lats);
        json.push_str(&format!(
            "  \"open_loop_virtual\": {{\"target_rps\": {}, \"achieved_rps\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},\n",
            json_secs(rate),
            json_secs(achieved),
            json_secs(p50),
            json_secs(p95),
            json_secs(p99),
            json_secs(lats.last().copied().unwrap_or(0.0))
        ));
    }
    json.push_str(&format!("  \"speedup\": {},\n", json_secs(speedup)));
    json.push_str(&format!(
        "  \"speedup_gate_min\": {},\n",
        json_secs(PIPELINE_SPEEDUP_MIN)
    ));
    json.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape(v)));
    }
    json.push_str("],\n");
    json.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    json.push_str("}\n");

    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join(LOADGEN_FILE);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(json.as_bytes())?;
    f.flush()?;
    println!("  → {}", path.display());

    if violations.is_empty() {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "loadgen: {} relative-invariant violation(s): {}",
            violations.len(),
            violations.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn workload_is_seeded_and_stable() {
        let opts = LoadgenOptions::default();
        let a = build_workload(&opts);
        let b = build_workload(&opts);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.len(), opts.connections);
        assert!(a.iter().all(|c| c.len() == opts.requests_per_conn));
        let other = build_workload(&LoadgenOptions {
            seed: 1,
            ..opts.clone()
        });
        assert_ne!(a, other, "different seed, different mix");
    }

    /// End-to-end smoke at the smallest possible size: the artifact is
    /// written and correctness invariants hold. The throughput gate is
    /// NOT asserted here — a loaded test host must not flake the unit
    /// suite; CI runs the gated version as its own job.
    #[test]
    fn loadgen_smoke_emits_artifact() {
        let cfg = Config {
            scale: Scale::Tiny,
            out_dir: std::env::temp_dir().join("graft_bench_loadgen_test"),
            ..Config::default()
        };
        let opts = LoadgenOptions {
            connections: 1,
            requests_per_conn: 8,
            batch_size: 4,
            open_loop_rate: Some(200.0),
            virtual_open_loop: true,
            ..LoadgenOptions::default()
        };
        // Gate violations (pure throughput) are tolerated; correctness
        // violations are not.
        match loadgen(&cfg, &opts) {
            Ok(()) => {}
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("throughput") && !msg.contains("diverged"),
                    "unexpected loadgen failure: {msg}"
                );
            }
        }
        let json = std::fs::read_to_string(cfg.out_dir.join(LOADGEN_FILE)).unwrap();
        assert!(json.contains(LOADGEN_SCHEMA));
        assert!(json.contains("\"sequential\""));
        assert!(json.contains("\"pipelined\""));
        assert!(json.contains("\"open_loop\""));
        assert!(json.contains("\"open_loop_virtual\""));
    }

    /// The virtual-time pass is exactly deterministic: every latency is
    /// zero (no queueing can build when service takes zero virtual
    /// time) and the achieved rate matches the schedule.
    #[test]
    fn virtual_open_loop_latencies_are_exactly_zero() {
        let reqs: Vec<String> = (0..16)
            .map(|i| format!("{} {}", GRAPHS[i % 2].0, ALGOS[i % ALGOS.len()]))
            .collect();
        let (lats, achieved) = run_open_loop_virtual("tiny", &reqs, 500.0).unwrap();
        assert_eq!(lats.len(), 16);
        assert!(
            lats.iter().all(|&l| l == 0.0),
            "virtual pass manufactured latency: {lats:?}"
        );
        // 16 requests at 2ms spacing: the last is *sent* at 30ms of
        // virtual time and completes instantly.
        let expected = 16.0 / 0.030;
        assert!(
            (achieved - expected).abs() / expected < 1e-6,
            "achieved {achieved}, expected {expected}"
        );
    }
}
