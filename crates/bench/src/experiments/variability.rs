//! §V-B — variation in parallel runtimes: ψ = 100·σ/μ over repeated runs
//! with perturbed vertex orders.

use super::load_suite;
use crate::report::{f2, Report};
use crate::runner::Sample;
use crate::Config;
use graft_core::{solve_from, Algorithm, PushRelabelOptions, SolveOptions};
use graft_graph::Relabeling;

/// Runs each parallel algorithm 10 times per graph; between runs the
/// graph is relabeled with a random isomorphism, perturbing traversal
/// order the way scheduling nondeterminism does on a busy machine, and
/// reports the paper's sensitivity statistic ψ.
pub fn variability(cfg: &Config) -> std::io::Result<()> {
    let runs = 10usize;
    let threads = cfg.max_threads();
    let algs = [
        Algorithm::MsBfsGraftParallel,
        Algorithm::PothenFanParallel,
        Algorithm::PushRelabelParallel,
    ];
    let opts = SolveOptions {
        threads,
        push_relabel: PushRelabelOptions {
            global_relabel_frequency: 16.0,
            queue_limit: 500,
            threads,
            ..PushRelabelOptions::default()
        },
        ..SolveOptions::default()
    };
    let mut r = Report::new(
        "variability_sensitivity",
        format!("§V-B — parallel sensitivity ψ = 100·σ/μ over {runs} perturbed runs"),
        &["graph", "ψ MS-BFS-Graft", "ψ PF", "ψ PR", "mean graft (s)"],
    );
    let mut psi_sums = [0.0f64; 3];
    let mut count = 0usize;
    for inst in load_suite(cfg) {
        let mut psis = [0.0f64; 3];
        let mut graft_mean = 0.0;
        for (ai, &alg) in algs.iter().enumerate() {
            let mut secs = Vec::with_capacity(runs);
            for run in 0..runs {
                let rel = Relabeling::random(inst.graph.num_x(), inst.graph.num_y(), run as u64);
                let h = rel.apply(&inst.graph);
                let m0 = cfg.init.run(&h, run as u64);
                let out = solve_from(&h, m0, alg, &opts);
                secs.push(out.stats.elapsed.as_secs_f64());
            }
            let s = Sample::of(&secs);
            psis[ai] = s.sensitivity();
            if ai == 0 {
                graft_mean = s.mean;
            }
        }
        for (a, p) in psi_sums.iter_mut().zip(psis) {
            *a += p;
        }
        count += 1;
        r.row(vec![
            inst.entry.name.into(),
            f2(psis[0]),
            f2(psis[1]),
            f2(psis[2]),
            format!("{graft_mean:.4}"),
        ]);
    }
    if count > 0 {
        r.note(format!(
            "mean ψ — MS-BFS-Graft: {:.1}%, PF: {:.1}%, PR: {:.1}%",
            psi_sums[0] / count as f64,
            psi_sums[1] / count as f64,
            psi_sums[2] / count as f64
        ));
    }
    r.note("paper expectation (40 threads on Mirasol): MS-BFS-Graft ≈ 6%, PR ≈ 10%, PF ≈ 17% — fine-grained level-parallelism balances load better than per-thread DFS trees.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn variability_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_var_test"),
            ..Config::default()
        };
        variability(&cfg).unwrap();
        assert!(cfg.out_dir.join("variability_sensitivity.csv").exists());
    }
}
