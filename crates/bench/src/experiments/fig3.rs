//! Fig. 3 — relative performance of MS-BFS-Graft vs. Pothen-Fan vs.
//! push-relabel, serial and multithreaded.

use super::load_suite;
use crate::report::{dur, f2, Report};
use crate::runner::{geometric_mean, relative_speedups, time_algorithm};
use crate::Config;
use graft_core::{Algorithm, PushRelabelOptions, SolveOptions};

/// For every suite graph, times the three algorithm families serially and
/// with the full thread count, and reports relative speedups (slowest
/// algorithm per graph = 1.0, the paper's normalization).
pub fn fig3(cfg: &Config) -> std::io::Result<()> {
    let t_max = cfg.max_threads();
    let serial_algs = [
        Algorithm::MsBfsGraft,
        Algorithm::PothenFan,
        Algorithm::PushRelabel,
    ];
    let par_algs = [
        Algorithm::MsBfsGraftParallel,
        Algorithm::PothenFanParallel,
        Algorithm::PushRelabelParallel,
    ];
    let mut r = Report::new(
        "fig3_relative_performance",
        format!("Fig. 3 — relative speedup (1 thread and {t_max} threads)"),
        &[
            "graph",
            "setting",
            "MS-BFS-Graft",
            "PF",
            "PR",
            "graft time",
            "pf time",
            "pr time",
        ],
    );

    // Per-class geometric means of the graft-vs-best-competitor ratio.
    let mut serial_ratios = Vec::new();
    let mut par_ratios = Vec::new();

    for inst in load_suite(cfg) {
        for (setting, algs, threads) in [
            ("serial", serial_algs, 1usize),
            ("parallel", par_algs, t_max),
        ] {
            let opts = SolveOptions {
                threads,
                push_relabel: PushRelabelOptions {
                    global_relabel_frequency: if threads > 1 { 16.0 } else { 2.0 },
                    queue_limit: 500,
                    threads,
                    ..PushRelabelOptions::default()
                },
                ..SolveOptions::default()
            };
            let times: Vec<f64> = algs
                .iter()
                .map(|&a| {
                    time_algorithm(&inst.graph, &inst.init, a, &opts, cfg.reps)
                        .sample()
                        .mean
                })
                .collect();
            let speedups = relative_speedups(&times);
            let competitor_best = times[1].min(times[2]);
            let ratio = competitor_best / times[0].max(1e-12);
            if setting == "serial" {
                serial_ratios.push(ratio);
            } else {
                par_ratios.push(ratio);
            }
            r.row(vec![
                inst.entry.name.into(),
                setting.into(),
                f2(speedups[0]),
                f2(speedups[1]),
                f2(speedups[2]),
                dur(std::time::Duration::from_secs_f64(times[0])),
                dur(std::time::Duration::from_secs_f64(times[1])),
                dur(std::time::Duration::from_secs_f64(times[2])),
            ]);
        }
    }
    r.note(format!(
        "geometric-mean speedup of MS-BFS-Graft over its best competitor: serial {:.2}x, parallel {:.2}x",
        geometric_mean(&serial_ratios),
        geometric_mean(&par_ratios)
    ));
    r.note("paper expectation: ~5x serial / ~7-11x parallel on average, largest on the web/low-matching class, ~1x on the scientific class serially.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig3_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig3_test"),
            ..Config::default()
        };
        fig3(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig3_relative_performance.csv").exists());
    }
}
