//! `perf-gate` — the CI performance gate.
//!
//! Runs a pinned two-graph suite (kkt_power + RMAT) through every engine,
//! timing each solve twice per repetition: once *fresh* (the classic
//! `solve_from` path, which allocates a new [`SolveWorkspace`] internally)
//! and once *reused* (the `solve_from_in` path against one long-lived
//! workspace, as graft-svc workers run it). The gate then checks only
//! **relative** invariants — ratios between measurements taken seconds
//! apart on the same machine — because absolute wall-clock varies ~2×
//! with CI runner load:
//!
//! 1. every fresh/reused pair produces the same matching cardinality;
//! 2. the reused path is not slower than the fresh path (modulo a noise
//!    envelope: ×1.25 plus a 2 ms absolute slack for sub-millisecond
//!    tiny-scale timings);
//! 3. serial MS-BFS-Graft stays within ×3 of plain MS-BFS — grafting may
//!    never regress into rebuilding forests from scratch (§IV-D of the
//!    paper is precisely this comparison).
//!
//! Results land in a schema-versioned `BENCH_4.json` (medians, p90s,
//! host facts, git sha) that CI archives as a workflow artifact, so a
//! history of gate runs is diffable across commits even though the gate
//! itself never fails on absolute numbers.

use super::load_instance;
use crate::report::{dur, Report};
use crate::sysinfo::SystemInfo;
use crate::Config;
use graft_core::{solve_from, solve_from_in, Algorithm, SolveOptions, SolveWorkspace};
use std::io::Write;
use std::time::{Duration, Instant};

/// Schema identifier embedded in the JSON artifact; bump on layout change.
pub const BENCH_SCHEMA: &str = "graft-bench/perf-gate/v1";

/// Artifact file name (the `4` is the PR number that introduced it, so
/// later gates can add `BENCH_5.json` etc. without clobbering history).
pub const BENCH_FILE: &str = "BENCH_4.json";

/// Reused-vs-fresh tolerance: reused must satisfy
/// `reused ≤ fresh × RATIO + SLACK`.
const REUSE_RATIO: f64 = 1.25;
const SLACK_SECS: f64 = 0.002;

/// Serial MS-BFS-Graft must stay within this factor of serial MS-BFS.
const GRAFT_RATIO: f64 = 3.0;

struct GateRow {
    graph: &'static str,
    engine: &'static str,
    cardinality: usize,
    fresh_median: f64,
    fresh_p90: f64,
    reused_median: f64,
    reused_p90: f64,
}

/// Median of a sample (mean of the two middle values for even n).
pub(crate) fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Nearest-rank p90 (the value ≥ 90% of the sample).
pub(crate) fn p90(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((0.9 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

pub(crate) fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    v
}

/// Best-effort short commit hash; "unknown" outside a git checkout.
pub(crate) fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Seconds with microsecond resolution — enough for tiny-scale solves,
/// and locale-proof (always a plain `1.234567` literal).
pub(crate) fn json_secs(v: f64) -> String {
    format!("{v:.6}")
}

/// Runs the gate: measure, write `BENCH_4.json`, then fail (`Err`) iff a
/// relative invariant is violated.
pub fn perf_gate(cfg: &Config) -> std::io::Result<()> {
    let reps = cfg.reps.max(1);
    let graphs = ["kkt_power", "RMAT"];
    let opts = SolveOptions {
        threads: cfg.threads,
        ..SolveOptions::default()
    };

    let mut rows: Vec<GateRow> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for name in graphs {
        let entry = graft_gen::suite::by_name(name).expect("pinned suite graph exists");
        let inst = load_instance(entry, cfg);
        let mut ws = SolveWorkspace::new();
        for alg in Algorithm::ALL {
            // Warm-up: grow the shared workspace (and fault in the graph)
            // outside the timed region, mirroring a svc worker's steady
            // state where growth happened on some earlier request.
            let warm = solve_from_in(&inst.graph, inst.init.clone(), alg, &opts, &mut ws);
            let want_card = warm.matching.cardinality();

            let mut fresh = Vec::with_capacity(reps);
            let mut reused = Vec::with_capacity(reps);
            for rep in 0..reps {
                // Interleave fresh/reused so a load spike mid-run biases
                // both sides equally instead of poisoning the ratio.
                let t0 = Instant::now();
                let out_f = solve_from(&inst.graph, inst.init.clone(), alg, &opts);
                fresh.push(t0.elapsed().as_secs_f64());
                let t1 = Instant::now();
                let out_r = solve_from_in(&inst.graph, inst.init.clone(), alg, &opts, &mut ws);
                reused.push(t1.elapsed().as_secs_f64());
                for (label, card) in [
                    ("fresh", out_f.matching.cardinality()),
                    ("reused", out_r.matching.cardinality()),
                ] {
                    if card != want_card {
                        violations.push(format!(
                            "{name}/{}: {label} rep {rep} cardinality {card} != {want_card}",
                            alg.name()
                        ));
                    }
                }
            }
            let (fresh, reused) = (sorted(fresh), sorted(reused));
            rows.push(GateRow {
                graph: name,
                engine: alg.name(),
                cardinality: want_card,
                fresh_median: median(&fresh),
                fresh_p90: p90(&fresh),
                reused_median: median(&reused),
                reused_p90: p90(&reused),
            });
        }
    }

    for r in &rows {
        let bound = r.fresh_median * REUSE_RATIO + SLACK_SECS;
        if r.reused_median > bound {
            violations.push(format!(
                "{}/{}: reused median {} exceeds fresh median {} × {REUSE_RATIO} + {}ms",
                r.graph,
                r.engine,
                dur(Duration::from_secs_f64(r.reused_median)),
                dur(Duration::from_secs_f64(r.fresh_median)),
                SLACK_SECS * 1e3,
            ));
        }
    }
    for name in graphs {
        let find = |engine: &str| {
            rows.iter()
                .find(|r| r.graph == name && r.engine == engine)
                .expect("pinned suite covers every engine")
        };
        let graft = find(Algorithm::MsBfsGraft.name());
        let plain = find(Algorithm::MsBfs.name());
        let bound = plain.reused_median * GRAFT_RATIO + SLACK_SECS;
        if graft.reused_median > bound {
            violations.push(format!(
                "{name}: MS-BFS-Graft median {} exceeds MS-BFS median {} × {GRAFT_RATIO} + {}ms",
                dur(Duration::from_secs_f64(graft.reused_median)),
                dur(Duration::from_secs_f64(plain.reused_median)),
                SLACK_SECS * 1e3,
            ));
        }
    }

    // Human-readable table + CSV, like every other experiment.
    let mut rep = Report::new(
        "perf_gate",
        format!("CI gate — fresh vs workspace-reused solves, {reps} reps"),
        &[
            "graph",
            "engine",
            "|M|",
            "fresh med",
            "fresh p90",
            "reused med",
            "reused p90",
            "reused/fresh",
        ],
    );
    for r in &rows {
        let ratio = if r.fresh_median > 0.0 {
            r.reused_median / r.fresh_median
        } else {
            0.0
        };
        rep.row(vec![
            r.graph.into(),
            r.engine.into(),
            r.cardinality.to_string(),
            dur(Duration::from_secs_f64(r.fresh_median)),
            dur(Duration::from_secs_f64(r.fresh_p90)),
            dur(Duration::from_secs_f64(r.reused_median)),
            dur(Duration::from_secs_f64(r.reused_p90)),
            format!("{ratio:.2}"),
        ]);
    }
    rep.note(format!(
        "invariants are relative only: reused ≤ fresh × {REUSE_RATIO} + {}ms; \
         MS-BFS-Graft ≤ MS-BFS × {GRAFT_RATIO}; equal cardinalities",
        SLACK_SECS * 1e3
    ));
    for v in &violations {
        rep.note(format!("VIOLATION: {v}"));
    }
    rep.emit(&cfg.out_dir)?;

    // Machine-readable artifact.
    let sys = SystemInfo::collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json_escape(BENCH_SCHEMA)
    ));
    json.push_str(&format!(
        "  \"git_sha\": \"{}\",\n",
        json_escape(&git_sha())
    ));
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"system\": {{\"cpu_model\": \"{}\", \"logical_cpus\": {}, \"physical_cores\": {}, \"memory_gib\": {:.1}, \"os\": \"{}\"}},\n",
        json_escape(&sys.cpu_model),
        sys.logical_cpus,
        sys.physical_cores,
        sys.memory_gib,
        json_escape(&sys.os)
    ));
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"engine\": \"{}\", \"cardinality\": {}, \
             \"fresh_median_s\": {}, \"fresh_p90_s\": {}, \
             \"reused_median_s\": {}, \"reused_p90_s\": {}}}{}\n",
            json_escape(r.graph),
            json_escape(r.engine),
            r.cardinality,
            json_secs(r.fresh_median),
            json_secs(r.fresh_p90),
            json_secs(r.reused_median),
            json_secs(r.reused_p90),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape(v)));
    }
    json.push_str("],\n");
    json.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    json.push_str("}\n");

    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join(BENCH_FILE);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(json.as_bytes())?;
    f.flush()?;
    println!("  → {}", path.display());

    if violations.is_empty() {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "perf-gate: {} relative-invariant violation(s): {}",
            violations.len(),
            violations.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn median_and_p90() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(p90(&[1.0, 2.0, 3.0]), 3.0);
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(p90(&ten), 9.0);
        assert_eq!(p90(&[]), 0.0);
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn perf_gate_runs_and_emits_artifact_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 2,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_perf_gate_test"),
            ..Config::default()
        };
        perf_gate(&cfg).unwrap();
        let json = std::fs::read_to_string(cfg.out_dir.join(BENCH_FILE)).unwrap();
        assert!(json.contains(BENCH_SCHEMA));
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("kkt_power"));
        assert!(json.contains("RMAT"));
        assert!(json.contains("MS-BFS-Graft"));
    }
}
