//! Future-work experiment: communication profile of the distributed
//! MS-BFS-Graft engine (not a paper figure — the paper's conclusion
//! names the distributed algorithm as planned work).

use super::load_suite;
use crate::report::Report;
use crate::Config;
use graft_dist::distributed_ms_bfs_graft;

/// Runs the BSP-simulated distributed engine over a rank sweep and
/// reports messages, supersteps and phases. Cardinality is asserted
/// against the shared-memory result for every cell.
pub fn dist(cfg: &Config) -> std::io::Result<()> {
    let rank_counts = [1usize, 4, 16];
    let headers: Vec<String> = ["graph", "|M|"]
        .iter()
        .map(|s| s.to_string())
        .chain(
            rank_counts
                .iter()
                .flat_map(|r| [format!("msgs p={r}"), format!("steps p={r}")]),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new(
        "dist_communication",
        "Future work — distributed MS-BFS-Graft communication profile",
        &header_refs,
    );
    for inst in load_suite(cfg) {
        let oracle = graft_core::hopcroft_karp(&inst.graph, inst.init.clone())
            .matching
            .cardinality();
        let mut row = vec![inst.entry.name.to_string(), oracle.to_string()];
        for &ranks in &rank_counts {
            let out = distributed_ms_bfs_graft(&inst.graph, inst.init.clone(), ranks);
            assert_eq!(
                out.matching.cardinality(),
                oracle,
                "{} ranks={ranks} disagrees with oracle",
                inst.entry.name
            );
            row.push(out.stats.messages.to_string());
            row.push(out.stats.supersteps.to_string());
        }
        r.row(row);
    }
    r.note("message volume grows with rank count (Visit fan-out + Renewable broadcasts); supersteps stay bounded by BFS levels × phases — the level-synchronous structure the paper cites as distributable.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn dist_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_dist_test"),
            ..Config::default()
        };
        dist(&cfg).unwrap();
        assert!(cfg.out_dir.join("dist_communication.csv").exists());
    }
}
