//! Seeded, time-budgeted concurrency stress: the par-differential
//! invariant loop promoted from a fixed 20× CI shell loop into a
//! first-class subcommand.
//!
//! Each iteration solves three structurally distinct suite graphs with
//! every (parallel, serial) engine pair at widths 1/2/4/8, under a fresh
//! initializer seed, and demands that concurrency changes the *schedule*,
//! never the *answer*: equal cardinality with the serial twin, a valid
//! matching, a König cover of equal size, and no surviving augmenting
//! path (Berge). Iterations repeat until the wall-clock budget is spent
//! (always at least one). On failure the exact replay command — same
//! seed, one iteration — is printed.

use crate::report::Report;
use crate::Config;
use graft_core::{solve, Algorithm, SolveOptions};
use graft_gen::suite::by_name;
use std::time::{Duration, Instant};

/// Thread widths exercised; mirrors the scaling benchmark sweep.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Three structurally distinct suite shapes: near-regular mesh-like
/// (kkt_power), skewed power-law (RMAT), and bow-tie web (wikipedia).
const GRAPHS: [&str; 3] = ["kkt_power", "RMAT", "wikipedia"];

/// (parallel engine, serial twin) pairs under test.
const ENGINE_PAIRS: [(Algorithm, Algorithm); 3] = [
    (Algorithm::PothenFanParallel, Algorithm::PothenFan),
    (Algorithm::MsBfsGraftParallel, Algorithm::MsBfsGraft),
    (Algorithm::PushRelabelParallel, Algorithm::PushRelabel),
];

/// Knobs for [`stress`]; both surface as `experiments stress` CLI flags.
#[derive(Clone, Copy, Debug)]
pub struct StressOptions {
    /// Base seed; iteration `i` perturbs it deterministically.
    pub seed: u64,
    /// Wall-clock budget. At least one iteration always runs; no new
    /// iteration starts after the budget is spent.
    pub budget: Duration,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            seed: 7919,
            budget: Duration::from_secs(60),
        }
    }
}

/// Seed for iteration `i`: the same prime stride the old CI shell loop
/// used, so historical failure seeds remain reachable.
fn iter_seed(base: u64, i: u64) -> u64 {
    base.wrapping_add(i.wrapping_mul(7919))
}

/// One full differential sweep at `seed`. Returns the number of solves
/// checked, or a description of the first violated invariant.
fn one_iteration(cfg: &Config, seed: u64) -> Result<usize, String> {
    let mut checked = 0usize;
    for name in GRAPHS {
        let g = by_name(name)
            .unwrap_or_else(|| panic!("suite graph {name} missing"))
            .build(cfg.scale);
        for (par, serial) in ENGINE_PAIRS {
            let base_opts = SolveOptions {
                threads: 1,
                seed,
                ..SolveOptions::default()
            };
            let baseline = solve(&g, serial, &base_opts);
            baseline.matching.validate(&g).map_err(|e| {
                format!("{} on {name}: invalid serial baseline: {e}", serial.name())
            })?;
            let want = baseline.matching.cardinality();
            for threads in THREAD_COUNTS {
                let out = solve(
                    &g,
                    par,
                    &SolveOptions {
                        threads,
                        seed,
                        ..SolveOptions::default()
                    },
                );
                let ctx = format!("{} on {name} seed={seed} threads={threads}", par.name());
                out.matching
                    .validate(&g)
                    .map_err(|e| format!("{ctx}: invalid matching: {e}"))?;
                if out.matching.cardinality() != want {
                    return Err(format!(
                        "{ctx}: cardinality {} disagrees with serial {} ({want})",
                        out.matching.cardinality(),
                        serial.name()
                    ));
                }
                // König certificate: a vertex cover of equal size.
                graft_core::verify::certify_maximum(&g, &out.matching)
                    .map_err(|e| format!("{ctx}: König certificate failed: {e}"))?;
                // Berge certificate: no augmenting path survives.
                if graft_core::verify::find_augmenting_path(&g, &out.matching).is_some() {
                    return Err(format!("{ctx}: augmenting path exists — not maximum"));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}

/// Runs the stress loop; exits with an error (after printing the replay
/// command) on the first violated invariant.
pub fn stress(cfg: &Config, opts: &StressOptions) -> std::io::Result<()> {
    let start = Instant::now();
    let mut r = Report::new(
        "stress_differential",
        format!(
            "concurrency stress — König+Berge-certified par-vs-serial differential, \
             base seed {}, budget {:?}",
            opts.seed, opts.budget
        ),
        &["iteration", "seed", "solves checked", "elapsed (s)"],
    );
    let mut total = 0usize;
    let mut iterations = 0u64;
    loop {
        let seed = iter_seed(opts.seed, iterations);
        match one_iteration(cfg, seed) {
            Ok(n) => {
                total += n;
                r.row(vec![
                    iterations.to_string(),
                    seed.to_string(),
                    n.to_string(),
                    format!("{:.2}", start.elapsed().as_secs_f64()),
                ]);
            }
            Err(msg) => {
                eprintln!("stress iteration {iterations} failed: {msg}");
                eprintln!(
                    "replay with: experiments stress --seed {seed} --budget-secs 0 --scale {}",
                    format!("{:?}", cfg.scale).to_lowercase()
                );
                return Err(std::io::Error::other(msg));
            }
        }
        iterations += 1;
        if start.elapsed() >= opts.budget {
            break;
        }
    }
    r.note(format!(
        "{iterations} iteration(s), {total} certified solves in {:.2}s — every parallel \
         engine agreed with its serial twin at widths {THREAD_COUNTS:?}",
        start.elapsed().as_secs_f64()
    ));
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn stress_runs_one_iteration_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_stress_test"),
            ..Config::default()
        };
        let opts = StressOptions {
            seed: 1,
            budget: Duration::ZERO, // at-least-one semantics
        };
        stress(&cfg, &opts).unwrap();
    }

    #[test]
    fn iter_seeds_match_the_old_ci_stride() {
        assert_eq!(iter_seed(0, 1), 7919);
        assert_eq!(iter_seed(0, 20), 20 * 7919);
        assert_eq!(iter_seed(5, 2), 5 + 2 * 7919);
    }
}
