//! `scaling` — the strong-scaling benchmark over real threads.
//!
//! Runs the parallel engines (PF(par), MS-BFS-Graft(par), PR(par)) on the
//! pinned kkt_power + RMAT pair at 1/2/4/8 threads, timing the steady-state
//! workspace-reused path (`solve_from_in`, as graft-svc workers run it).
//! Each timed solve pins its thread count through `SolveOptions::threads`,
//! which is exactly the `graftmatch --threads N` / `SOLVE threads=N` path —
//! per-solve pool construction is deliberately *inside* the timed region
//! because that is the cost a caller of those knobs actually pays.
//!
//! Like `perf-gate`, the gate checks only **relative** invariants, because
//! CI runners vary ~2× in absolute speed and frequently expose a single
//! core (where no speedup is possible, only overhead):
//!
//! 1. every thread count produces the same matching cardinality as the
//!    1-thread run of the same engine (determinism of the *result*, not
//!    of the schedule);
//! 2. a t-thread solve is not slower than the 1-thread solve beyond a
//!    noise envelope (× [`SCALE_RATIO`] plus [`SLACK_SECS`] absolute slack
//!    absorbing fixed pool-spawn cost at sub-millisecond scales) — real
//!    concurrency must never cost more than its coordination overhead;
//! 3. speedup itself is **reported, never gated** — a 1-core runner
//!    legitimately reports ~1.0× at every width.
//!
//! Results land in a schema-versioned `BENCH_9.json` (medians, p90s,
//! speedups, host facts, git sha) that CI archives as an artifact, so
//! scaling curves are diffable across commits.

use super::load_instance;
use super::perf_gate::{git_sha, json_escape, json_secs, median, p90, sorted};
use crate::report::{dur, Report};
use crate::sysinfo::SystemInfo;
use crate::Config;
use graft_core::{solve_from_in, Algorithm, SolveOptions, SolveWorkspace};
use std::io::Write;
use std::time::{Duration, Instant};

/// Schema identifier embedded in the JSON artifact; bump on layout change.
pub const SCALING_SCHEMA: &str = "graft-bench/scaling/v1";

/// Artifact file name (the `9` is the PR number that introduced it,
/// following the `BENCH_4.json` convention).
pub const SCALING_FILE: &str = "BENCH_9.json";

/// Thread widths swept. Fixed regardless of host core count so the
/// artifact schema is stable; on narrow machines the wide runs simply
/// measure oversubscription overhead (bounded by the gate).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A t-thread solve must satisfy `t_best ≤ 1_best × RATIO + SLACK`,
/// where `best` is the minimum over repetitions. The minimum — not the
/// median — is gated because a "not slower than" invariant cares about
/// achievable cost, and min-of-reps is the standard robust estimator
/// against transient runner load (a spike inflates medians for seconds;
/// it essentially never hits every repetition). The ratio bounds
/// coordination overhead; the absolute slack absorbs fixed pool-spawn
/// cost (t−1 thread spawns per solve), which dominates at
/// sub-millisecond tiny scales.
pub const SCALE_RATIO: f64 = 1.15;
const SLACK_SECS: f64 = 0.025;

struct ScaleRow {
    graph: &'static str,
    engine: &'static str,
    threads: usize,
    cardinality: usize,
    best: f64,
    median: f64,
    p90: f64,
}

/// Runs the benchmark: measure, write `BENCH_9.json`, then fail (`Err`)
/// iff a relative invariant is violated.
pub fn scaling(cfg: &Config) -> std::io::Result<()> {
    let reps = cfg.reps.max(1);
    let graphs = ["kkt_power", "RMAT"];
    let engines: Vec<Algorithm> = Algorithm::ALL
        .into_iter()
        .filter(|a| a.is_parallel())
        .collect();

    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for name in graphs {
        let entry = graft_gen::suite::by_name(name).expect("pinned suite graph exists");
        let inst = load_instance(entry, cfg);
        for &alg in &engines {
            for &t in &THREAD_COUNTS {
                let opts = SolveOptions {
                    threads: t,
                    ..SolveOptions::default()
                };
                // One long-lived workspace per (engine, width), warmed
                // outside the timed region like a svc worker's steady state.
                let mut ws = SolveWorkspace::new();
                let warm = solve_from_in(&inst.graph, inst.init.clone(), alg, &opts, &mut ws);
                let want_card = warm.matching.cardinality();

                let mut times = Vec::with_capacity(reps);
                for rep in 0..reps {
                    let t0 = Instant::now();
                    let out = solve_from_in(&inst.graph, inst.init.clone(), alg, &opts, &mut ws);
                    times.push(t0.elapsed().as_secs_f64());
                    let card = out.matching.cardinality();
                    if card != want_card {
                        violations.push(format!(
                            "{name}/{}: threads={t} rep {rep} cardinality {card} != {want_card}",
                            alg.name()
                        ));
                    }
                }
                let times = sorted(times);
                rows.push(ScaleRow {
                    graph: name,
                    engine: alg.name(),
                    threads: t,
                    cardinality: want_card,
                    best: times[0],
                    median: median(&times),
                    p90: p90(&times),
                });
            }
        }
    }

    // Relative gates against each engine's own 1-thread baseline.
    for name in graphs {
        for &alg in &engines {
            let find = |t: usize| {
                rows.iter()
                    .find(|r| r.graph == name && r.engine == alg.name() && r.threads == t)
                    .expect("sweep covers every width")
            };
            let base = find(1);
            for &t in &THREAD_COUNTS[1..] {
                let row = find(t);
                if row.cardinality != base.cardinality {
                    violations.push(format!(
                        "{name}/{}: threads={t} cardinality {} != 1-thread {}",
                        alg.name(),
                        row.cardinality,
                        base.cardinality
                    ));
                }
                let bound = base.best * SCALE_RATIO + SLACK_SECS;
                if row.best > bound {
                    violations.push(format!(
                        "{name}/{}: {t}-thread best {} exceeds 1-thread best {} × {SCALE_RATIO} + {}ms",
                        alg.name(),
                        dur(Duration::from_secs_f64(row.best)),
                        dur(Duration::from_secs_f64(base.best)),
                        SLACK_SECS * 1e3,
                    ));
                }
            }
        }
    }

    // Human-readable table + CSV, like every other experiment.
    let mut rep = Report::new(
        "scaling",
        format!("strong scaling — parallel engines at 1/2/4/8 threads, {reps} reps"),
        &[
            "graph", "engine", "threads", "|M|", "best", "median", "p90", "speedup",
        ],
    );
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.graph == r.graph && b.engine == r.engine && b.threads == 1)
            .expect("1-thread baseline exists");
        let speedup = if r.best > 0.0 {
            base.best / r.best
        } else {
            0.0
        };
        rep.row(vec![
            r.graph.into(),
            r.engine.into(),
            r.threads.to_string(),
            r.cardinality.to_string(),
            dur(Duration::from_secs_f64(r.best)),
            dur(Duration::from_secs_f64(r.median)),
            dur(Duration::from_secs_f64(r.p90)),
            format!("{speedup:.2}x"),
        ]);
    }
    rep.note(format!(
        "gates are relative only: equal cardinality across widths; \
         t-thread best ≤ 1-thread best × {SCALE_RATIO} + {}ms; \
         speedup is reported, never gated (CI runners may expose 1 core)",
        SLACK_SECS * 1e3
    ));
    for v in &violations {
        rep.note(format!("VIOLATION: {v}"));
    }
    rep.emit(&cfg.out_dir)?;

    // Machine-readable artifact.
    let sys = SystemInfo::collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json_escape(SCALING_SCHEMA)
    ));
    json.push_str(&format!(
        "  \"git_sha\": \"{}\",\n",
        json_escape(&git_sha())
    ));
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"system\": {{\"cpu_model\": \"{}\", \"logical_cpus\": {}, \"physical_cores\": {}, \"memory_gib\": {:.1}, \"os\": \"{}\"}},\n",
        json_escape(&sys.cpu_model),
        sys.logical_cpus,
        sys.physical_cores,
        sys.memory_gib,
        json_escape(&sys.os)
    ));
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let base = rows
            .iter()
            .find(|b| b.graph == r.graph && b.engine == r.engine && b.threads == 1)
            .expect("1-thread baseline exists");
        let speedup = if r.best > 0.0 {
            base.best / r.best
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"cardinality\": {}, \"best_s\": {}, \"median_s\": {}, \
             \"p90_s\": {}, \"speedup\": {speedup:.3}}}{}\n",
            json_escape(r.graph),
            json_escape(r.engine),
            r.threads,
            r.cardinality,
            json_secs(r.best),
            json_secs(r.median),
            json_secs(r.p90),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape(v)));
    }
    json.push_str("],\n");
    json.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    json.push_str("}\n");

    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join(SCALING_FILE);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(json.as_bytes())?;
    f.flush()?;
    println!("  → {}", path.display());

    if violations.is_empty() {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "scaling: {} relative-invariant violation(s): {}",
            violations.len(),
            violations.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn scaling_runs_and_emits_artifact_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 2,
            out_dir: std::env::temp_dir().join("graft_bench_scaling_test"),
            ..Config::default()
        };
        // Cardinality violations are bugs anywhere; the timing gate is
        // only meaningful on an otherwise-idle runner (the CI `scaling`
        // job), not inside a debug-mode test run that shares the machine
        // with the rest of the suite — so a timing-only Err is tolerated
        // here, a cardinality mismatch is not.
        if let Err(e) = scaling(&cfg) {
            let msg = e.to_string();
            assert!(
                !msg.contains("cardinality"),
                "scaling reported a correctness violation: {msg}"
            );
            assert!(msg.contains("exceeds"), "unexpected failure: {msg}");
        }
        let json = std::fs::read_to_string(cfg.out_dir.join(SCALING_FILE)).unwrap();
        assert!(json.contains(SCALING_SCHEMA));
        assert!(json.contains("kkt_power"));
        assert!(json.contains("RMAT"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("MS-BFS-Graft(par)"));
        assert!(
            !json.contains("cardinality "),
            "artifact records a cardinality violation:\n{json}"
        );
    }
}
