//! Ablation studies beyond the paper's figures: the α threshold that
//! drives both direction optimization and the grafting decision (§III-B
//! reports α ≈ 5 as the tuned value), and the choice of initializer
//! (§II-B motivates Karp-Sipser).

use super::{load_instance, load_suite};
use crate::report::{dur, f3, Report};
use crate::runner::time_algorithm;
use crate::Config;
use graft_core::{
    init::Initializer, solve_from, Algorithm, MsBfsOptions, PrOrder, PushRelabelOptions,
    SolveOptions,
};
use graft_gen::suite::fig1_graphs;

/// Sweeps α over the MS-BFS-Graft engine on one graph per class,
/// reporting time and traversed edges. The paper's α ≈ 5 should sit at
/// or near the per-graph optimum.
pub fn ablation_alpha(cfg: &Config) -> std::io::Result<()> {
    let alphas = [1.0, 2.0, 5.0, 10.0, 50.0];
    let headers: Vec<String> = std::iter::once("graph".to_string())
        .chain(alphas.iter().map(|a| format!("t α={a}")))
        .chain(alphas.iter().map(|a| format!("edges α={a}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new(
        "ablation_alpha",
        "Ablation — direction/grafting threshold α (MS-BFS-Graft)",
        &header_refs,
    );
    for entry in fig1_graphs() {
        let inst = load_instance(entry, cfg);
        let mut times = Vec::new();
        let mut edges = Vec::new();
        for &alpha in &alphas {
            let opts = SolveOptions {
                ms_bfs: MsBfsOptions {
                    alpha,
                    ..MsBfsOptions::graft()
                },
                ..SolveOptions::default()
            };
            let t = time_algorithm(
                &inst.graph,
                &inst.init,
                Algorithm::MsBfsGraft,
                &opts,
                cfg.reps,
            );
            times.push(dur(t.mean()));
            edges.push(t.outcome.stats.edges_traversed.to_string());
        }
        let mut row = vec![inst.entry.name.to_string()];
        row.extend(times);
        row.extend(edges);
        r.row(row);
    }
    r.note("paper: α ≈ 5 performed best for MS-BFS-Graft; α trades top-down scan volume against bottom-up rescans.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

/// Compares initializers: quality of the initial matching, and the time
/// the MS-BFS-Graft solver needs to finish the job from each.
pub fn ablation_init(cfg: &Config) -> std::io::Result<()> {
    let inits = [
        Initializer::None,
        Initializer::Greedy,
        Initializer::RandomGreedy,
        Initializer::KarpSipser,
        Initializer::KarpSipserTwo,
    ];
    let mut r = Report::new(
        "ablation_init",
        "Ablation — initializer quality vs. solve effort (MS-BFS-Graft)",
        &[
            "graph",
            "init",
            "init/max",
            "phases",
            "aug paths",
            "solve time",
        ],
    );
    for inst in load_suite(cfg) {
        // True maximum from any run (they all agree; certified in tests).
        let max = solve_from(
            &inst.graph,
            inst.init.clone(),
            Algorithm::MsBfsGraft,
            &SolveOptions::default(),
        )
        .matching
        .cardinality() as f64;
        for init in inits {
            let m0 = init.run(&inst.graph, 0xC0FFEE);
            let frac = m0.cardinality() as f64 / max.max(1.0);
            let t = time_algorithm(
                &inst.graph,
                &m0,
                Algorithm::MsBfsGraft,
                &SolveOptions::default(),
                cfg.reps,
            );
            r.row(vec![
                inst.entry.name.into(),
                init.name().into(),
                f3(frac),
                t.outcome.stats.phases.to_string(),
                t.outcome.stats.augmenting_paths.to_string(),
                dur(t.mean()),
            ]);
        }
    }
    r.note("paper (§II-B): Karp-Sipser is among the best initializers; on these synthetic analogs its degree-1 rule is so strong it often reaches the maximum outright (see EXPERIMENTS.md initializer note).");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

/// Compares the push-relabel active-vertex selection disciplines
/// (FIFO — the paper's choice — vs. highest- and lowest-label) on one
/// graph per class.
pub fn ablation_pr_order(cfg: &Config) -> std::io::Result<()> {
    let orders = [
        ("FIFO", PrOrder::Fifo),
        ("highest-label", PrOrder::HighestLabel),
        ("lowest-label", PrOrder::LowestLabel),
    ];
    let mut r = Report::new(
        "ablation_pr_order",
        "Ablation — push-relabel selection discipline (serial PR)",
        &["graph", "order", "time", "edges", "relabels"],
    );
    for entry in fig1_graphs() {
        let inst = load_instance(entry, cfg);
        for (name, order) in orders {
            let opts = SolveOptions {
                push_relabel: PushRelabelOptions {
                    order,
                    ..PushRelabelOptions::default()
                },
                ..SolveOptions::default()
            };
            let t = time_algorithm(
                &inst.graph,
                &inst.init,
                Algorithm::PushRelabel,
                &opts,
                cfg.reps,
            );
            r.row(vec![
                inst.entry.name.into(),
                name.into(),
                dur(t.mean()),
                t.outcome.stats.edges_traversed.to_string(),
                t.outcome.stats.phases.to_string(),
            ]);
        }
    }
    r.note("the paper runs PR in FIFO order; the PR literature it builds on (Kaya, Langguth, Manne, Uçar) compares all three disciplines.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn ablations_run_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_ablation_test"),
            ..Config::default()
        };
        ablation_alpha(&cfg).unwrap();
        ablation_init(&cfg).unwrap();
        ablation_pr_order(&cfg).unwrap();
        assert!(cfg.out_dir.join("ablation_alpha.csv").exists());
        assert!(cfg.out_dir.join("ablation_init.csv").exists());
    }
}
