//! Fig. 5 — strong scaling of MS-BFS-Graft per graph class.

use super::load_suite;
use crate::report::{f2, Report};
use crate::runner::{geometric_mean, time_algorithm};
use crate::Config;
use graft_core::{Algorithm, SolveOptions};
use graft_gen::suite::GraphClass;
use std::collections::BTreeMap;

/// Sweeps the thread count (1, 2, 4, … up to the machine's parallelism)
/// and reports per-class average speedup over the serial MS-BFS-Graft
/// algorithm, the paper's Fig. 5 normalization.
pub fn fig5(cfg: &Config) -> std::io::Result<()> {
    let t_max = cfg.max_threads();
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= t_max {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != t_max {
        threads.push(t_max);
    }

    let headers: Vec<String> = std::iter::once("class".to_string())
        .chain(threads.iter().map(|t| format!("t={t}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new(
        "fig5_strong_scaling",
        "Fig. 5 — strong scaling (speedup over serial MS-BFS-Graft, class average)",
        &header_refs,
    );

    // class → per-thread-count speedup lists.
    let mut per_class: BTreeMap<&'static str, Vec<Vec<f64>>> = BTreeMap::new();
    for inst in load_suite(cfg) {
        let serial = time_algorithm(
            &inst.graph,
            &inst.init,
            Algorithm::MsBfsGraft,
            &SolveOptions::default(),
            cfg.reps,
        )
        .sample()
        .mean;
        let speedups: Vec<f64> = threads
            .iter()
            .map(|&t| {
                let opts = SolveOptions {
                    threads: t,
                    ..SolveOptions::default()
                };
                let par = time_algorithm(
                    &inst.graph,
                    &inst.init,
                    Algorithm::MsBfsGraftParallel,
                    &opts,
                    cfg.reps,
                )
                .sample()
                .mean;
                serial / par.max(1e-12)
            })
            .collect();
        per_class
            .entry(inst.entry.class.name())
            .or_insert_with(|| vec![Vec::new(); threads.len()])
            .iter_mut()
            .zip(speedups)
            .for_each(|(bucket, s)| bucket.push(s));
    }
    for class in [
        GraphClass::Scientific,
        GraphClass::ScaleFree,
        GraphClass::Web,
    ] {
        if let Some(buckets) = per_class.get(class.name()) {
            let mut row = vec![class.name().to_string()];
            row.extend(buckets.iter().map(|b| f2(geometric_mean(b))));
            r.row(row);
        }
    }
    r.note(format!("host parallelism: {t_max} logical CPUs — on a 1-core CI box the curve is flat by construction; the paper reports avg 15x on 40-core Mirasol and 12x on 24-core Edison."));
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig5_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig5_test"),
            ..Config::default()
        };
        fig5(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig5_strong_scaling.csv").exists());
    }
}
