//! Fig. 4 — search rate (MTEPS) of MS-BFS-Graft vs. Pothen-Fan.

use super::load_suite;
use crate::report::{f2, Report};
use crate::runner::time_algorithm;
use crate::Config;
use graft_core::{Algorithm, SolveOptions};

/// Reports millions of traversed edges per second for the two parallel
/// algorithms, per graph — the ratio column reproduces the paper's
/// "2-12× faster search" claim shape.
pub fn fig4(cfg: &Config) -> std::io::Result<()> {
    let opts = SolveOptions {
        threads: cfg.max_threads(),
        ..SolveOptions::default()
    };
    let mut r = Report::new(
        "fig4_search_rate",
        "Fig. 4 — search rate in MTEPS (traversed edges / second)",
        &[
            "graph",
            "class",
            "MS-BFS-Graft MTEPS",
            "PF MTEPS",
            "graft/pf",
        ],
    );
    for inst in load_suite(cfg) {
        let graft = time_algorithm(
            &inst.graph,
            &inst.init,
            Algorithm::MsBfsGraftParallel,
            &opts,
            cfg.reps,
        );
        let pf = time_algorithm(
            &inst.graph,
            &inst.init,
            Algorithm::PothenFanParallel,
            &opts,
            cfg.reps,
        );
        let g_mteps =
            graft.outcome.stats.edges_traversed as f64 / graft.sample().mean.max(1e-12) / 1e6;
        let p_mteps = pf.outcome.stats.edges_traversed as f64 / pf.sample().mean.max(1e-12) / 1e6;
        r.row(vec![
            inst.entry.name.into(),
            inst.entry.class.name().into(),
            f2(g_mteps),
            f2(p_mteps),
            f2(g_mteps / p_mteps.max(1e-12)),
        ]);
    }
    r.note("paper expectation: MS-BFS-Graft searches 2-12x faster than PF, most on low-matching graphs (wikipedia ~12x, web-Google ~10x).");
    r.note("rates are below pure direction-optimized BFS for the four reasons of §V-C (specialized search, shrinking subgraphs, augmentation time included, actual-edge accounting).");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig4_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig4_test"),
            ..Config::default()
        };
        fig4(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig4_search_rate.csv").exists());
    }
}
