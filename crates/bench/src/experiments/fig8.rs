//! Fig. 8 — BFS frontier size per level, with and without grafting, on
//! the coPapersDBLP analog.

use super::load_instance;
use crate::report::Report;
use crate::Config;
use graft_core::{solve_from, Algorithm, MsBfsOptions, SolveOptions};
use graft_gen::suite::by_name;

/// Records the frontier-size history of MS-BFS and MS-BFS-Graft and
/// prints the per-level sizes of two mid-run phases (the paper shows
/// phases 2 and 4). Grafting should start each phase with a large
/// frontier that only shrinks; without grafting each phase restarts small,
/// grows, then shrinks.
pub fn fig8(cfg: &Config) -> std::io::Result<()> {
    let entry = by_name("coPapersDBLP").expect("suite graph");
    let inst = load_instance(entry, cfg);
    let mut r = Report::new(
        "fig8_frontier_sizes",
        "Fig. 8 — frontier size per BFS level (coPapersDBLP analog)",
        &["algorithm", "phase", "level", "frontier", "direction"],
    );
    for (name, alg) in [
        ("MS-BFS", Algorithm::MsBfs),
        ("MS-BFS-Graft", Algorithm::MsBfsGraft),
    ] {
        let opts = SolveOptions {
            ms_bfs: MsBfsOptions {
                record_frontier: true,
                ..MsBfsOptions::graft()
            },
            ..SolveOptions::default()
        };
        let out = solve_from(&inst.graph, inst.init.clone(), alg, &opts);
        let max_phase = out
            .stats
            .frontier_history
            .iter()
            .map(|s| s.phase)
            .max()
            .unwrap_or(1);
        // The paper plots phases 2 and 4; clamp for short runs.
        for phase in [2u32.min(max_phase), 4u32.min(max_phase)] {
            for s in out.stats.frontier_of_phase(phase) {
                r.row(vec![
                    name.into(),
                    s.phase.to_string(),
                    s.level.to_string(),
                    s.size.to_string(),
                    if s.bottom_up {
                        "bottom-up".into()
                    } else {
                        "top-down".into()
                    },
                ]);
            }
        }
        // Summary: total forest work per phase (area under the curve).
        let total: usize = out.stats.frontier_history.iter().map(|s| s.size).sum();
        r.note(format!(
            "{name}: {} phases, total frontier volume {} (area under the curves)",
            max_phase, total
        ));
        // ASCII rendition of the paper's curves: one bar row per level.
        let peak = out
            .stats
            .frontier_history
            .iter()
            .map(|s| s.size)
            .max()
            .unwrap_or(1)
            .max(1);
        for phase in [2u32.min(max_phase), 4u32.min(max_phase)] {
            for s in out.stats.frontier_of_phase(phase) {
                let width = (s.size * 40).div_ceil(peak);
                r.note(format!(
                    "{name:>12} p{} L{:<2} |{:<40}| {}",
                    s.phase,
                    s.level,
                    "█".repeat(width),
                    s.size
                ));
            }
        }
    }
    r.note("paper expectation: grafting starts phases with large frontiers that shrink monotonically; without grafting phases start small, grow, then shrink — with a larger area (more traversal work) and taller forests (more synchronization).");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig8_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig8_test"),
            ..Config::default()
        };
        fig8(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig8_frontier_sizes.csv").exists());
    }
}
