//! `dynbench` — the incremental-matching delta benchmark.
//!
//! Drives a churn stream (alternating deletes of live edges and inserts
//! of fresh ones, ~1% of the edge count) against a pinned suite graph
//! two ways:
//!
//! * **incremental** — one [`DynamicMatching`] absorbs each update via
//!   bounded augmenting search (tombstone compaction included);
//! * **full re-solve** — the baseline without the subsystem: rebuild the
//!   CSR from the updated edge list and solve MS-BFS-Graft from scratch
//!   after every update (CSR build + initializer count toward its time —
//!   they are part of the price of not being incremental).
//!
//! Like `perf-gate`, the gate checks only **relative** invariants, never
//! absolute wall-clock:
//!
//! 1. after every update, the incremental cardinality equals the
//!    from-scratch solve's cardinality (the correctness differential);
//! 2. the incremental stream is at least [`DYNBENCH_SPEEDUP_MIN`]×
//!    faster than the per-update full re-solves in total.
//!
//! Results land in a schema-versioned `BENCH_6.json` that CI archives as
//! a workflow artifact.

use super::load_instance;
use super::perf_gate::{git_sha, json_escape, json_secs};
use crate::report::{dur, Report};
use crate::sysinfo::SystemInfo;
use crate::Config;
use graft_core::{solve_from_in, Algorithm, SolveOptions, SolveWorkspace};
use graft_dyn::{DynConfig, DynamicMatching};
use graft_graph::{BipartiteCsr, VertexId};
use std::collections::HashSet;
use std::io::Write;
use std::time::{Duration, Instant};

/// Schema identifier embedded in the JSON artifact; bump on layout change.
pub const DYNBENCH_SCHEMA: &str = "graft-bench/dynbench/v1";

/// Artifact file name (`6` is the PR number that introduced it).
pub const DYNBENCH_FILE: &str = "BENCH_6.json";

/// The incremental stream must beat per-update full re-solves by at
/// least this factor in total elapsed time.
pub const DYNBENCH_SPEEDUP_MIN: f64 = 5.0;

/// Update-stream length as a fraction of the edge count.
const CHURN_FRACTION: f64 = 0.01;

/// Bounds on the stream length so tiny scales still exercise the loop
/// and large scales stay affordable (the baseline re-solves per update).
const MIN_OPS: usize = 16;
const MAX_OPS: usize = 256;

/// SplitMix64 — deterministic, seed-stable across platforms.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Runs the benchmark: measure, write `BENCH_6.json`, then fail (`Err`)
/// iff a relative invariant is violated.
pub fn dynbench(cfg: &Config) -> std::io::Result<()> {
    let entry = graft_gen::suite::by_name("kkt_power").expect("pinned suite graph exists");
    let inst = load_instance(entry, cfg);
    let graph = inst.graph;
    let nx = graph.num_x();
    let ny = graph.num_y();

    // The mutable edge set both sides evolve in lockstep.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(graph.num_edges());
    for x in 0..nx {
        for &y in graph.x_neighbors(x as VertexId) {
            edges.push((x as VertexId, y));
        }
    }
    let mut live: HashSet<(VertexId, VertexId)> = edges.iter().copied().collect();

    let want_ops = ((graph.num_edges() as f64) * CHURN_FRACTION).ceil() as usize;
    let ops = want_ops.clamp(MIN_OPS, MAX_OPS);
    if ops < want_ops {
        println!("  dynbench: capping stream at {ops} of {want_ops} updates (1% of edges)");
    }

    let opts = SolveOptions {
        threads: cfg.threads,
        ..SolveOptions::default()
    };
    let mut ws = SolveWorkspace::new();

    // Both sides start from the same solved state; setup is untimed
    // because it is identical work either way.
    let mut dm = DynamicMatching::with_config(graph.clone(), DynConfig::default());

    let mut rng = SplitMix(0xD15C_0B7A_11CE_BEEF);
    let mut incr_total = 0.0f64;
    let mut full_total = 0.0f64;
    let mut adds = 0usize;
    let mut dels = 0usize;
    let mut violations: Vec<String> = Vec::new();
    let mut last_deleted: Option<(VertexId, VertexId)> = None;

    for op in 0..ops {
        // Alternate: delete a random live edge, then insert a fresh one
        // (falling back to resurrecting the last delete when random
        // probing keeps hitting live pairs), so the edge count stays
        // within one of the original and the graph genuinely churns.
        let (is_add, x, y) = if op % 2 == 0 {
            let idx = rng.below(edges.len());
            let (x, y) = edges.swap_remove(idx);
            live.remove(&(x, y));
            last_deleted = Some((x, y));
            (false, x, y)
        } else {
            let mut pick = last_deleted.take().unwrap_or((0, 0));
            for _ in 0..64 {
                let cand = (rng.below(nx) as VertexId, rng.below(ny) as VertexId);
                if !live.contains(&cand) {
                    pick = cand;
                    break;
                }
            }
            let (x, y) = pick;
            if live.insert((x, y)) {
                edges.push((x, y));
            }
            (true, x, y)
        };

        let t0 = Instant::now();
        let report = if is_add {
            dm.insert_edge(x, y)
        } else {
            dm.delete_edge(x, y)
        };
        incr_total += t0.elapsed().as_secs_f64();
        if is_add {
            adds += 1;
        } else {
            dels += 1;
        }
        let incr_card = match report {
            Ok(r) => r.cardinality,
            Err(e) => {
                violations.push(format!("op {op}: incremental update rejected: {e}"));
                dm.cardinality()
            }
        };

        let t1 = Instant::now();
        let csr = BipartiteCsr::from_edges(nx, ny, &edges);
        let init = cfg.init.run(&csr, 0xC0FFEE);
        let out = solve_from_in(&csr, init, Algorithm::MsBfsGraft, &opts, &mut ws);
        full_total += t1.elapsed().as_secs_f64();

        let full_card = out.matching.cardinality();
        if incr_card != full_card {
            violations.push(format!(
                "op {op} ({} {x} {y}): incremental cardinality {incr_card} != from-scratch {full_card}",
                if is_add { "add" } else { "del" },
            ));
        }
    }

    let speedup = if incr_total > 0.0 {
        full_total / incr_total
    } else {
        f64::INFINITY
    };
    if incr_total * DYNBENCH_SPEEDUP_MIN > full_total {
        violations.push(format!(
            "incremental total {} is not {DYNBENCH_SPEEDUP_MIN}× faster than full re-solve total {} (speedup {speedup:.1}×)",
            dur(Duration::from_secs_f64(incr_total)),
            dur(Duration::from_secs_f64(full_total)),
        ));
    }

    let mut rep = Report::new(
        "dynbench",
        format!("incremental updates vs per-update full re-solve, {ops} ops"),
        &[
            "graph",
            "ops",
            "adds",
            "dels",
            "incr total",
            "full total",
            "speedup",
            "rebuilds",
            "|M| final",
        ],
    );
    rep.row(vec![
        "kkt_power".into(),
        ops.to_string(),
        adds.to_string(),
        dels.to_string(),
        dur(Duration::from_secs_f64(incr_total)),
        dur(Duration::from_secs_f64(full_total)),
        format!("{speedup:.1}"),
        dm.rebuilds().to_string(),
        dm.cardinality().to_string(),
    ]);
    rep.note(format!(
        "invariants are relative only: equal cardinality after every update; \
         incremental ≥ {DYNBENCH_SPEEDUP_MIN}× faster in total"
    ));
    for v in &violations {
        rep.note(format!("VIOLATION: {v}"));
    }
    rep.emit(&cfg.out_dir)?;

    let sys = SystemInfo::collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json_escape(DYNBENCH_SCHEMA)
    ));
    json.push_str(&format!(
        "  \"git_sha\": \"{}\",\n",
        json_escape(&git_sha())
    ));
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    json.push_str(&format!(
        "  \"system\": {{\"cpu_model\": \"{}\", \"logical_cpus\": {}, \"physical_cores\": {}, \"memory_gib\": {:.1}, \"os\": \"{}\"}},\n",
        json_escape(&sys.cpu_model),
        sys.logical_cpus,
        sys.physical_cores,
        sys.memory_gib,
        json_escape(&sys.os)
    ));
    json.push_str(&format!(
        "  \"graph\": \"kkt_power\", \"ops\": {ops}, \"adds\": {adds}, \"dels\": {dels},\n"
    ));
    json.push_str(&format!(
        "  \"incremental_total_s\": {}, \"full_total_s\": {}, \"speedup\": {:.2},\n",
        json_secs(incr_total),
        json_secs(full_total),
        speedup
    ));
    json.push_str(&format!(
        "  \"rebuilds\": {}, \"final_cardinality\": {},\n",
        dm.rebuilds(),
        dm.cardinality()
    ));
    json.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape(v)));
    }
    json.push_str("],\n");
    json.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    json.push_str("}\n");

    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join(DYNBENCH_FILE);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(json.as_bytes())?;
    f.flush()?;
    println!("  → {}", path.display());

    if violations.is_empty() {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "dynbench: {} relative-invariant violation(s): {}",
            violations.len(),
            violations.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn dynbench_runs_and_emits_artifact_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_dynbench_test"),
            ..Config::default()
        };
        dynbench(&cfg).unwrap();
        let json = std::fs::read_to_string(cfg.out_dir.join(DYNBENCH_FILE)).unwrap();
        assert!(json.contains(DYNBENCH_SCHEMA));
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("kkt_power"));
        assert!(json.contains("\"speedup\""));
    }
}
