//! Fig. 9 (referenced in §II) — fraction of runtime spent in graph
//! searches, the observation justifying the edges-traversed metric.

use super::load_suite;
use crate::report::{dur, f2, Report};
use crate::Config;
use graft_core::{solve_from, Algorithm, SolveOptions};

/// Reports search time (top-down + bottom-up) as a fraction of total
/// attributed time for the serial and parallel MS-BFS-Graft engines.
pub fn fig9(cfg: &Config) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig9_search_fraction",
        "Fig. 9 — fraction of time spent in graph search",
        &[
            "graph",
            "class",
            "serial search%",
            "parallel search%",
            "serial total",
        ],
    );
    for inst in load_suite(cfg) {
        let s = solve_from(
            &inst.graph,
            inst.init.clone(),
            Algorithm::MsBfsGraft,
            &SolveOptions::default(),
        );
        let p = solve_from(
            &inst.graph,
            inst.init.clone(),
            Algorithm::MsBfsGraftParallel,
            &SolveOptions {
                threads: cfg.max_threads(),
                ..SolveOptions::default()
            },
        );
        r.row(vec![
            inst.entry.name.into(),
            inst.entry.class.name().into(),
            f2(100.0 * s.stats.search_fraction()),
            f2(100.0 * p.stats.search_fraction()),
            dur(s.stats.elapsed),
        ]);
    }
    r.note("paper context (§II, §V-E): matching algorithms spend most of their time in graph searches — at least 40% everywhere, dominating on high-matching-number graphs.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig9_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig9_test"),
            ..Config::default()
        };
        fig9(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig9_search_fraction.csv").exists());
    }
}
