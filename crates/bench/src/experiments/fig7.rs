//! Fig. 7 — performance contributions of direction optimization and tree
//! grafting over plain parallel MS-BFS (the ablation of the paper's two
//! techniques).

use super::load_suite;
use crate::report::{f2, Report};
use crate::runner::{geometric_mean, time_algorithm};
use crate::Config;
use graft_core::{Algorithm, MsBfsOptions, SolveOptions};
use graft_gen::suite::GraphClass;

/// Times parallel MS-BFS with the three engine configurations — plain,
/// +direction-optimization, +grafting — and reports speedups over plain
/// MS-BFS per graph plus class/overall geometric means.
pub fn fig7(cfg: &Config) -> std::io::Result<()> {
    let threads = cfg.max_threads();
    let configs: [(&str, MsBfsOptions); 3] = [
        ("MS-BFS", MsBfsOptions::plain()),
        ("+dirOpt", MsBfsOptions::dir_opt_only()),
        ("+graft", MsBfsOptions::graft()),
    ];
    let mut r = Report::new(
        "fig7_contributions",
        "Fig. 7 — speedup over plain parallel MS-BFS from direction optimization and grafting",
        &[
            "graph",
            "class",
            "dirOpt speedup",
            "dirOpt+graft speedup",
            "plain time (s)",
        ],
    );
    let mut dir_gains = Vec::new();
    let mut graft_gains = Vec::new();
    let mut web_graft_gains = Vec::new();
    for inst in load_suite(cfg) {
        let mut times = Vec::new();
        for (_, ms) in &configs {
            let opts = SolveOptions {
                threads,
                ms_bfs: *ms,
                ..SolveOptions::default()
            };
            times.push(
                time_algorithm(
                    &inst.graph,
                    &inst.init,
                    Algorithm::MsBfsGraftParallel,
                    &opts,
                    cfg.reps,
                )
                .sample()
                .mean,
            );
        }
        let s_dir = times[0] / times[1].max(1e-12);
        let s_graft = times[0] / times[2].max(1e-12);
        dir_gains.push(s_dir);
        graft_gains.push(s_graft / s_dir); // grafting's incremental factor
        if inst.entry.class == GraphClass::Web {
            web_graft_gains.push(s_graft / s_dir);
        }
        r.row(vec![
            inst.entry.name.into(),
            inst.entry.class.name().into(),
            f2(s_dir),
            f2(s_graft),
            format!("{:.4}", times[0]),
        ]);
    }
    r.note(format!(
        "geometric means — direction optimization: {:.2}x, additional grafting factor: {:.2}x (web class: {:.2}x)",
        geometric_mean(&dir_gains),
        geometric_mean(&graft_gains),
        geometric_mean(&web_graft_gains)
    ));
    r.note("paper expectation: ~1.6x from direction optimization, ~3x more from grafting, up to 7.8x on low-matching graphs.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig7_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig7_test"),
            ..Config::default()
        };
        fig7(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig7_contributions.csv").exists());
    }
}
