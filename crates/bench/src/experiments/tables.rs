//! Table I (machine description) and Table II (input graph suite).

use super::load_suite;
use crate::report::{f3, Report};
use crate::sysinfo::SystemInfo;
use crate::Config;
use graft_core::{hopcroft_karp, Matching};

/// Table I: description of the system running the experiments, side by
/// side with the paper's two machines for context.
pub fn table1(cfg: &Config) -> std::io::Result<()> {
    let s = SystemInfo::collect();
    let mut r = Report::new(
        "table1_system",
        "Table I — systems (paper machines vs. this host)",
        &["feature", "Edison (paper)", "Mirasol (paper)", "this host"],
    );
    let rows: Vec<(&str, &str, &str, String)> = vec![
        (
            "architecture",
            "Ivy Bridge",
            "Westmere-EX",
            s.cpu_model.clone(),
        ),
        (
            "sockets×cores",
            "2×12",
            "4×10",
            format!("{} physical cores", s.physical_cores),
        ),
        ("hardware threads", "48", "80", s.logical_cpus.to_string()),
        (
            "DRAM",
            "64 GB",
            "256 GB",
            format!("{:.1} GiB", s.memory_gib),
        ),
        (
            "compiler",
            "icc 14.0.2 -O2",
            "gcc 4.4.7 -O2",
            format!("rustc --release, {}", s.os),
        ),
    ];
    for (f, e, m, h) in rows {
        r.row(vec![f.into(), e.into(), m.into(), h]);
    }
    r.note("NUMA pinning (GOMP_CPU_AFFINITY / numactl in the paper) is replaced by rayon pools; see DESIGN.md §5.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

/// Table II: the synthetic analog suite with measured sizes and matching
/// numbers (as fractions of |V|, the paper's normalization).
pub fn table2(cfg: &Config) -> std::io::Result<()> {
    let mut r = Report::new(
        "table2_suite",
        "Table II — input graph suite (synthetic analogs)",
        &[
            "graph",
            "class",
            "nx",
            "ny",
            "edges",
            "init frac",
            "matching frac",
            "analog",
        ],
    );
    for inst in load_suite(cfg) {
        let g = &inst.graph;
        let maximum = hopcroft_karp(g, inst.init.clone()).matching;
        let ks_frac = Matching::matching_fraction(&inst.init, g);
        let max_frac = maximum.matching_fraction(g);
        r.row(vec![
            inst.entry.name.into(),
            inst.entry.class.name().into(),
            g.num_x().to_string(),
            g.num_y().to_string(),
            g.num_edges().to_string(),
            f3(ks_frac),
            f3(max_frac),
            inst.entry.analog.into(),
        ]);
    }
    r.note(
        "classes follow §IV-B: scientific ≈ 1.0 matching fraction, web/low-matching well below 1.",
    );
    r.note(format!(
        "scale = {:?} (multiplier {}), initializer = {}",
        cfg.scale,
        cfg.scale.factor(),
        cfg.init.name()
    ));
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn tables_run_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            out_dir: std::env::temp_dir().join("graft_bench_tables_test"),
            ..Config::default()
        };
        table1(&cfg).unwrap();
        table2(&cfg).unwrap();
        assert!(cfg.out_dir.join("table2_suite.csv").exists());
    }
}
