//! Phase anatomy: a per-phase dissection of one MS-BFS-Graft run,
//! showing the mechanism behind Figs. 7 and 8 — early phases harvest
//! many short augmenting paths and often rebuild; later phases graft,
//! start with big frontiers, and chase the few remaining long paths.

use super::load_instance;
use crate::report::Report;
use crate::Config;
use graft_core::{solve_from, Algorithm, MsBfsOptions, SolveOptions};
use graft_gen::suite::by_name;

/// Prints the phase-by-phase trace of MS-BFS-Graft on the coPapersDBLP
/// and wikipedia analogs (one high-, one low-matching-number instance).
pub fn anatomy(cfg: &Config) -> std::io::Result<()> {
    let mut r = Report::new(
        "anatomy_phases",
        "Phase anatomy of MS-BFS-Graft (per-phase trace)",
        &[
            "graph",
            "phase",
            "levels",
            "bottom-up",
            "peak |F|",
            "edges",
            "aug paths",
            "avg |P|",
            "activeX",
            "renewY",
            "next",
        ],
    );
    for name in ["coPapersDBLP", "wikipedia"] {
        let entry = by_name(name).expect("suite graph");
        let inst = load_instance(entry, cfg);
        let opts = SolveOptions {
            ms_bfs: MsBfsOptions {
                record_phases: true,
                ..MsBfsOptions::graft()
            },
            ..SolveOptions::default()
        };
        let out = solve_from(&inst.graph, inst.init.clone(), Algorithm::MsBfsGraft, &opts);
        let last = out.stats.phase_traces.len();
        for (i, t) in out.stats.phase_traces.iter().enumerate() {
            let avg_p = if t.augmenting_paths == 0 {
                0.0
            } else {
                t.path_edges as f64 / t.augmenting_paths as f64
            };
            r.row(vec![
                name.into(),
                t.phase.to_string(),
                t.levels.to_string(),
                t.bottom_up_levels.to_string(),
                t.frontier_peak.to_string(),
                t.edges_traversed.to_string(),
                t.augmenting_paths.to_string(),
                format!("{avg_p:.1}"),
                t.active_x.to_string(),
                t.renewable_y.to_string(),
                if i + 1 == last {
                    "done".into()
                } else if t.grafted {
                    "graft".into()
                } else {
                    "rebuild".into()
                },
            ]);
        }
    }
    r.note("paper expectation (§III-B): 'tree-grafting is usually not beneficial in the first few phases when a large number of augmenting paths is discovered' — the early phases should say rebuild, the late ones graft.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn anatomy_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_anatomy_test"),
            ..Config::default()
        };
        anatomy(&cfg).unwrap();
        assert!(cfg.out_dir.join("anatomy_phases.csv").exists());
    }
}
