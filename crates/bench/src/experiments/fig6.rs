//! Fig. 6 — breakdown of MS-BFS-Graft runtime into its five steps.

use super::load_suite;
use crate::report::{f2, Report};
use crate::Config;
use graft_core::{solve_from, Algorithm, SolveOptions};

/// Reports the fraction of runtime spent in TopDown / BottomUp / Augment /
/// Tree-Grafting / Statistics for every suite graph, Fig. 6's stacked
/// bars as percentages.
pub fn fig6(cfg: &Config) -> std::io::Result<()> {
    let opts = SolveOptions {
        threads: cfg.max_threads(),
        ..SolveOptions::default()
    };
    let mut r = Report::new(
        "fig6_breakdown",
        "Fig. 6 — runtime breakdown of MS-BFS-Graft (% of attributed time)",
        &[
            "graph",
            "class",
            "TopDown",
            "BottomUp",
            "Augment",
            "Graft",
            "Statistics",
            "Other",
            "search%",
        ],
    );
    for inst in load_suite(cfg) {
        let out = solve_from(
            &inst.graph,
            inst.init.clone(),
            Algorithm::MsBfsGraftParallel,
            &opts,
        );
        let f = out.stats.breakdown.fractions();
        r.row(vec![
            inst.entry.name.into(),
            inst.entry.class.name().into(),
            f2(100.0 * f[0]),
            f2(100.0 * f[1]),
            f2(100.0 * f[2]),
            f2(100.0 * f[3]),
            f2(100.0 * f[4]),
            f2(100.0 * f[5]),
            f2(100.0 * out.stats.search_fraction()),
        ]);
    }
    r.note("paper expectation: ≥40% of time in BFS traversal everywhere; high-matching graphs (hugetrace, kkt_power) mostly BFS, low-matching graphs (wb-edu, wikipedia) shift time into augmentation + grafting.");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig6_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            reps: 1,
            threads: 2,
            out_dir: std::env::temp_dir().join("graft_bench_fig6_test"),
            ..Config::default()
        };
        fig6(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig6_breakdown.csv").exists());
    }
}
