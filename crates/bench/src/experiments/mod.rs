//! The experiments, one per paper table/figure. See DESIGN.md §6 for the
//! index mapping experiment ids to paper content.

mod ablation;
mod anatomy;
mod dist;
mod dynbench;
mod fig1;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod loadgen;
mod perf_gate;
mod scaling;
mod stress;
mod tables;
mod variability;

pub use ablation::{ablation_alpha, ablation_init, ablation_pr_order};
pub use anatomy::anatomy;
pub use dist::dist;
pub use dynbench::{dynbench, DYNBENCH_FILE, DYNBENCH_SCHEMA, DYNBENCH_SPEEDUP_MIN};
pub use fig1::fig1;
pub use fig3::fig3;
pub use fig4::fig4;
pub use fig5::fig5;
pub use fig6::fig6;
pub use fig7::fig7;
pub use fig8::fig8;
pub use fig9::fig9;
pub use loadgen::{loadgen, LoadgenOptions, LOADGEN_FILE, LOADGEN_SCHEMA, PIPELINE_SPEEDUP_MIN};
pub use perf_gate::{perf_gate, BENCH_FILE, BENCH_SCHEMA};
pub use scaling::{scaling, SCALE_RATIO, SCALING_FILE, SCALING_SCHEMA, THREAD_COUNTS};
pub use stress::{stress, StressOptions};
pub use tables::{table1, table2};
pub use variability::variability;

use crate::Config;
use graft_core::Matching;
use graft_gen::suite::SuiteEntry;
use graft_graph::BipartiteCsr;

/// A suite instance materialized at the configured scale, with its
/// initial matching precomputed (shared by all algorithms, as the paper
/// shares the Karp-Sipser matching across solvers).
pub struct Instance {
    /// The suite registry entry.
    pub entry: SuiteEntry,
    /// The generated graph.
    pub graph: BipartiteCsr,
    /// Initial matching from the configured initializer (fixed seed).
    pub init: Matching,
}

/// Builds one suite instance.
pub fn load_instance(entry: SuiteEntry, cfg: &Config) -> Instance {
    let graph = entry.build(cfg.scale);
    let init = cfg.init.run(&graph, 0xC0FFEE);
    Instance { entry, graph, init }
}

/// Builds the whole suite at the configured scale.
pub fn load_suite(cfg: &Config) -> Vec<Instance> {
    graft_gen::suite::suite()
        .into_iter()
        .map(|e| load_instance(e, cfg))
        .collect()
}

/// Runs every experiment in paper order.
pub fn run_all(cfg: &Config) -> std::io::Result<()> {
    table1(cfg)?;
    table2(cfg)?;
    fig1(cfg)?;
    fig3(cfg)?;
    fig4(cfg)?;
    fig5(cfg)?;
    fig6(cfg)?;
    fig7(cfg)?;
    fig8(cfg)?;
    fig9(cfg)?;
    variability(cfg)?;
    ablation_alpha(cfg)?;
    ablation_init(cfg)?;
    ablation_pr_order(cfg)?;
    dist(cfg)?;
    anatomy(cfg)?;
    Ok(())
}

/// Dispatches one experiment by name; returns false for unknown names.
pub fn run_by_name(name: &str, cfg: &Config) -> std::io::Result<bool> {
    match name {
        "all" => run_all(cfg)?,
        "table1" => table1(cfg)?,
        "table2" => table2(cfg)?,
        "fig1" => fig1(cfg)?,
        "fig3" => fig3(cfg)?,
        "fig4" => fig4(cfg)?,
        "fig5" => fig5(cfg)?,
        "fig6" => fig6(cfg)?,
        "fig7" => fig7(cfg)?,
        "fig8" => fig8(cfg)?,
        "fig9" => fig9(cfg)?,
        "variability" => variability(cfg)?,
        "ablation_alpha" => ablation_alpha(cfg)?,
        "ablation_init" => ablation_init(cfg)?,
        "ablation_pr_order" => ablation_pr_order(cfg)?,
        "dist" => dist(cfg)?,
        "anatomy" => anatomy(cfg)?,
        "perf-gate" => perf_gate(cfg)?,
        "scaling" => scaling(cfg)?,
        "stress" => stress(cfg, &StressOptions::default())?,
        "dynbench" => dynbench(cfg)?,
        "loadgen" => loadgen(cfg, &LoadgenOptions::default())?,
        _ => return Ok(false),
    }
    Ok(true)
}
