//! Fig. 1 — serial algorithm comparison on one graph per class:
//! (a) edges traversed, (b) phases, (c) average augmenting path length.

use super::load_instance;
use crate::report::{f2, Report};
use crate::Config;
use graft_core::{solve_from, Algorithm, SolveOptions};
use graft_gen::suite::fig1_graphs;

/// Runs the six serial algorithms (SS-DFS, SS-BFS, PF, HK, MS-BFS,
/// MS-BFS-Graft) on the kkt_power / cit-Patents / wikipedia analogs and
/// reports the three hardware-independent metrics of Fig. 1. Edge counts
/// are also normalized to MS-BFS-Graft, matching the paper's bars.
pub fn fig1(cfg: &Config) -> std::io::Result<()> {
    let opts = SolveOptions::default();
    let mut r = Report::new(
        "fig1_serial_comparison",
        "Fig. 1 — serial algorithms: traversed edges / phases / avg augmenting path length",
        &[
            "graph",
            "algorithm",
            "edges",
            "edges/graft",
            "phases",
            "avg |P|",
            "|M|",
        ],
    );
    for entry in fig1_graphs() {
        let inst = load_instance(entry, cfg);
        let mut results = Vec::new();
        for alg in Algorithm::SERIAL {
            let out = solve_from(&inst.graph, inst.init.clone(), alg, &opts);
            results.push((alg, out));
        }
        let graft_edges = results
            .iter()
            .find(|(a, _)| *a == Algorithm::MsBfsGraft)
            .map(|(_, o)| o.stats.edges_traversed.max(1))
            .unwrap();
        for (alg, out) in &results {
            r.row(vec![
                inst.entry.name.into(),
                alg.name().into(),
                out.stats.edges_traversed.to_string(),
                f2(out.stats.edges_traversed as f64 / graft_edges as f64),
                out.stats.phases.to_string(),
                f2(out.stats.avg_augmenting_path_len()),
                out.matching.cardinality().to_string(),
            ]);
        }
    }
    r.note("paper expectation: MS-BFS-Graft traverses the fewest edges overall; SS algorithms win on low-matching graphs only via the discard rule; HK needs more phases than MS-BFS; DFS-based algorithms find longer augmenting paths (Fig. 1c).");
    r.emit(&cfg.out_dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_gen::Scale;

    #[test]
    fn fig1_runs_at_tiny_scale() {
        let cfg = Config {
            scale: Scale::Tiny,
            out_dir: std::env::temp_dir().join("graft_bench_fig1_test"),
            ..Config::default()
        };
        fig1(&cfg).unwrap();
        assert!(cfg.out_dir.join("fig1_serial_comparison.csv").exists());
    }
}
