//! Criterion bench for Fig. 5: strong scaling of parallel MS-BFS-Graft
//! across thread counts on one analog per class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graft_core::{init::random_greedy, solve_from, Algorithm, SolveOptions};
use graft_gen::{suite::fig1_graphs, Scale};

fn bench(c: &mut Criterion) {
    let t_max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= t_max {
        threads.push(threads.last().unwrap() * 2);
    }
    let mut group = c.benchmark_group("fig5_scaling");
    group.sample_size(10);
    for entry in fig1_graphs() {
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        for &t in &threads {
            let opts = SolveOptions {
                threads: t,
                ..SolveOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(format!("t{t}"), entry.name), &g, |b, g| {
                b.iter(|| {
                    let out = solve_from(g, m0.clone(), Algorithm::MsBfsGraftParallel, &opts);
                    std::hint::black_box(out.matching.cardinality())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
