//! Criterion bench for Fig. 3: MS-BFS-Graft vs. Pothen-Fan vs.
//! push-relabel, serial and parallel, on one analog per class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graft_core::{init::random_greedy, solve_from, Algorithm, SolveOptions};
use graft_gen::{suite::fig1_graphs, Scale};

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let serial = SolveOptions::default();
    let parallel = SolveOptions {
        threads,
        ..SolveOptions::default()
    };
    let mut group = c.benchmark_group("fig3_relative");
    group.sample_size(10);
    for entry in fig1_graphs() {
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        let cases = [
            (Algorithm::MsBfsGraft, &serial),
            (Algorithm::PothenFan, &serial),
            (Algorithm::PushRelabel, &serial),
            (Algorithm::MsBfsGraftParallel, &parallel),
            (Algorithm::PothenFanParallel, &parallel),
            (Algorithm::PushRelabelParallel, &parallel),
        ];
        for (alg, opts) in cases {
            group.bench_with_input(BenchmarkId::new(alg.name(), entry.name), &g, |b, g| {
                b.iter(|| {
                    let out = solve_from(g, m0.clone(), alg, opts);
                    std::hint::black_box(out.matching.cardinality())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
