//! Criterion bench for Fig. 1: the six serial algorithms on one analog
//! per graph class (kkt_power, cit-Patents, wikipedia).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graft_core::{init::random_greedy, solve_from, Algorithm, SolveOptions};
use graft_gen::{suite::fig1_graphs, Scale};

fn bench(c: &mut Criterion) {
    let opts = SolveOptions::default();
    let mut group = c.benchmark_group("fig1_serial");
    group.sample_size(10);
    for entry in fig1_graphs() {
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        for alg in Algorithm::SERIAL {
            group.bench_with_input(BenchmarkId::new(alg.name(), entry.name), &g, |b, g| {
                b.iter(|| {
                    let out = solve_from(g, m0.clone(), alg, &opts);
                    std::hint::black_box(out.matching.cardinality())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
