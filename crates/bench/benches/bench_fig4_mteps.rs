//! Criterion bench for Fig. 4: search rate (edge throughput) of parallel
//! MS-BFS-Graft vs. parallel Pothen-Fan. Criterion's throughput mode
//! reports elements/second where an element is one traversed edge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graft_core::{init::random_greedy, solve_from, Algorithm, SolveOptions};
use graft_gen::{suite::by_name, Scale};

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let opts = SolveOptions {
        threads,
        ..SolveOptions::default()
    };
    let mut group = c.benchmark_group("fig4_mteps");
    group.sample_size(10);
    for name in ["kkt_power", "coPapersDBLP", "wikipedia"] {
        let entry = by_name(name).expect("suite graph");
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        for alg in [Algorithm::MsBfsGraftParallel, Algorithm::PothenFanParallel] {
            // Calibrate throughput on the edges the algorithm actually
            // traverses (the paper's TEPS accounting).
            let probe = solve_from(&g, m0.clone(), alg, &opts);
            group.throughput(Throughput::Elements(probe.stats.edges_traversed.max(1)));
            group.bench_with_input(BenchmarkId::new(alg.name(), name), &g, |b, g| {
                b.iter(|| {
                    let out = solve_from(g, m0.clone(), alg, &opts);
                    std::hint::black_box(out.stats.edges_traversed)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
