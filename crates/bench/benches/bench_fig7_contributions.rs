//! Criterion bench for Fig. 7: plain MS-BFS vs. +direction-optimization
//! vs. +grafting (the paper's two-technique ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graft_core::{init::random_greedy, ms_bfs_graft_parallel, MsBfsOptions};
use graft_gen::suite::GraphClass;
use graft_gen::{suite::suite, Scale};

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let configs: [(&str, MsBfsOptions); 3] = [
        ("plain", MsBfsOptions::plain()),
        ("dirOpt", MsBfsOptions::dir_opt_only()),
        ("graft", MsBfsOptions::graft()),
    ];
    let mut group = c.benchmark_group("fig7_contributions");
    group.sample_size(10);
    // One scientific and one low-matching analog: the classes where
    // grafting helps least and most.
    for entry in suite()
        .into_iter()
        .filter(|e| e.name == "kkt_power" || e.class == GraphClass::Web)
        .take(3)
    {
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        for (label, opts) in configs {
            group.bench_with_input(BenchmarkId::new(label, entry.name), &g, |b, g| {
                b.iter(|| {
                    let out = ms_bfs_graft_parallel(g, m0.clone(), &opts, threads);
                    std::hint::black_box(out.matching.cardinality())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
