//! Micro-benchmarks of the building blocks: CSR construction, the
//! Karp-Sipser and greedy initializers, a single alternating-BFS solve,
//! and the König verification sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use graft_core::frontier::{LocalBuffer, SharedQueue};
use graft_core::init::{greedy_maximal, karp_sipser, parallel_greedy_maximal};
use graft_core::verify::koenig_cover;
use graft_core::{hopcroft_karp, Matching};
use graft_gen::{erdos_renyi, preferential_attachment};
use graft_graph::BipartiteCsr;
use rayon::prelude::*;

fn bench(c: &mut Criterion) {
    let n = 20_000;
    let g = erdos_renyi(n, n, 6 * n, 11);
    let pa = preferential_attachment(n, n, 4, 0.6, 13);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    group.bench_function("csr_construction", |b| {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        b.iter(|| {
            let h = BipartiteCsr::from_edges(n, n, &edges);
            std::hint::black_box(h.num_edges())
        })
    });

    group.bench_function("karp_sipser_init", |b| {
        b.iter(|| std::hint::black_box(karp_sipser(&g, 5).cardinality()))
    });

    group.bench_function("greedy_init", |b| {
        b.iter(|| std::hint::black_box(greedy_maximal(&g).cardinality()))
    });

    group.bench_function("parallel_greedy_init", |b| {
        b.iter(|| std::hint::black_box(parallel_greedy_maximal(&g).cardinality()))
    });

    group.bench_function("hopcroft_karp_scale_free", |b| {
        let m0 = karp_sipser(&pa, 5);
        b.iter(|| std::hint::black_box(hopcroft_karp(&pa, m0.clone()).matching.cardinality()))
    });

    group.bench_function("koenig_verify", |b| {
        let m = hopcroft_karp(&g, Matching::for_graph(&g)).matching;
        b.iter(|| std::hint::black_box(koenig_cover(&g, &m).size()))
    });

    // Frontier collection schemes (DESIGN.md §3, "Frontier queues"): the
    // rayon fold/reduce idiom the engines use vs. the paper's explicit
    // private-buffer + shared-queue scheme.
    let frontier_n = 200_000u32;
    group.bench_function("frontier_fold_reduce", |b| {
        b.iter(|| {
            let v: Vec<u32> = (0..frontier_n)
                .into_par_iter()
                .fold(Vec::new, |mut acc, x| {
                    acc.push(x);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            std::hint::black_box(v.len())
        })
    });
    group.bench_function("frontier_shared_queue", |b| {
        let q = SharedQueue::with_capacity(frontier_n as usize);
        b.iter(|| {
            (0..frontier_n)
                .into_par_iter()
                .for_each_init(|| LocalBuffer::new(&q), |buf, x| buf.push(x));
            std::hint::black_box(q.drain().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
