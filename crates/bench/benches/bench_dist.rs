//! Criterion bench for the distributed (BSP-simulated) MS-BFS-Graft
//! engine across rank counts — measures the simulation overhead of the
//! paper's future-work algorithm against the shared-memory engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graft_core::{init::random_greedy, ms_bfs_graft_parallel, MsBfsOptions};
use graft_dist::distributed_ms_bfs_graft;
use graft_gen::{suite::by_name, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_engine");
    group.sample_size(10);
    for name in ["cit-Patents", "wikipedia"] {
        let entry = by_name(name).expect("suite graph");
        let g = entry.build(Scale::Tiny);
        let m0 = random_greedy(&g, 0xC0FFEE);
        group.bench_with_input(BenchmarkId::new("shared", name), &g, |b, g| {
            b.iter(|| {
                let out = ms_bfs_graft_parallel(g, m0.clone(), &MsBfsOptions::graft(), 0);
                std::hint::black_box(out.matching.cardinality())
            })
        });
        for ranks in [1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("bsp_p{ranks}"), name),
                &g,
                |b, g| {
                    b.iter(|| {
                        let out = distributed_ms_bfs_graft(g, m0.clone(), ranks);
                        std::hint::black_box(out.matching.cardinality())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
