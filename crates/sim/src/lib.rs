//! Deterministic simulation substrate for the graft service stack.
//!
//! The service layer (`graft-svc`) talks to time, the network, and the
//! disk only through the traits defined here:
//!
//! * [`Clock`] — `now()` / `sleep()` / deadline arithmetic. [`WallClock`]
//!   is the production backend (plain `Instant::now` + `thread::sleep`);
//!   [`SimClock`] is a virtual clock whose sleeps advance a priority
//!   queue of timers instead of blocking, so a test that "waits" 30
//!   seconds completes in microseconds of wall time.
//! * [`Transport`] — `bind()` / `connect()` yielding trait-object
//!   connections. [`TcpTransport`] wraps `std::net`; [`SimNet`] is a
//!   seeded in-process network with configurable latency, partitions,
//!   connection drops and duplicate delivery, all derived from the same
//!   splitmix64 discipline as `svc::FaultPlan`.
//! * [`Disk`] — `create()` / `open_append()` / `rename()` / `sync_dir()`
//!   yielding trait-object file handles. [`RealDisk`] wraps `std::fs`;
//!   [`SimDisk`] is an in-memory filesystem with seeded torn writes,
//!   rename-without-dir-fsync loss, injected I/O errors, and crash-point
//!   enumeration for exhaustive recovery testing.
//!
//! The design follows the FoundationDB simulation philosophy: the
//! program under test runs unmodified real threads, but every source of
//! nondeterminism it *observes* (time, the network, injected faults) is
//! derived from one seed, so a failing schedule replays from that seed.
//!
//! This crate is dependency-free and knows nothing about matching or the
//! service protocol; `graft-svc` layers the scenario runner on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod disk;
mod event_log;
mod net;
mod rng;
mod transport;

pub use clock::{Clock, SimClock, TimeHold, WallClock};
pub use disk::{disk_path, Disk, DiskFile, RealDisk, SimDisk, SimDiskConfig};
pub use event_log::EventLog;
pub use net::{SimNet, SimNetConfig};
pub use rng::mix64;
pub use transport::{Conn, Listener, TcpTransport, Transport};
