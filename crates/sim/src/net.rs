//! An in-process network: byte pipes behind the [`Transport`] trait,
//! with seeded connect latency, connection drops, duplicate delivery
//! and explicit partitions.

use crate::clock::Clock;
use crate::rng::mix64;
use crate::transport::{Conn, Listener, Transport};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Domain-separation tags for the per-connection fault rolls, so one
/// seed yields independent latency / drop / duplicate streams — the
/// same discipline `svc::FaultPlan` applies per fault site.
const TAG_LATENCY: u64 = 0x4c41_5400_0000_0001;
const TAG_DROP: u64 = 0x4452_4f50_0000_0002;
const TAG_DUP: u64 = 0x4455_5000_0000_0003;

/// Knobs of the simulated network, all derived from one seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimNetConfig {
    /// Seed for every per-connection decision.
    pub seed: u64,
    /// Upper bound on seeded connect latency (virtual milliseconds);
    /// `0` disables latency injection.
    pub max_connect_latency_ms: u64,
    /// Percentage of connections that are severed after a seeded byte
    /// budget (both directions count), emulating a mid-stream RST.
    pub drop_rate_pct: u8,
    /// Percentage of connections whose first written chunk is delivered
    /// twice. This deliberately desyncs a line protocol — scenario runs
    /// keep it at 0 and only transport-level tests enable it.
    pub dup_rate_pct: u8,
}

/// One direction of a connection: a byte queue plus a closed flag.
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

struct Pipe {
    buf: Mutex<PipeBuf>,
    cv: Condvar,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            buf: Mutex::new(PipeBuf {
                data: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn close(&self) {
        lock_ok(&self.buf).closed = true;
        self.cv.notify_all();
    }

    fn push(&self, bytes: &[u8]) -> io::Result<()> {
        let mut b = lock_ok(&self.buf);
        if b.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim pipe closed"));
        }
        b.data.extend(bytes.iter().copied());
        self.cv.notify_all();
        Ok(())
    }

    fn read_into(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut b = lock_ok(&self.buf);
        loop {
            if !b.data.is_empty() {
                let n = out.len().min(b.data.len());
                for slot in out.iter_mut().take(n) {
                    *slot = b.data.pop_front().expect("sized above");
                }
                return Ok(n);
            }
            if b.closed {
                return Ok(0); // EOF, like a TCP FIN/RST with no data left
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "sim read timed out",
                        ));
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(b, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    b = guard;
                }
                None => b = self.cv.wait(b).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fault state shared by both endpoints of one connection.
struct LinkFaults {
    /// Remaining byte budget before the link is severed; `None` = never.
    budget: Mutex<Option<u64>>,
    /// Whether the next written chunk should be delivered twice.
    dup_next: Mutex<bool>,
    c2s: Arc<Pipe>,
    s2c: Arc<Pipe>,
}

impl LinkFaults {
    fn sever(&self) {
        self.c2s.close();
        self.s2c.close();
    }
}

/// Per-endpoint state: which pipe we read, which we write, socket-ish
/// options, and the link faults we share with the peer.
struct EndShared {
    read_timeout: Mutex<Option<Duration>>,
    peer: SocketAddr,
    link: Arc<LinkFaults>,
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl Drop for EndShared {
    fn drop(&mut self) {
        // Last handle on this endpoint gone: FIN our outbound direction
        // so the peer's reads see EOF, exactly like dropping a TcpStream.
        self.tx.close();
    }
}

/// One endpoint of a simulated connection. Clones share the endpoint
/// (same stream position, same timeouts), like `TcpStream::try_clone`.
struct SimConn {
    end: Arc<EndShared>,
}

impl Read for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let timeout = *lock_ok(&self.end.read_timeout);
        self.end.rx.read_into(buf, timeout)
    }
}

impl Write for SimConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut budget = lock_ok(&self.end.link.budget);
        if let Some(left) = *budget {
            if left == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "sim link severed",
                ));
            }
            if (left as usize) < buf.len() {
                // Deliver the budgeted prefix, then kill the link: the
                // peer sees a truncated stream and EOF, we report success
                // for bytes "handed to the kernel" — like a real RST
                // racing a send.
                self.end.tx.push(&buf[..left as usize]).ok();
                *budget = Some(0);
                drop(budget);
                self.end.link.sever();
                return Ok(buf.len());
            }
            *budget = Some(left - buf.len() as u64);
        }
        drop(budget);
        let dup = std::mem::take(&mut *lock_ok(&self.end.link.dup_next));
        self.end.tx.push(buf)?;
        if dup {
            self.end.tx.push(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for SimConn {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(SimConn {
            end: Arc::clone(&self.end),
        }))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.end.link.sever();
        Ok(())
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        *lock_ok(&self.end.read_timeout) = d;
        Ok(())
    }

    fn set_write_timeout(&self, _d: Option<Duration>) -> io::Result<()> {
        Ok(()) // writes to an in-memory pipe cannot stall
    }

    fn set_nodelay(&self, _on: bool) -> io::Result<()> {
        Ok(())
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.end.peer)
    }
}

/// Accept queue of one bound listener.
struct AcceptQueue {
    q: Mutex<AcceptState>,
    cv: Condvar,
}

struct AcceptState {
    pending: VecDeque<SimConn>,
    closed: bool,
}

struct SimListener {
    addr: SocketAddr,
    queue: Arc<AcceptQueue>,
}

impl Listener for SimListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let mut st = lock_ok(&self.queue.q);
        loop {
            if let Some(conn) = st.pending.pop_front() {
                return Ok(Box::new(conn));
            }
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "sim listener closed",
                ));
            }
            st = self.queue.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.queue.q);
        st.closed = true;
        self.queue.cv.notify_all();
    }
}

struct NetState {
    listeners: HashMap<SocketAddr, Arc<AcceptQueue>>,
    links: Vec<Weak<LinkFaults>>,
    next_port: u16,
    connects: u64,
    partitioned: bool,
}

/// The simulated network: a seeded, partitionable in-process fabric.
///
/// All endpoints live in one process; addresses are fabricated
/// loopback `SocketAddr`s handed out at `bind` time. Per-connection
/// latency/drop/duplicate decisions come from `mix64(seed ^ tag ^ n)`
/// where `n` is the global connect ordinal — identical seed, identical
/// connect sequence ⇒ identical fault schedule.
pub struct SimNet {
    clock: Arc<dyn Clock>,
    cfg: SimNetConfig,
    state: Mutex<NetState>,
}

impl SimNet {
    /// A simulated network whose injected latency is spent on `clock`.
    pub fn new(cfg: SimNetConfig, clock: Arc<dyn Clock>) -> Arc<SimNet> {
        Arc::new(SimNet {
            clock,
            cfg,
            state: Mutex::new(NetState {
                listeners: HashMap::new(),
                links: Vec::new(),
                next_port: 40000,
                connects: 0,
                partitioned: false,
            }),
        })
    }

    /// Cuts the network: new connects are refused and every currently
    /// open link is severed (readers see EOF, writers get broken pipes).
    pub fn partition(&self) {
        let mut st = lock_ok(&self.state);
        st.partitioned = true;
        let links = std::mem::take(&mut st.links);
        drop(st);
        for l in &links {
            if let Some(l) = l.upgrade() {
                l.sever();
            }
        }
    }

    /// Heals a partition: new connects succeed again. (Severed links
    /// stay dead — reconnect, as over a real network.)
    pub fn heal(&self) {
        lock_ok(&self.state).partitioned = false;
    }

    /// Whether the network is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        lock_ok(&self.state).partitioned
    }
}

impl Transport for SimNet {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        let requested: SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let mut st = lock_ok(&self.state);
        let mut bound = requested;
        if bound.port() == 0 {
            bound.set_port(st.next_port);
            st.next_port += 1;
        } else if st.listeners.contains_key(&bound) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("sim address {bound} in use"),
            ));
        }
        let queue = Arc::new(AcceptQueue {
            q: Mutex::new(AcceptState {
                pending: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        st.listeners.insert(bound, Arc::clone(&queue));
        Ok(Box::new(SimListener { addr: bound, queue }))
    }

    fn connect(&self, addr: &str, _timeout: Option<Duration>) -> io::Result<Box<dyn Conn>> {
        let target: SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let (queue, n, client_port) = {
            let mut st = lock_ok(&self.state);
            if st.partitioned {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "sim network partitioned",
                ));
            }
            let queue = st.listeners.get(&target).cloned().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("nothing listening on sim address {target}"),
                )
            })?;
            let n = st.connects;
            st.connects += 1;
            (queue, n, 50000 + (n % 15000) as u16)
        };

        // Seeded connect latency, spent on the (possibly virtual) clock
        // outside any lock. The ordinal is spread by a golden-ratio
        // multiply first: xor-ing small ordinals straight into the seed
        // would make nearby seeds mere permutations of each other.
        let ord = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if self.cfg.max_connect_latency_ms > 0 {
            let ms =
                mix64(self.cfg.seed ^ TAG_LATENCY ^ ord) % (self.cfg.max_connect_latency_ms + 1);
            if ms > 0 {
                self.clock.sleep(Duration::from_millis(ms));
            }
        }

        let c2s = Pipe::new();
        let s2c = Pipe::new();
        let budget =
            if (mix64(self.cfg.seed ^ TAG_DROP ^ ord) % 100) < self.cfg.drop_rate_pct as u64 {
                // Enough budget to let a connection do *some* work before
                // dying mid-stream.
                Some(64 + mix64(self.cfg.seed ^ TAG_DROP ^ ord ^ 0xff) % 512)
            } else {
                None
            };
        let dup = (mix64(self.cfg.seed ^ TAG_DUP ^ ord) % 100) < self.cfg.dup_rate_pct as u64;
        let link = Arc::new(LinkFaults {
            budget: Mutex::new(budget),
            dup_next: Mutex::new(dup),
            c2s: Arc::clone(&c2s),
            s2c: Arc::clone(&s2c),
        });
        {
            let mut st = lock_ok(&self.state);
            st.links.retain(|w| w.strong_count() > 0);
            st.links.push(Arc::downgrade(&link));
        }

        let client_addr = SocketAddr::new(target.ip(), client_port);
        let client = SimConn {
            end: Arc::new(EndShared {
                read_timeout: Mutex::new(None),
                peer: target,
                link: Arc::clone(&link),
                rx: Arc::clone(&s2c),
                tx: Arc::clone(&c2s),
            }),
        };
        let server = SimConn {
            end: Arc::new(EndShared {
                read_timeout: Mutex::new(None),
                peer: client_addr,
                link,
                rx: c2s,
                tx: s2c,
            }),
        };
        {
            let mut st = lock_ok(&queue.q);
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "sim listener closed",
                ));
            }
            st.pending.push_back(server);
            queue.cv.notify_all();
        }
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::io::{BufRead, BufReader};

    fn net(cfg: SimNetConfig) -> (Arc<SimNet>, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        (SimNet::new(cfg, clock.clone() as Arc<dyn Clock>), clock)
    }

    /// Echoes lines on `conns` sequential connections, then drops the
    /// listener (closing it) and returns.
    fn echo_server(listener: Box<dyn Listener>, conns: usize) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            for _ in 0..conns {
                let Ok(conn) = listener.accept_conn() else {
                    return;
                };
                let mut reader = BufReader::new(conn.try_clone_conn().unwrap());
                let mut w = conn;
                let mut line = String::new();
                while {
                    line.clear();
                    reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false)
                } {
                    if w.write_all(format!("echo {line}").as_bytes()).is_err() {
                        break;
                    }
                }
            }
        })
    }

    #[test]
    fn sim_net_round_trips_lines_in_process() {
        let (net, _clock) = net(SimNetConfig::default());
        let listener = net.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = echo_server(listener, 1);
        let mut c = net.connect(&addr, None).unwrap();
        c.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(c.try_clone_conn().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "echo hello\n");
        drop(c);
        drop(reader);
        drop(net); // listener map still holds the queue; closing is via handle drop
        h.join().unwrap();
    }

    #[test]
    fn partition_refuses_connects_and_severs_live_links_until_healed() {
        let (net, _clock) = net(SimNetConfig::default());
        let listener = net.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = echo_server(listener, 2);
        let mut c = net.connect(&addr, None).unwrap();
        c.write_all(b"one\n").unwrap();
        let mut reader = BufReader::new(c.try_clone_conn().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "echo one\n");

        net.partition();
        // Existing link is dead: reads drain to EOF, writes break.
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
        assert!(c.write_all(b"two\n").is_err());
        // New connects are refused.
        let err = match net.connect(&addr, None) {
            Ok(_) => panic!("connect during partition must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);

        net.heal();
        let mut c2 = net.connect(&addr, None).unwrap();
        c2.write_all(b"three\n").unwrap();
        let mut r2 = BufReader::new(c2.try_clone_conn().unwrap());
        reply.clear();
        r2.read_line(&mut reply).unwrap();
        assert_eq!(reply, "echo three\n");
        drop((c, reader, c2, r2, net));
        h.join().unwrap();
    }

    #[test]
    fn seeded_drop_severs_the_link_after_a_byte_budget() {
        // 100% drop rate: every connection carries a finite byte budget.
        let (net, _clock) = net(SimNetConfig {
            seed: 7,
            drop_rate_pct: 100,
            ..SimNetConfig::default()
        });
        let listener = net.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = echo_server(listener, 1);
        let mut c = net.connect(&addr, None).unwrap();
        let mut reader = BufReader::new(c.try_clone_conn().unwrap());
        let mut line = String::new();
        // Pump until the link dies; budget is 64..=575 bytes round trip,
        // so this must terminate well within the iteration bound.
        let mut died = false;
        for _ in 0..2000 {
            if c.write_all(b"0123456789abcdef\n").is_err() {
                died = true;
                break;
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    died = true;
                    break;
                }
                Ok(_) => {}
            }
        }
        assert!(died, "100% drop rate never severed the link");
        drop((c, reader, net));
        h.join().unwrap();
    }

    #[test]
    fn duplicate_delivery_repeats_the_first_chunk() {
        let (net, _clock) = net(SimNetConfig {
            seed: 1,
            dup_rate_pct: 100,
            ..SimNetConfig::default()
        });
        let listener = net.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut c = net.connect(&addr, None).unwrap();
        c.write_all(b"ping\n").unwrap();
        let server = listener.accept_conn().unwrap();
        let mut reader = BufReader::new(server);
        let mut first = String::new();
        let mut second = String::new();
        reader.read_line(&mut first).unwrap();
        reader.read_line(&mut second).unwrap();
        assert_eq!(first, "ping\n");
        assert_eq!(second, "ping\n");
        // Only the *first* chunk duplicates.
        c.write_all(b"pong\n").unwrap();
        drop(c);
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, "pong\n");
    }

    #[test]
    fn connect_latency_is_virtual_and_seed_deterministic() {
        let run = |seed: u64| {
            let clock = Arc::new(SimClock::new());
            let net = SimNet::new(
                SimNetConfig {
                    seed,
                    max_connect_latency_ms: 50,
                    ..SimNetConfig::default()
                },
                clock.clone() as Arc<dyn Clock>,
            );
            let _listener = net.bind("127.0.0.1:0").unwrap();
            let addr = "127.0.0.1:40000";
            let wall = Instant::now();
            for _ in 0..8 {
                let _ = net.connect(addr, None).unwrap();
            }
            assert!(wall.elapsed() < Duration::from_secs(1), "latency was real");
            clock.elapsed()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must spend identical virtual latency");
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }
}
