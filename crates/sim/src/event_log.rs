//! A shared append-only log of scenario events, compared byte-for-byte
//! across replays of the same seed.

use std::sync::Mutex;

/// Thread-safe append-only event log.
///
/// A scenario records every request it sends and every reply it reads;
/// two runs of the same seed must produce identical [`EventLog::dump`]s
/// — that equality *is* the determinism contract, and a dump is also
/// the artifact a failing run prints for offline diffing.
#[derive(Debug, Default)]
pub struct EventLog {
    lines: Mutex<Vec<String>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event line (no trailing newline needed).
    pub fn push(&self, line: impl Into<String>) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.into());
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole log as one newline-separated string.
    pub fn dump(&self) -> String {
        let lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for l in lines.iter() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order_and_dumps_with_newlines() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.push("a");
        log.push(String::from("b"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dump(), "a\nb\n");
    }
}
