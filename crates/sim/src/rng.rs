//! The one mixing function behind every seeded decision in the harness.

/// splitmix64 finalizer — the same discipline `svc::FaultPlan` uses, so a
/// single scenario seed deterministically derives every fault, latency and
/// delivery decision across the stack.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_matches_reference_vectors() {
        // First output of splitmix64 seeded with 0 (Vigna's reference
        // implementation), plus sanity that nearby seeds decorrelate.
        assert_eq!(mix64(0), 0xe220a8397b1dcdaf);
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(2), mix64(3));
    }
}
