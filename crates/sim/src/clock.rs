//! Time as a capability: `Clock` is the only way the service observes or
//! spends time, so tests can swap wall time for a virtual timeline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The time capability handed to every component of the service stack.
///
/// `Instant` stays the universal timestamp type — a virtual clock picks a
/// real base instant at creation and reports `base + virtual_elapsed`, so
/// deadline arithmetic (`Option<Instant>` in `MsBfsOptions`, drain
/// budgets, retry timeouts) is unchanged between backends.
pub trait Clock: Send + Sync {
    /// The current (possibly virtual) time.
    fn now(&self) -> Instant;

    /// Blocks the calling thread for `d` of *this clock's* time. Under
    /// [`WallClock`] this is `thread::sleep`; under [`SimClock`] it
    /// registers a timer and returns as soon as virtual time reaches it,
    /// usually within microseconds of wall time.
    fn sleep(&self, d: Duration);

    /// Whether this clock runs on virtual time. Callers use this to skip
    /// work that only makes sense against a wall clock (e.g. leaking a
    /// `'static` hook into the core engines is only worth it when the
    /// deadline checks must see virtual time).
    fn is_virtual(&self) -> bool {
        false
    }

    /// Bounds one *real* condvar-wait slice for a caller that polls a
    /// condition with `remaining` of this clock's time left on its
    /// deadline. A wall clock waits the full remainder (wakeups come
    /// from notifications); a virtual clock returns a short real slice
    /// so the caller re-reads `now()` — which other threads advance —
    /// without blocking the timeline on a real-time wait.
    fn wait_slice(&self, remaining: Duration) -> Duration {
        remaining
    }
}

/// Production clock: real time, real sleeps.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d)
    }
}

/// How long a virtual-clock caller may block on a real condvar before
/// re-checking the virtual timeline. Purely a liveness bound — wakeups
/// are normally delivered by `notify_all` — so it only has to be short
/// enough that a missed edge cannot stall a test noticeably.
const SIM_WAIT_SLICE: Duration = Duration::from_millis(5);

struct SimState {
    /// Virtual time elapsed since `base`.
    elapsed: Duration,
    /// Pending wake-ups: `(wake_offset, timer_id)` min-heap. Entries are
    /// removed by whichever sleeper advances time past them; ids break
    /// ties in registration order so equal deadlines stay deterministic.
    timers: BinaryHeap<Reverse<(Duration, u64)>>,
    next_id: u64,
}

/// A deterministic virtual clock.
///
/// Sleeping registers a timer in a priority queue; the earliest pending
/// sleeper *advances virtual time to its own wake-up* and returns
/// immediately, and everyone else blocks on a condvar until an advance
/// carries the timeline past their wake-up. There is no wall-clock
/// dependence: a 30-second drain test finishes in microseconds.
///
/// Because the program under test runs real OS threads (not a
/// cooperative scheduler), the clock cannot know whether a thread that
/// has not called `sleep` *yet* is about to — so the earliest sleeper
/// advances without waiting for stragglers. Two consequences, both
/// deliberate: sleeps that race on the clock's lock serialize (their
/// durations accumulate rather than overlap), and determinism of
/// *timestamps* is guaranteed only when callers keep at most one thread
/// sleeping at a time — which is exactly how the scenario runner drives
/// the service (one sequential client; one worker). Event *content*
/// stays deterministic regardless.
///
/// `advance()` lets a non-sleeping driver (a scenario runner, a paced
/// load generator) push the timeline forward explicitly; it releases
/// every parked sleeper whose deadline the jump crosses.
pub struct SimClock {
    base: Instant,
    state: Mutex<SimState>,
    cv: Condvar,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClock {
    /// A virtual clock starting "now" (the base instant is only an
    /// anchor so `now()` can return real `Instant` values).
    pub fn new() -> Self {
        SimClock {
            base: Instant::now(),
            state: Mutex::new(SimState {
                elapsed: Duration::ZERO,
                timers: BinaryHeap::new(),
                next_id: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Virtual time elapsed since the clock was created.
    pub fn elapsed(&self) -> Duration {
        lock_ok(&self.state).elapsed
    }

    /// Advances virtual time by `d` from the outside (no timer needed),
    /// waking every sleeper whose deadline the jump crosses.
    pub fn advance(&self, d: Duration) {
        let mut st = lock_ok(&self.state);
        st.elapsed += d;
        while matches!(st.timers.peek(), Some(&Reverse((w, _))) if w <= st.elapsed) {
            st.timers.pop();
        }
        self.cv.notify_all();
    }

    /// Pins the timeline: registers a timer at `now + d` *without*
    /// sleeping on it, so every sleeper with a later deadline parks
    /// (it is not the earliest, so it cannot self-advance) until the
    /// returned [`TimeHold`] is dropped. Sleeps shorter than `d` still
    /// self-advance underneath the hold.
    ///
    /// This is how a scenario keeps a job genuinely *in flight*: without
    /// a hold, a worker's virtual sleep completes within microseconds of
    /// wall time, and "shut down while a job is running" becomes a
    /// thread race instead of a scripted state.
    pub fn hold(self: &Arc<Self>, d: Duration) -> TimeHold {
        let mut st = lock_ok(&self.state);
        let wake = st.elapsed + d;
        let id = st.next_id;
        st.next_id += 1;
        st.timers.push(Reverse((wake, id)));
        TimeHold {
            clock: Arc::clone(self),
            wake,
            id,
        }
    }

    /// Timers currently registered (parked sleepers plus live holds).
    /// Scenario runners rendezvous on this instead of sleeping: "wait
    /// until the worker is parked in its virtual sleep".
    pub fn pending_timers(&self) -> usize {
        lock_ok(&self.state).timers.len()
    }
}

/// A pin on a [`SimClock`]'s timeline (see [`SimClock::hold`]).
/// Dropping it removes the pin and wakes parked sleepers so the
/// earliest can resume self-advancing.
pub struct TimeHold {
    clock: Arc<SimClock>,
    wake: Duration,
    id: u64,
}

impl Drop for TimeHold {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.clock.state);
        // An `advance` past our deadline may already have popped us;
        // filtering is idempotent either way.
        let timers = std::mem::take(&mut st.timers);
        st.timers = timers
            .into_iter()
            .filter(|&Reverse((w, i))| !(w == self.wake && i == self.id))
            .collect();
        self.clock.cv.notify_all();
    }
}

/// Poisoning tolerance: a panicking sleeper (fault injection panics
/// inside worker threads on purpose) must not take the timeline down
/// with it.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Clock for SimClock {
    fn now(&self) -> Instant {
        self.base + lock_ok(&self.state).elapsed
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let mut st = lock_ok(&self.state);
        let wake = st.elapsed + d;
        let id = st.next_id;
        st.next_id += 1;
        st.timers.push(Reverse((wake, id)));
        loop {
            if st.elapsed >= wake {
                // Whoever advanced past our deadline already popped our
                // timer (see `advance` and the branch below).
                return;
            }
            match st.timers.peek() {
                Some(&Reverse((_, earliest_id))) if earliest_id == id => {
                    // We are the earliest pending sleeper: advance the
                    // timeline to our own wake-up and release everyone
                    // whose deadline that crosses (ties included).
                    st.timers.pop();
                    st.elapsed = wake;
                    while matches!(st.timers.peek(), Some(&Reverse((w, _))) if w <= st.elapsed) {
                        st.timers.pop();
                    }
                    self.cv.notify_all();
                    return;
                }
                _ => {
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, SIM_WAIT_SLICE)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    fn is_virtual(&self) -> bool {
        true
    }

    fn wait_slice(&self, _remaining: Duration) -> Duration {
        SIM_WAIT_SLICE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_now_is_monotonic() {
        let c = WallClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn sim_sleep_advances_virtual_time_without_wall_time() {
        let c = SimClock::new();
        let wall0 = Instant::now();
        let t0 = c.now();
        c.sleep(Duration::from_secs(3600));
        let t1 = c.now();
        assert_eq!(t1 - t0, Duration::from_secs(3600));
        // An hour of virtual time must cost well under a second of wall
        // time (generous bound for slow CI machines).
        assert!(wall0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn sequential_sleeps_accumulate_exactly() {
        let c = SimClock::new();
        c.sleep(Duration::from_millis(100));
        c.sleep(Duration::from_millis(250));
        assert_eq!(c.elapsed(), Duration::from_millis(350));
    }

    #[test]
    fn racing_sleeps_serialize_to_a_deterministic_total() {
        let c = Arc::new(SimClock::new());
        let mut handles = Vec::new();
        for ms in [100u64, 200, 300] {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.sleep(Duration::from_millis(ms))
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Whatever order the threads win the clock's lock in, each sleep
        // extends the timeline by its own duration, so the total is the
        // order-independent sum.
        assert_eq!(c.elapsed(), Duration::from_millis(600));
    }

    #[test]
    fn advance_moves_time_and_releases_crossed_timers() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(7));
        assert_eq!(c.elapsed(), Duration::from_secs(7));
        let before = c.now();
        c.advance(Duration::from_secs(3));
        assert_eq!(c.now() - before, Duration::from_secs(3));
    }

    #[test]
    fn wait_slice_is_short_and_real_under_sim() {
        let c = SimClock::new();
        assert!(c.is_virtual());
        assert!(c.wait_slice(Duration::from_secs(3600)) <= Duration::from_millis(5));
        let w = WallClock;
        assert_eq!(w.wait_slice(Duration::from_secs(2)), Duration::from_secs(2));
    }

    #[test]
    fn zero_sleep_returns_without_registering_a_timer() {
        let c = SimClock::new();
        c.sleep(Duration::ZERO);
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn hold_parks_later_sleepers_until_dropped() {
        let c = Arc::new(SimClock::new());
        let hold = c.hold(Duration::from_millis(5));
        let sleeper = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.sleep(Duration::from_millis(300)))
        };
        // The sleeper parks behind the hold instead of self-advancing.
        let budget = Instant::now();
        while c.pending_timers() < 2 {
            assert!(budget.elapsed() < Duration::from_secs(10));
            std::thread::yield_now();
        }
        assert!(!sleeper.is_finished());
        assert_eq!(c.elapsed(), Duration::ZERO);
        // A shorter sleep still self-advances underneath the hold.
        c.sleep(Duration::from_millis(2));
        assert_eq!(c.elapsed(), Duration::from_millis(2));
        assert!(!sleeper.is_finished());
        drop(hold);
        sleeper.join().unwrap();
        // The sleeper's deadline was fixed at registration (t=0ms), so
        // the timeline lands on it, not 300ms past the short sleep.
        assert_eq!(c.elapsed(), Duration::from_millis(300));
    }
}
