//! The disk dimension of the simulation substrate.
//!
//! Persistence code talks to storage only through the [`Disk`] trait.
//! [`RealDisk`] passes straight through to `std::fs` and is
//! byte-compatible with the tmp+fsync+rename discipline the service has
//! always used. [`SimDisk`] is an in-memory filesystem with the failure
//! semantics real disks actually exhibit:
//!
//! * writes are buffered until `sync_all` — a crash loses everything
//!   after the last fsync, and may *tear* the unsynced tail (keep a
//!   seeded prefix of it, possibly with one flipped bit);
//! * `rename` updates the live namespace immediately but the new
//!   directory entry is only durable after [`Disk::sync_dir`] — the
//!   classic "rename visible but lost after power cut" behaviour;
//! * every operation is counted, so a test can run a workload once to
//!   learn its operation count and then re-run it once per possible
//!   crash point ([`SimDiskConfig::crash_at`]), handing each resulting
//!   post-crash image ([`SimDisk::crash`]) to recovery.
//!
//! All randomness (torn-write lengths, bit flips, injected I/O errors)
//! derives from one seed through [`mix64`], the same splitmix64
//! discipline as the rest of the crate, so crash schedules replay
//! byte-identically by seed.

use crate::rng::mix64;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open file handle: sequential writes plus an explicit fsync.
///
/// The persistence layer only ever appends or rewrites whole files, so
/// the handle surface is deliberately tiny — `Write` for bytes and
/// [`DiskFile::sync_all`] for the durability barrier.
pub trait DiskFile: Write + Send {
    /// Flushes buffered bytes and makes the file *contents* durable
    /// (the directory entry may still need [`Disk::sync_dir`]).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A filesystem as the persistence layer sees it.
///
/// Paths are plain `&Path`; backends decide what they mean ([`RealDisk`]
/// uses the real filesystem, [`SimDisk`] a namespace keyed by the path's
/// string form).
pub trait Disk: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (or truncates) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn DiskFile>>;
    /// Opens `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn DiskFile>>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to` in the live namespace. The new
    /// entry survives a crash only after [`Disk::sync_dir`].
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes `path` from the live namespace.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncates `path` to `len` bytes (used to physically discard a
    /// corrupt journal tail after recovery located it).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Makes `dir`'s entries (renames, removals, creations) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// File names (not full paths) of `dir`'s entries, sorted.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// The production backend: a passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealDisk;

struct RealFile(std::fs::File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl DiskFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Disk for RealDisk {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn DiskFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn DiskFile>> {
        let f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // way to persist its entries; platforms that refuse report the
        // error and callers decide whether that is best-effort.
        std::fs::File::open(dir)?.sync_all()
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// Knobs for one [`SimDisk`] instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimDiskConfig {
    /// Seed every torn-write length, bit flip, and injected error
    /// derives from.
    pub seed: u64,
    /// When `Some(k)`, every disk operation with index `>= k` fails with
    /// a "simulated crash" error — the enumeration hook.
    pub crash_at: Option<u64>,
    /// Percent chance (0–100) each operation fails with an injected
    /// I/O error, independent of `crash_at`.
    pub fail_rate_pct: u64,
    /// Cap on injected errors (crash failures are not counted).
    pub max_faults: u64,
}

/// One simulated file: its byte contents plus how much of them has been
/// fsynced. A crash keeps the synced prefix and tears the rest.
#[derive(Debug, Clone, Default)]
struct FileState {
    data: Vec<u8>,
    synced_len: usize,
}

#[derive(Default)]
struct DiskInner {
    /// File bodies, keyed by an id so renames move entries without
    /// copying bytes.
    files: HashMap<u64, FileState>,
    /// The live namespace: what a running process sees.
    live: BTreeMap<String, u64>,
    /// The durable namespace: what survives a crash. Updated by file
    /// fsync (for freshly created paths) and by `sync_dir`.
    durable: BTreeMap<String, u64>,
    next_id: u64,
    ops: u64,
    faults_fired: u64,
    op_trace: Vec<&'static str>,
}

/// The simulation backend: an in-memory filesystem with seeded faults
/// and crash-point enumeration.
///
/// Cloning is cheap and shares state (the handle model mirrors
/// [`crate::SimNet`]).
#[derive(Clone)]
pub struct SimDisk {
    cfg: SimDiskConfig,
    inner: Arc<Mutex<DiskInner>>,
}

fn key(path: &Path) -> String {
    path.to_string_lossy().into_owned()
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash (power loss)")
}

impl SimDisk {
    /// A fresh empty disk with `cfg`'s fault schedule.
    pub fn new(cfg: SimDiskConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            inner: Arc::new(Mutex::new(DiskInner::default())),
        })
    }

    /// Counts the operation, fails it if the crash point or a seeded
    /// fault says so. `kind` tags the op in [`SimDisk::op_trace`].
    fn begin_op(&self, inner: &mut DiskInner, kind: &'static str) -> io::Result<()> {
        let idx = inner.ops;
        inner.ops += 1;
        inner.op_trace.push(kind);
        if let Some(k) = self.cfg.crash_at {
            if idx >= k {
                return Err(crash_err());
            }
        }
        if self.cfg.fail_rate_pct > 0 && inner.faults_fired < self.cfg.max_faults {
            let roll = mix64(self.cfg.seed ^ 0xd15c_fa17u64.rotate_left(17) ^ idx) % 100;
            if roll < self.cfg.fail_rate_pct {
                inner.faults_fired += 1;
                return Err(io::Error::other(format!("simulated disk fault (op {idx})")));
            }
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Total disk operations issued so far (the crash-point space is
    /// `0..=op_count()`).
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Injected (non-crash) faults fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.lock().faults_fired
    }

    /// The kinds of every operation issued, in order — lets tests assert
    /// the enumeration space covers create/write/fsync/rename/dir-fsync
    /// sites.
    pub fn op_trace(&self) -> Vec<&'static str> {
        self.lock().op_trace.clone()
    }

    /// Installs `bytes` at `path`, fully durable, without counting ops —
    /// a test fixture hook.
    pub fn preload(&self, path: &Path, bytes: &[u8]) {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.files.insert(
            id,
            FileState {
                data: bytes.to_vec(),
                synced_len: bytes.len(),
            },
        );
        let k = key(path);
        inner.live.insert(k.clone(), id);
        inner.durable.insert(k, id);
    }

    /// The live contents of `path` (no op counting) — a test peek.
    pub fn dump(&self, path: &Path) -> Option<Vec<u8>> {
        let inner = self.lock();
        let id = *inner.live.get(&key(path))?;
        Some(inner.files.get(&id)?.data.clone())
    }

    /// Computes the post-crash disk: the durable namespace only, each
    /// file cut to its synced prefix plus a seeded torn fragment of the
    /// unsynced tail (about a quarter of non-empty torn tails also get
    /// one seeded bit flip). The returned disk is fully synced, with no
    /// crash point and no fault injection — recovery runs on it cleanly.
    pub fn crash(&self) -> Arc<SimDisk> {
        let inner = self.lock();
        let out = SimDisk::new(SimDiskConfig {
            seed: self.cfg.seed,
            ..SimDiskConfig::default()
        });
        {
            let mut dst = out.lock();
            for (path, &id) in &inner.durable {
                let Some(f) = inner.files.get(&id) else {
                    continue;
                };
                let synced = f.synced_len.min(f.data.len());
                let unsynced = f.data.len() - synced;
                let h = mix64(self.cfg.seed ^ mix64(id ^ 0x7ea5_ed00));
                let keep = if unsynced == 0 {
                    0
                } else {
                    (h % (unsynced as u64 + 1)) as usize
                };
                let mut data = f.data[..synced + keep].to_vec();
                if keep > 0 && mix64(h ^ 0xb17f_11b5).is_multiple_of(4) {
                    // One flipped bit somewhere in the torn region: the
                    // checksum layer above must catch it.
                    let bit = mix64(h ^ 0x000f_f5e7) % (keep as u64 * 8);
                    data[synced + (bit / 8) as usize] ^= 1 << (bit % 8);
                }
                let new_id = dst.next_id;
                dst.next_id += 1;
                let len = data.len();
                dst.files.insert(
                    new_id,
                    FileState {
                        data,
                        synced_len: len,
                    },
                );
                dst.live.insert(path.clone(), new_id);
                dst.durable.insert(path.clone(), new_id);
            }
        }
        out
    }
}

/// A handle into a [`SimDisk`] file. Writes land in the shared file
/// body immediately (visible to readers) but only extend `synced_len`
/// at [`DiskFile::sync_all`].
struct SimFile {
    disk: SimDisk,
    id: u64,
    path: String,
}

impl Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.disk.lock();
        self.disk.begin_op(&mut inner, "write")?;
        let f = inner
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::other("file vanished"))?;
        f.data.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DiskFile for SimFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut inner = self.disk.lock();
        self.disk.begin_op(&mut inner, "sync_file")?;
        let f = inner
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::other("file vanished"))?;
        f.synced_len = f.data.len();
        // fsync on a freshly created file also persists its dirent if
        // the path was never durable before (matches ext4 fast-commit
        // behaviour closely enough for our model); a *renamed* entry
        // still needs the directory fsync.
        if !inner.durable.contains_key(&self.path) && inner.live.get(&self.path) == Some(&self.id) {
            inner.durable.insert(self.path.clone(), self.id);
        }
        Ok(())
    }
}

impl Disk for SimDisk {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "create_dir")
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn DiskFile>> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "create")?;
        let id = inner.next_id;
        inner.next_id += 1;
        inner.files.insert(id, FileState::default());
        inner.live.insert(key(path), id);
        Ok(Box::new(SimFile {
            disk: self.clone(),
            id,
            path: key(path),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn DiskFile>> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "open_append")?;
        let k = key(path);
        let id = match inner.live.get(&k) {
            Some(&id) => id,
            None => {
                let id = inner.next_id;
                inner.next_id += 1;
                inner.files.insert(id, FileState::default());
                inner.live.insert(k.clone(), id);
                id
            }
        };
        Ok(Box::new(SimFile {
            disk: self.clone(),
            id,
            path: k,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "read")?;
        let id = *inner
            .live
            .get(&key(path))
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(inner.files[&id].data.clone())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "rename")?;
        let id = inner
            .live
            .remove(&key(from))
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        inner.live.insert(key(to), id);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "remove")?;
        inner
            .live
            .remove(&key(path))
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "truncate")?;
        let id = *inner
            .live
            .get(&key(path))
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let f = inner.files.get_mut(&id).expect("live id has a body");
        let len = len as usize;
        if len < f.data.len() {
            f.data.truncate(len);
        }
        f.synced_len = f.synced_len.min(f.data.len());
        // Truncation is modelled as immediately durable: recovery calls
        // it on an already-synced image and then fsyncs via save paths.
        f.synced_len = f.data.len();
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "sync_dir")?;
        let prefix = {
            let mut p = key(dir);
            if !p.ends_with('/') {
                p.push('/');
            }
            p
        };
        let snapshot: Vec<(String, Option<u64>)> = inner
            .live
            .iter()
            .filter(|(p, _)| p.starts_with(&prefix))
            .map(|(p, id)| (p.clone(), Some(*id)))
            .collect();
        // Entries that were removed or renamed away become durable-gone.
        let gone: Vec<String> = inner
            .durable
            .keys()
            .filter(|p| p.starts_with(&prefix) && !inner.live.contains_key(*p))
            .cloned()
            .collect();
        for p in gone {
            inner.durable.remove(&p);
        }
        for (p, id) in snapshot {
            if let Some(id) = id {
                inner.durable.insert(p, id);
            }
        }
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut inner = self.lock();
        self.begin_op(&mut inner, "list_dir")?;
        let prefix = {
            let mut p = key(dir);
            if !p.ends_with('/') {
                p.push('/');
            }
            p
        };
        let names: Vec<String> = inner
            .live
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix).map(|s| s.to_string()))
            .filter(|s| !s.contains('/'))
            .collect();
        Ok(names)
    }
}

/// Convenience: the path `dir/name` (both backends treat paths as
/// opaque strings, so plain join works for either).
pub fn disk_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_all(d: &SimDisk, path: &str, bytes: &[u8], sync: bool) {
        let mut f = d.create(&p(path)).unwrap();
        f.write_all(bytes).unwrap();
        if sync {
            f.sync_all().unwrap();
        }
    }

    #[test]
    fn unsynced_writes_can_be_lost_at_crash() {
        // With seed picked so the torn fragment is shorter than the
        // write, some unsynced bytes are gone after the crash.
        for seed in 0..32u64 {
            let d = SimDisk::new(SimDiskConfig {
                seed,
                ..SimDiskConfig::default()
            });
            let mut f = d.create(&p("/s/a")).unwrap();
            f.write_all(b"synced").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"unsynced-tail").unwrap();
            drop(f);
            let crashed = d.crash();
            let data = crashed.read(&p("/s/a")).unwrap();
            assert!(data.len() >= b"synced".len(), "synced prefix survives");
            assert!(data.len() <= b"syncedunsynced-tail".len());
            // The synced prefix is bit-exact even when the tail tears.
            if data.len() == b"synced".len() {
                assert_eq!(&data, b"synced");
            }
        }
    }

    #[test]
    fn some_seed_actually_tears() {
        let mut saw_torn = false;
        let mut saw_flip = false;
        for seed in 0..64u64 {
            let d = SimDisk::new(SimDiskConfig {
                seed,
                ..SimDiskConfig::default()
            });
            let mut f = d.create(&p("/s/a")).unwrap();
            f.write_all(b"AAAA").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"BBBBBBBB").unwrap();
            drop(f);
            let data = d.crash().read(&p("/s/a")).unwrap();
            if data.len() > 4 && data.len() < 12 {
                saw_torn = true;
            }
            if data.len() > 4 && data[4..].iter().any(|&b| b != b'B') {
                saw_flip = true;
            }
        }
        assert!(saw_torn, "no seed in 0..64 tore a write");
        assert!(saw_flip, "no seed in 0..64 flipped a bit");
    }

    #[test]
    fn rename_without_dir_fsync_is_lost_at_crash() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/reg.tmp", b"v3", true);
        d.rename(&p("/s/reg.tmp"), &p("/s/reg")).unwrap();
        // Live namespace sees the rename...
        assert_eq!(d.read(&p("/s/reg")).unwrap(), b"v3");
        // ...but a crash before sync_dir reverts to the old entry name.
        let crashed = d.crash();
        assert!(
            crashed.read(&p("/s/reg")).is_err(),
            "rename was not durable"
        );
        assert_eq!(crashed.read(&p("/s/reg.tmp")).unwrap(), b"v3");
    }

    #[test]
    fn rename_with_dir_fsync_survives_crash() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/reg.tmp", b"v3", true);
        d.rename(&p("/s/reg.tmp"), &p("/s/reg")).unwrap();
        d.sync_dir(&p("/s")).unwrap();
        let crashed = d.crash();
        assert_eq!(crashed.read(&p("/s/reg")).unwrap(), b"v3");
        assert!(crashed.read(&p("/s/reg.tmp")).is_err());
    }

    #[test]
    fn crash_at_fails_every_later_op() {
        let d = SimDisk::new(SimDiskConfig {
            crash_at: Some(2),
            ..SimDiskConfig::default()
        });
        let mut f = d.create(&p("/s/a")).unwrap(); // op 0
        f.write_all(b"x").unwrap(); // op 1
        assert!(f.write_all(b"y").is_err()); // op 2: crash
        assert!(f.sync_all().is_err()); // op 3: still dead
        assert!(d.create(&p("/s/b")).is_err());
    }

    #[test]
    fn op_count_and_trace_cover_the_sequence() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/a.tmp", b"data", true);
        d.rename(&p("/s/a.tmp"), &p("/s/a")).unwrap();
        d.sync_dir(&p("/s")).unwrap();
        assert_eq!(
            d.op_trace(),
            vec!["create", "write", "sync_file", "rename", "sync_dir"]
        );
        assert_eq!(d.op_count(), 5);
    }

    #[test]
    fn same_seed_same_crash_image() {
        let run = |seed: u64| {
            let d = SimDisk::new(SimDiskConfig {
                seed,
                ..SimDiskConfig::default()
            });
            let mut f = d.create(&p("/s/a")).unwrap();
            f.write_all(b"base").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"tail-tail-tail").unwrap();
            drop(f);
            d.crash().read(&p("/s/a")).unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(1),
            run(3),
            "distinct seeds should tear differently here"
        );
    }

    #[test]
    fn injected_faults_respect_rate_and_budget() {
        let d = SimDisk::new(SimDiskConfig {
            seed: 7,
            fail_rate_pct: 100,
            max_faults: 2,
            ..SimDiskConfig::default()
        });
        assert!(d.create(&p("/s/a")).is_err());
        assert!(d.create(&p("/s/a")).is_err());
        // Budget exhausted: now everything works.
        assert!(d.create(&p("/s/a")).is_ok());
        assert_eq!(d.faults_fired(), 2);
    }

    #[test]
    fn list_dir_and_remove() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/a", b"1", true);
        write_all(&d, "/s/b.tmp", b"2", true);
        let mut names = d.list_dir(&p("/s")).unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b.tmp"]);
        d.remove_file(&p("/s/b.tmp")).unwrap();
        assert_eq!(d.list_dir(&p("/s")).unwrap(), vec!["a"]);
    }

    #[test]
    fn removal_becomes_durable_only_after_dir_fsync() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/stale.tmp", b"junk", true);
        d.sync_dir(&p("/s")).unwrap();
        d.remove_file(&p("/s/stale.tmp")).unwrap();
        // Without a dir fsync the removal is lost: the file is back.
        assert!(d.crash().read(&p("/s/stale.tmp")).is_ok());
        d.sync_dir(&p("/s")).unwrap();
        assert!(d.crash().read(&p("/s/stale.tmp")).is_err());
    }

    #[test]
    fn truncate_cuts_and_is_durable() {
        let d = SimDisk::new(SimDiskConfig::default());
        write_all(&d, "/s/a", b"0123456789", true);
        d.truncate(&p("/s/a"), 4).unwrap();
        assert_eq!(d.read(&p("/s/a")).unwrap(), b"0123");
        assert_eq!(d.crash().read(&p("/s/a")).unwrap(), b"0123");
    }

    #[test]
    fn real_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "graft-sim-disk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let d = RealDisk;
        d.create_dir_all(&dir).unwrap();
        let tmp = dir.join("f.tmp");
        let fin = dir.join("f");
        let mut f = d.create(&tmp).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        d.rename(&tmp, &fin).unwrap();
        let _ = d.sync_dir(&dir);
        assert_eq!(d.read(&fin).unwrap(), b"hello");
        let mut a = d.open_append(&fin).unwrap();
        a.write_all(b" world").unwrap();
        a.sync_all().unwrap();
        drop(a);
        assert_eq!(d.read(&fin).unwrap(), b"hello world");
        d.truncate(&fin, 5).unwrap();
        assert_eq!(d.read(&fin).unwrap(), b"hello");
        assert_eq!(d.list_dir(&dir).unwrap(), vec!["f"]);
        d.remove_file(&fin).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
