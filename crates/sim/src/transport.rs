//! The network as a capability: byte-stream connections and listeners
//! behind trait objects, so the service is oblivious to whether bytes
//! travel over real TCP or an in-process simulated network.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One bidirectional byte-stream connection.
///
/// The surface mirrors the slice of `TcpStream` the service actually
/// uses: cloning (so a connection can have a reader and a writer side on
/// different threads, sharing one position like `TcpStream::try_clone`),
/// half-aware shutdown, and socket-option setters that are best-effort
/// hints under simulation.
pub trait Conn: Read + Write + Send {
    /// A second handle to the same connection (shared stream position,
    /// shared timeouts), like `TcpStream::try_clone`.
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// Shuts down both directions; subsequent reads see EOF, writes fail.
    fn shutdown_both(&self) -> io::Result<()>;

    /// Read timeout, as `TcpStream::set_read_timeout`.
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// Write timeout, as `TcpStream::set_write_timeout`.
    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// Nagle toggle; a no-op under simulation.
    fn set_nodelay(&self, on: bool) -> io::Result<()>;

    /// Peer address (fabricated but stable under simulation).
    fn peer_addr(&self) -> io::Result<SocketAddr>;
}

/// A passive endpoint accepting [`Conn`]s.
pub trait Listener: Send {
    /// Blocks until the next inbound connection.
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// The bound address, suitable for passing to
    /// [`Transport::connect`] after formatting.
    fn local_addr(&self) -> io::Result<SocketAddr>;
}

/// A network backend: the only way the service opens sockets.
pub trait Transport: Send + Sync {
    /// Binds a listener on `addr` (e.g. `"127.0.0.1:0"`).
    fn bind(&self, addr: &str) -> io::Result<Box<dyn Listener>>;

    /// Opens a connection to `addr`, optionally bounding the attempt.
    fn connect(&self, addr: &str, timeout: Option<Duration>) -> io::Result<Box<dyn Conn>>;
}

/// The production backend: plain `std::net` TCP.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

struct TcpConn(TcpStream);

impl Read for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for TcpConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl Conn for TcpConn {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(TcpConn(self.0.try_clone()?)))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.0.shutdown(std::net::Shutdown::Both)
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.0.set_read_timeout(d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.0.set_write_timeout(d)
    }

    fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.0.set_nodelay(on)
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.0.peer_addr()
    }
}

struct TcpListenerWrap(TcpListener);

impl Listener for TcpListenerWrap {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let (stream, _) = self.0.accept()?;
        Ok(Box::new(TcpConn(stream)))
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.0.local_addr()
    }
}

impl Transport for TcpTransport {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(TcpListenerWrap(TcpListener::bind(addr)?)))
    }

    fn connect(&self, addr: &str, timeout: Option<Duration>) -> io::Result<Box<dyn Conn>> {
        let stream = match timeout {
            Some(t) => {
                // connect_timeout needs a resolved SocketAddr.
                let sockaddr = addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
                TcpStream::connect_timeout(&sockaddr, t)?
            }
            None => TcpStream::connect(addr)?,
        };
        Ok(Box::new(TcpConn(stream)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn tcp_transport_round_trips_a_line() {
        let t = TcpTransport;
        let listener = t.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept_conn().unwrap();
            let mut reader = BufReader::new(conn.try_clone_conn().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut w = conn;
            w.write_all(format!("echo {line}").as_bytes()).unwrap();
            w.flush().unwrap();
        });
        let mut c = t
            .connect(&addr.to_string(), Some(Duration::from_secs(5)))
            .unwrap();
        c.set_nodelay(true).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(c.try_clone_conn().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "echo ping\n");
        server.join().unwrap();
    }
}
