//! Iterative Tarjan strongly-connected components on a CSR digraph.

/// Computes the strongly connected components of a digraph given as CSR
/// (`ptr.len() == n + 1`, `adj` holds successor ids).
///
/// Returns the components as vertex lists in **reverse topological order**
/// (Tarjan's emission order: a component is finished only after everything
/// it reaches), so callers wanting sources-first iterate in reverse.
///
/// Fully iterative — the square blocks of real BTF problems can be deep —
/// and `O(n + m)`.
pub fn strongly_connected_components(n: usize, ptr: &[usize], adj: &[u32]) -> Vec<Vec<u32>> {
    assert_eq!(ptr.len(), n + 1, "ptr must have n+1 entries");
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new(); // Tarjan's component stack
    let mut components = Vec::new();
    let mut counter: u32 = 0;

    // DFS frames: (vertex, next successor offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, ptr[start as usize]));
        index[start as usize] = counter;
        lowlink[start as usize] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 < ptr[v as usize + 1] {
                let w = adj[frame.1];
                frame.1 += 1;
                if index[w as usize] == UNSET {
                    // Tree edge: descend.
                    frames.push((w, ptr[w as usize]));
                    index[w as usize] = counter;
                    lowlink[w as usize] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // v finished: pop frame, propagate lowlink, maybe emit SCC.
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0 as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("component stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
        let mut ptr = vec![0usize; n + 1];
        for &(u, _) in edges {
            ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut adj = vec![0u32; edges.len()];
        let mut cur = ptr.clone();
        for &(u, v) in edges {
            adj[cur[u as usize]] = v;
            cur[u as usize] += 1;
        }
        (ptr, adj)
    }

    fn normalize(mut comps: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        comps
    }

    #[test]
    fn single_cycle() {
        let (ptr, adj) = csr(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = strongly_connected_components(3, &ptr, &adj);
        assert_eq!(c.len(), 1);
        assert_eq!(normalize(c), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_gives_singletons_in_reverse_topo() {
        let (ptr, adj) = csr(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = strongly_connected_components(4, &ptr, &adj);
        assert_eq!(c.len(), 4);
        // Reverse topological: sinks first.
        assert_eq!(c[0], vec![3]);
        assert_eq!(c[3], vec![0]);
    }

    #[test]
    fn two_cycles_with_bridge() {
        let (ptr, adj) = csr(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let c = strongly_connected_components(6, &ptr, &adj);
        assert_eq!(c.len(), 3);
        let n = normalize(c.clone());
        assert!(n.contains(&vec![0, 1]));
        assert!(n.contains(&vec![2, 3, 4]));
        assert!(n.contains(&vec![5]));
        // Reverse topo: {5} must be emitted before {2,3,4}, which precedes {0,1}.
        let pos = |needle: &[u32]| {
            c.iter().position(|comp| {
                let mut s = comp.clone();
                s.sort_unstable();
                s == needle
            })
        };
        assert!(pos(&[5]) < pos(&[2, 3, 4]));
        assert!(pos(&[2, 3, 4]) < pos(&[0, 1]));
    }

    #[test]
    fn self_loop_and_isolated() {
        let (ptr, adj) = csr(3, &[(1, 1)]);
        let c = strongly_connected_components(3, &ptr, &adj);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let (ptr, adj) = csr(0, &[]);
        assert!(strongly_connected_components(0, &ptr, &adj).is_empty());
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let (ptr, adj) = csr(n, &edges);
        let c = strongly_connected_components(n, &ptr, &adj);
        assert_eq!(c.len(), n);
    }

    #[test]
    fn every_vertex_in_exactly_one_component() {
        let (ptr, adj) = csr(
            8,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 2),
                (1, 2),
                (4, 5),
                (5, 6),
                (6, 4),
                (7, 7),
            ],
        );
        let c = strongly_connected_components(8, &ptr, &adj);
        let mut seen = [0u32; 8];
        for comp in &c {
            for &v in comp {
                seen[v as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }
}
