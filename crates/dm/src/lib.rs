//! # graft-dm — Dulmage-Mendelsohn decomposition and block triangular form
//!
//! The paper's introduction motivates maximum cardinality matching with
//! exactly this application: *"permute a matrix to its block triangular
//! form (BTF) via the Dulmage-Mendelsohn decomposition"*, which speeds up
//! sparse linear solves and least-squares structure prediction.
//!
//! Given a bipartite graph `G` (rows `X`, columns `Y`) and a **maximum**
//! matching `M`:
//!
//! * the **coarse decomposition** splits the matrix into the horizontal
//!   part (rows reachable by `M`-alternating paths from unmatched rows,
//!   underdetermined), the vertical part (reachable from unmatched
//!   columns, overdetermined) and the square part (perfectly matched);
//! * the **fine decomposition** finds the strongly connected components of
//!   the square part's pairing digraph, yielding the irreducible diagonal
//!   blocks of the BTF in topological order.
//!
//! ```
//! use graft_dm::DmDecomposition;
//! use graft_graph::BipartiteCsr;
//!
//! // A 3×3 matrix with a 2-block triangular structure.
//! let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 0), (2, 2), (2, 0)]);
//! let dm = DmDecomposition::compute(&g);
//! assert_eq!(dm.square_blocks.len(), 2);
//! assert!(dm.is_structurally_nonsingular());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod scc;

pub use decompose::{BtfPermutation, DmDecomposition};
pub use scc::strongly_connected_components;
