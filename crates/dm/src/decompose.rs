//! Coarse and fine Dulmage-Mendelsohn decomposition.

use crate::scc::strongly_connected_components;
use graft_core::verify::alternating_reachability;
use graft_core::{hopcroft_karp, Matching};
use graft_graph::{BipartiteCsr, VertexId, NONE};

/// Where a vertex lands in the coarse decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoarsePart {
    /// Horizontal (underdetermined) part: reachable from unmatched rows.
    Horizontal,
    /// Square (exactly determined) part.
    Square,
    /// Vertical (overdetermined) part: reachable from unmatched columns.
    Vertical,
}

/// The full Dulmage-Mendelsohn decomposition of a bipartite graph.
#[derive(Clone, Debug)]
pub struct DmDecomposition {
    /// A maximum matching witnessing the decomposition.
    pub matching: Matching,
    /// Coarse part of every row (`X`) vertex.
    pub row_part: Vec<CoarsePart>,
    /// Coarse part of every column (`Y`) vertex.
    pub col_part: Vec<CoarsePart>,
    /// Irreducible blocks of the square part in **reverse topological
    /// order** of the pairing digraph (sinks first), which yields a block
    /// *lower* triangular form. Each block lists its row vertices; the
    /// matched columns are `matching.mate_of_x` of those rows.
    pub square_blocks: Vec<Vec<VertexId>>,
}

impl DmDecomposition {
    /// Computes the decomposition, finding a maximum matching internally
    /// (Hopcroft-Karp; callers with a matching in hand should use
    /// [`DmDecomposition::with_matching`]).
    pub fn compute(g: &BipartiteCsr) -> Self {
        let m = hopcroft_karp(g, Matching::for_graph(g)).matching;
        Self::with_matching(g, m)
    }

    /// Computes the decomposition from a **maximum** matching (panics if
    /// `m` is not maximum — the decomposition theorems require it).
    pub fn with_matching(g: &BipartiteCsr, m: Matching) -> Self {
        assert!(
            graft_core::verify::is_maximum(g, &m),
            "Dulmage-Mendelsohn requires a maximum matching"
        );

        // Horizontal: alternating reachability from unmatched rows.
        let (hx, hy) = alternating_reachability(g, &m);
        // Vertical: the same sweep on the transposed problem.
        let gt = g.transposed();
        let (my_x, my_y) = (m.mates_x().to_vec(), m.mates_y().to_vec());
        let mt = Matching::from_mates(my_y, my_x);
        let (vy, vx) = alternating_reachability(&gt, &mt);

        let mut row_part = Vec::with_capacity(g.num_x());
        for x in 0..g.num_x() {
            row_part.push(if hx[x] {
                CoarsePart::Horizontal
            } else if vx[x] {
                CoarsePart::Vertical
            } else {
                CoarsePart::Square
            });
        }
        let mut col_part = Vec::with_capacity(g.num_y());
        for y in 0..g.num_y() {
            col_part.push(if hy[y] {
                CoarsePart::Horizontal
            } else if vy[y] {
                CoarsePart::Vertical
            } else {
                CoarsePart::Square
            });
        }

        // Fine decomposition of the square part: pairing digraph on the
        // square rows, arc x → mate(y') for every square column neighbor
        // y' ≠ mate(x); its SCCs are the irreducible diagonal blocks.
        let square_rows: Vec<VertexId> = (0..g.num_x() as VertexId)
            .filter(|&x| row_part[x as usize] == CoarsePart::Square)
            .collect();
        let mut local_of = vec![u32::MAX; g.num_x()];
        for (i, &x) in square_rows.iter().enumerate() {
            local_of[x as usize] = i as u32;
        }
        let mut ptr = vec![0usize; square_rows.len() + 1];
        let mut arcs: Vec<u32> = Vec::new();
        for (i, &x) in square_rows.iter().enumerate() {
            debug_assert_ne!(m.mate_of_x(x), NONE, "square rows are matched");
            for &y in g.x_neighbors(x) {
                if col_part[y as usize] != CoarsePart::Square {
                    continue;
                }
                let w = m.mate_of_y(y);
                debug_assert_ne!(w, NONE, "square columns are matched");
                let lw = local_of[w as usize];
                debug_assert_ne!(lw, u32::MAX, "mate of a square column is a square row");
                if lw != i as u32 {
                    arcs.push(lw);
                }
            }
            ptr[i + 1] = arcs.len();
        }
        let comps = strongly_connected_components(square_rows.len(), &ptr, &arcs);
        // Tarjan emits sinks-first (reverse topological). Keeping that
        // order makes the square part block *lower* triangular, matching
        // the coarse (H, S, V) ordering which is also lower triangular.
        let square_blocks: Vec<Vec<VertexId>> = comps
            .into_iter()
            .map(|c| c.into_iter().map(|l| square_rows[l as usize]).collect())
            .collect();

        Self {
            matching: m,
            row_part,
            col_part,
            square_blocks,
        }
    }

    /// A square matrix is structurally nonsingular iff the whole matrix is
    /// its own square part (a perfect matching exists).
    pub fn is_structurally_nonsingular(&self) -> bool {
        self.row_part.len() == self.col_part.len()
            && self.row_part.iter().all(|&p| p == CoarsePart::Square)
            && self.col_part.iter().all(|&p| p == CoarsePart::Square)
    }

    /// Numbers of rows in the (horizontal, square, vertical) parts.
    pub fn row_counts(&self) -> (usize, usize, usize) {
        let mut h = 0;
        let mut s = 0;
        let mut v = 0;
        for &p in &self.row_part {
            match p {
                CoarsePart::Horizontal => h += 1,
                CoarsePart::Square => s += 1,
                CoarsePart::Vertical => v += 1,
            }
        }
        (h, s, v)
    }

    /// Numbers of columns in the (horizontal, square, vertical) parts.
    pub fn col_counts(&self) -> (usize, usize, usize) {
        let mut h = 0;
        let mut s = 0;
        let mut v = 0;
        for &p in &self.col_part {
            match p {
                CoarsePart::Horizontal => h += 1,
                CoarsePart::Square => s += 1,
                CoarsePart::Vertical => v += 1,
            }
        }
        (h, s, v)
    }

    /// Builds the block-triangular permutation.
    pub fn btf(&self, g: &BipartiteCsr) -> BtfPermutation {
        BtfPermutation::from_dm(self, g)
    }

    /// Fine structure of the horizontal (underdetermined) part: the
    /// connected components of the subgraph induced on `(H rows, H
    /// columns)`, each returned as `(rows, cols)` in original ids. In the
    /// full Dulmage-Mendelsohn permutation these components are further
    /// independent diagonal blocks of the horizontal part.
    pub fn horizontal_blocks(&self, g: &BipartiteCsr) -> Vec<(Vec<VertexId>, Vec<VertexId>)> {
        self.part_blocks(g, CoarsePart::Horizontal)
    }

    /// Fine structure of the vertical (overdetermined) part, analogous to
    /// [`DmDecomposition::horizontal_blocks`].
    pub fn vertical_blocks(&self, g: &BipartiteCsr) -> Vec<(Vec<VertexId>, Vec<VertexId>)> {
        self.part_blocks(g, CoarsePart::Vertical)
    }

    fn part_blocks(
        &self,
        g: &BipartiteCsr,
        part: CoarsePart,
    ) -> Vec<(Vec<VertexId>, Vec<VertexId>)> {
        let keep_x: Vec<VertexId> = (0..g.num_x() as VertexId)
            .filter(|&x| self.row_part[x as usize] == part)
            .collect();
        let keep_y: Vec<VertexId> = (0..g.num_y() as VertexId)
            .filter(|&y| self.col_part[y as usize] == part)
            .collect();
        let (sub, old_x, old_y) = graft_graph::ops::induced_subgraph(g, &keep_x, &keep_y);
        let (cx, cy, count) = graft_graph::ops::connected_components(&sub);
        let mut blocks: Vec<(Vec<VertexId>, Vec<VertexId>)> =
            (0..count).map(|_| (Vec::new(), Vec::new())).collect();
        for (local, &c) in cx.iter().enumerate() {
            blocks[c as usize].0.push(old_x[local]);
        }
        for (local, &c) in cy.iter().enumerate() {
            blocks[c as usize].1.push(old_y[local]);
        }
        blocks.retain(|(xs, ys)| !xs.is_empty() || !ys.is_empty());
        blocks
    }
}

/// Row and column orderings that put the matrix into block lower
/// triangular form: horizontal part first, then the square blocks
/// (sinks-first), then the vertical part.
#[derive(Clone, Debug)]
pub struct BtfPermutation {
    /// Rows in BTF order (`row_order[k]` = original row in position `k`).
    pub row_order: Vec<VertexId>,
    /// Columns in BTF order.
    pub col_order: Vec<VertexId>,
    /// `(row offset, col offset)` where each square block starts, plus a
    /// final sentinel pair — block `i` spans rows
    /// `block_offsets[i].0 .. block_offsets[i+1].0`.
    pub block_offsets: Vec<(usize, usize)>,
}

impl BtfPermutation {
    fn from_dm(dm: &DmDecomposition, g: &BipartiteCsr) -> Self {
        let mut row_order = Vec::with_capacity(g.num_x());
        let mut col_order = Vec::with_capacity(g.num_y());

        // Horizontal part: unmatched rows last within the part is
        // irrelevant structurally; matched pairs aligned.
        for x in 0..g.num_x() as VertexId {
            if dm.row_part[x as usize] == CoarsePart::Horizontal {
                row_order.push(x);
            }
        }
        for y in 0..g.num_y() as VertexId {
            if dm.col_part[y as usize] == CoarsePart::Horizontal {
                col_order.push(y);
            }
        }

        let mut block_offsets = Vec::with_capacity(dm.square_blocks.len() + 1);
        for block in &dm.square_blocks {
            block_offsets.push((row_order.len(), col_order.len()));
            for &x in block {
                row_order.push(x);
                col_order.push(dm.matching.mate_of_x(x));
            }
        }
        block_offsets.push((row_order.len(), col_order.len()));

        for x in 0..g.num_x() as VertexId {
            if dm.row_part[x as usize] == CoarsePart::Vertical {
                row_order.push(x);
            }
        }
        for y in 0..g.num_y() as VertexId {
            if dm.col_part[y as usize] == CoarsePart::Vertical {
                col_order.push(y);
            }
        }

        Self {
            row_order,
            col_order,
            block_offsets,
        }
    }

    /// Verifies block-triangularity of the square part: in the permuted
    /// matrix, no entry may lie below its diagonal block (an edge from a
    /// later block's row into an earlier block's column).
    pub fn verify(&self, g: &BipartiteCsr) -> Result<(), String> {
        let mut row_pos = vec![usize::MAX; g.num_x()];
        for (k, &x) in self.row_order.iter().enumerate() {
            row_pos[x as usize] = k;
        }
        let mut col_pos = vec![usize::MAX; g.num_y()];
        for (k, &y) in self.col_order.iter().enumerate() {
            col_pos[y as usize] = k;
        }
        let (sq_row_start, sq_col_start) = *self.block_offsets.first().unwrap_or(&(0, 0));
        let (sq_row_end, sq_col_end) = *self.block_offsets.last().unwrap_or(&(0, 0));
        let block_of_row = |pos: usize| -> usize {
            // Binary search over offsets.
            match self.block_offsets.binary_search_by_key(&pos, |&(r, _)| r) {
                Ok(i) => i,
                Err(i) => i - 1,
            }
        };
        let block_of_col = |pos: usize| -> usize {
            match self.block_offsets.binary_search_by_key(&pos, |&(_, c)| c) {
                Ok(i) => i,
                Err(i) => i - 1,
            }
        };
        for (x, y) in g.edges() {
            let rp = row_pos[x as usize];
            let cp = col_pos[y as usize];
            let r_square = (sq_row_start..sq_row_end).contains(&rp);
            let c_square = (sq_col_start..sq_col_end).contains(&cp);
            // Fine structure: within the square part, entries may not lie
            // above the block diagonal (lower triangular, sinks-first
            // block order).
            if r_square && c_square {
                let rb = block_of_row(rp);
                let cb = block_of_col(cp);
                if cb > rb {
                    return Err(format!(
                        "entry ({x},{y}) lies above the block diagonal (row block {rb}, col block {cb})"
                    ));
                }
            }
            // Coarse structure (zero blocks of the DM theorem): horizontal
            // rows only touch horizontal columns, and no row outside the
            // vertical part touches a vertical column.
            if rp < sq_row_start && cp >= sq_col_start {
                return Err(format!(
                    "horizontal row {x} touches non-horizontal column {y}"
                ));
            }
            if rp < sq_row_end && cp >= sq_col_end {
                return Err(format!("non-vertical row {x} touches vertical column {y}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_is_all_square() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]);
        let dm = DmDecomposition::compute(&g);
        assert!(dm.is_structurally_nonsingular());
        assert_eq!(dm.row_counts(), (0, 3, 0));
    }

    #[test]
    fn triangular_matrix_gives_singleton_blocks() {
        // Lower triangular 4×4: blocks are all 1×1.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..=i {
                edges.push((i, j));
            }
        }
        let g = BipartiteCsr::from_edges(4, 4, &edges);
        let dm = DmDecomposition::compute(&g);
        assert_eq!(dm.square_blocks.len(), 4);
        let btf = dm.btf(&g);
        btf.verify(&g).expect("triangular matrix must verify");
    }

    #[test]
    fn irreducible_matrix_is_one_block() {
        // A cycle through all rows makes the pairing digraph strongly
        // connected.
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let dm = DmDecomposition::compute(&g);
        assert_eq!(dm.square_blocks.len(), 1);
        assert_eq!(dm.square_blocks[0].len(), 3);
    }

    #[test]
    fn rectangular_horizontal_part() {
        // 2 rows, 4 columns: all rows matched, underdetermined (wide).
        let g = BipartiteCsr::from_edges(2, 4, &[(0, 0), (0, 1), (1, 2), (1, 3)]);
        let dm = DmDecomposition::compute(&g);
        // Wide matrices: unmatched columns make the *vertical* sweep reach
        // everything connected to them.
        let (h, s, v) = dm.col_counts();
        assert_eq!(h + s + v, 4);
        assert_eq!(dm.matching.cardinality(), 2);
        let btf = dm.btf(&g);
        btf.verify(&g).expect("coarse structure must verify");
    }

    #[test]
    fn mixed_structure_verifies() {
        // Horizontal: row 0 unmatched competes with row 1 for column 0.
        // Square: rows 2,3 on columns 1,2. Vertical: column 3 unmatched
        // hangs off row 3... keep it simple and just verify invariants.
        let g = BipartiteCsr::from_edges(
            4,
            4,
            &[
                (0, 0),
                (1, 0),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 1),
                (3, 3),
                (1, 3),
            ],
        );
        let dm = DmDecomposition::compute(&g);
        let (h, s, v) = dm.row_counts();
        assert_eq!(h + s + v, 4);
        let btf = dm.btf(&g);
        btf.verify(&g).expect("BTF must verify");
        // Row/col orders are permutations.
        let mut ro = btf.row_order.clone();
        ro.sort_unstable();
        assert_eq!(ro, (0..4).collect::<Vec<u32>>());
        let mut co = btf.col_order.clone();
        co.sort_unstable();
        assert_eq!(co, (0..4).collect::<Vec<u32>>());
    }

    #[test]
    fn block_offsets_partition_square() {
        let mut edges = Vec::new();
        // Two independent 2×2 irreducible blocks with a one-way coupling.
        edges.extend_from_slice(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        edges.extend_from_slice(&[(2, 2), (2, 3), (3, 2), (3, 3)]);
        edges.push((2, 0)); // block {2,3} depends on block {0,1}
        let g = BipartiteCsr::from_edges(4, 4, &edges);
        let dm = DmDecomposition::compute(&g);
        assert_eq!(dm.square_blocks.len(), 2);
        let btf = dm.btf(&g);
        btf.verify(&g).expect("two-block BTF must verify");
        assert_eq!(btf.block_offsets.len(), 3);
        assert_eq!(btf.block_offsets[2].0 - btf.block_offsets[0].0, 4);
    }

    #[test]
    fn horizontal_blocks_partition_the_part() {
        // Two independent horizontal groups: {x0,x1}×{y0} and {x2,x3}×{y1}.
        let g = BipartiteCsr::from_edges(4, 2, &[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let dm = DmDecomposition::compute(&g);
        assert_eq!(
            dm.row_counts().0,
            4,
            "wide deficient graph: all rows horizontal"
        );
        let blocks = dm.horizontal_blocks(&g);
        assert_eq!(blocks.len(), 2);
        let total_rows: usize = blocks.iter().map(|(xs, _)| xs.len()).sum();
        let total_cols: usize = blocks.iter().map(|(_, ys)| ys.len()).sum();
        assert_eq!(total_rows, 4);
        assert_eq!(total_cols, 2);
        assert!(dm.vertical_blocks(&g).is_empty());
    }

    #[test]
    fn vertical_blocks_on_tall_graph() {
        // Transposed shape: all columns vertical, two components.
        let g = BipartiteCsr::from_edges(2, 4, &[(0, 0), (0, 1), (1, 2), (1, 3)]);
        let dm = DmDecomposition::compute(&g);
        let blocks = dm.vertical_blocks(&g);
        assert_eq!(blocks.len(), 2);
        assert!(dm.horizontal_blocks(&g).is_empty());
    }

    #[test]
    fn square_graph_has_no_side_blocks() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        let dm = DmDecomposition::compute(&g);
        assert!(dm.horizontal_blocks(&g).is_empty());
        assert!(dm.vertical_blocks(&g).is_empty());
    }

    #[test]
    #[should_panic(expected = "maximum matching")]
    fn rejects_non_maximum_matching() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(1, 0);
        DmDecomposition::with_matching(&g, m);
    }
}
