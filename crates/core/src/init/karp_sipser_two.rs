//! Karp-Sipser with the degree-2 contraction rule (KS2).
//!
//! The classic Karp-Sipser heuristic has two optimality-preserving rules:
//!
//! * **degree-1** — a vertex with one unmatched neighbor is matched to it
//!   (implemented in [`super::karp_sipser`]);
//! * **degree-2** — a vertex `x` with exactly two (super-)neighbors
//!   `y₁, y₂` can be *contracted away*: merge `y₁` and `y₂` into one
//!   super-vertex and delete `x`. The maximum matching of the contracted
//!   graph is exactly one smaller, and expanding the contraction always
//!   matches `x`: if the super-vertex ended up matched through the `y₁`
//!   half, `x` takes its `y₂` edge, and vice versa; if it ended up
//!   unmatched, `x` takes either edge.
//!
//! Duff, Kaya & Uçar's experiments (cited by the paper for its
//! initializer choice, §II-B) show the degree-2 rule improves the
//! initializer's cardinality on graphs whose 2-core survives the degree-1
//! cascade. This implementation applies the degree-1 rule on both sides
//! and the degree-2 contraction for `X` vertices (merging `Y`
//! super-vertices), falling back to seeded random picks when no rule
//! fires — each rule is independently optimality-preserving, so any
//! subset of them is sound.
//!
//! ## Implementation notes
//!
//! `Y` super-vertices live in a union-find whose roots carry merged
//! adjacency lists (smaller list absorbed into larger, `O(m log n)`
//! total). Every adjacency entry remembers its **original** `Y` endpoint,
//! which is what the expansion needs to emit real graph edges.
//! Contractions build a *merge forest* (leaves = original `Y` vertices,
//! internal nodes = contraction events); expansion walks the recorded
//! events in reverse, propagating "which half holds the matched leaf"
//! down the forest.

use crate::Matching;
use graft_graph::{BipartiteCsr, VertexId, NONE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// An adjacency entry of a `Y` super-vertex: the `X` endpoint plus the
/// original `Y` vertex the edge touches.
#[derive(Clone, Copy, Debug)]
struct Arc {
    x: VertexId,
    y_orig: VertexId,
}

/// One degree-2 contraction event.
#[derive(Clone, Copy, Debug)]
struct Contraction {
    /// The removed X vertex.
    x: VertexId,
    /// Its edge into the first half (original Y endpoint).
    y_to_first: VertexId,
    /// Its edge into the second half.
    y_to_second: VertexId,
    /// Merge-forest node of the first half at event time.
    node_first: u32,
    /// Merge-forest node of the second half at event time.
    node_second: u32,
    /// The new node created for the merged super-vertex.
    node_merged: u32,
}

struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
}

/// Karp-Sipser with degree-1 (both sides) and degree-2 (X side)
/// rules. Deterministic for fixed `(g, seed)`; returns a maximal
/// matching.
pub fn karp_sipser_two(g: &BipartiteCsr, seed: u64) -> Matching {
    let nx = g.num_x();
    let ny = g.num_y();
    let mut rng = SmallRng::seed_from_u64(seed);

    // --- Super-vertex state on the Y side. ---
    let mut dsu = Dsu::new(ny);
    let mut adj_y: Vec<Vec<Arc>> = (0..ny as VertexId)
        .map(|y| {
            g.y_neighbors(y)
                .iter()
                .map(|&x| Arc { x, y_orig: y })
                .collect()
        })
        .collect();
    // Merge-forest: nodes 0..ny are the leaves; contractions append.
    // parent[node] = NONE until the node is merged under another.
    let mut node_parent: Vec<u32> = vec![u32::MAX; ny];
    // Current forest node of each live Y root.
    let mut node_of: Vec<u32> = (0..ny as u32).collect();

    let mut x_alive = vec![true; nx];
    let mut y_alive = vec![true; ny]; // indexed by DSU root
                                      // Matching on super-vertices: (x, root, y_orig of the matched edge).
    let mut matched: Vec<(VertexId, u32, VertexId)> = Vec::new();
    let mut x_matched = vec![false; nx];
    let mut contractions: Vec<Contraction> = Vec::new();

    // Scratch for distinct-root computation.
    let mut mark: Vec<u32> = vec![u32::MAX; ny];
    let mut stamp: u32 = 0;

    // Recheck queues (lazy: entries may be stale).
    let mut x_queue: VecDeque<VertexId> = (0..nx as VertexId).collect();
    let mut y_queue: VecDeque<u32> = (0..ny as u32).collect();
    let mut pool: Vec<VertexId> = (0..nx as VertexId).collect();

    // Distinct live roots adjacent to x, with one original-Y witness per
    // root. Returns at most 3 entries (callers only need to distinguish
    // 0/1/2/≥3).
    macro_rules! distinct_roots {
        ($x:expr) => {{
            stamp = stamp.wrapping_add(1);
            let mut out: Vec<(u32, VertexId)> = Vec::with_capacity(3);
            for &y in g.x_neighbors($x) {
                let r = dsu.find(y);
                if !y_alive[r as usize] || mark[r as usize] == stamp {
                    continue;
                }
                mark[r as usize] = stamp;
                out.push((r, y));
                if out.len() > 2 {
                    break;
                }
            }
            out
        }};
    }

    // Matches x to the super-vertex `root` through original edge
    // (x, y_orig), then notifies neighbors.
    macro_rules! do_match {
        ($x:expr, $root:expr, $y_orig:expr) => {{
            let (x, root, y_orig) = ($x, $root, $y_orig);
            debug_assert!(x_alive[x as usize] && y_alive[root as usize]);
            matched.push((x, root, y_orig));
            x_matched[x as usize] = true;
            x_alive[x as usize] = false;
            y_alive[root as usize] = false;
            // X vertices that lost a neighbor: everything adjacent to root.
            for i in 0..adj_y[root as usize].len() {
                let ax = adj_y[root as usize][i].x;
                if x_alive[ax as usize] {
                    x_queue.push_back(ax);
                }
            }
            // Y roots that lost a neighbor: everything adjacent to x.
            for &y in g.x_neighbors(x) {
                let r = dsu.find(y);
                if y_alive[r as usize] {
                    y_queue.push_back(r);
                }
            }
        }};
    }

    loop {
        let mut progressed = false;

        // --- Rule pass: drain both recheck queues. ---
        loop {
            if let Some(x) = x_queue.pop_front() {
                if !x_alive[x as usize] {
                    continue;
                }
                let roots = distinct_roots!(x);
                match roots.len() {
                    0 => {
                        x_alive[x as usize] = false; // isolated: drop
                    }
                    1 => {
                        let (r, y_orig) = roots[0];
                        do_match!(x, r, y_orig);
                        progressed = true;
                    }
                    2 => {
                        // Degree-2 contraction: merge the two halves.
                        let (r1, yo1) = roots[0];
                        let (r2, yo2) = roots[1];
                        let node_merged = (node_parent.len()) as u32;
                        contractions.push(Contraction {
                            x,
                            y_to_first: yo1,
                            y_to_second: yo2,
                            node_first: node_of[r1 as usize],
                            node_second: node_of[r2 as usize],
                            node_merged,
                        });
                        node_parent.push(u32::MAX);
                        node_parent[node_of[r1 as usize] as usize] = node_merged;
                        node_parent[node_of[r2 as usize] as usize] = node_merged;
                        x_alive[x as usize] = false;
                        // Smaller-into-larger adjacency merge.
                        let (big, small) = if adj_y[r1 as usize].len() >= adj_y[r2 as usize].len() {
                            (r1, r2)
                        } else {
                            (r2, r1)
                        };
                        dsu.parent[small as usize] = big;
                        let moved = std::mem::take(&mut adj_y[small as usize]);
                        // X vertices adjacent to the absorbed half may have
                        // lost a distinct neighbor (if they also touch the
                        // surviving half).
                        for &arc in &moved {
                            if x_alive[arc.x as usize] {
                                x_queue.push_back(arc.x);
                            }
                        }
                        adj_y[big as usize].extend(moved);
                        y_alive[small as usize] = false;
                        node_of[big as usize] = node_merged;
                        y_queue.push_back(big);
                        progressed = true;
                    }
                    _ => {}
                }
                continue;
            }
            if let Some(r0) = y_queue.pop_front() {
                let r = dsu.find(r0);
                if r != r0 || !y_alive[r as usize] {
                    continue; // stale entry
                }
                // Clean dead arcs lazily and apply the Y-side degree-1 rule.
                adj_y[r as usize].retain(|a| x_alive[a.x as usize]);
                if adj_y[r as usize].is_empty() {
                    y_alive[r as usize] = false;
                } else if adj_y[r as usize]
                    .iter()
                    .map(|a| a.x)
                    .all(|x| x == adj_y[r as usize][0].x)
                {
                    let arc = adj_y[r as usize][0];
                    do_match!(arc.x, r, arc.y_orig);
                    progressed = true;
                }
                continue;
            }
            break;
        }

        // --- Random phase: one random pick, then rules again. ---
        let mut picked = false;
        while !pool.is_empty() {
            let i = rng.gen_range(0..pool.len());
            let x = pool.swap_remove(i);
            if !x_alive[x as usize] {
                continue;
            }
            let roots = distinct_roots!(x);
            if roots.is_empty() {
                x_alive[x as usize] = false;
                continue;
            }
            let (r, y_orig) = roots[rng.gen_range(0..roots.len())];
            do_match!(x, r, y_orig);
            picked = true;
            break;
        }
        if !picked && !progressed {
            break;
        }
    }

    // --- Expansion: resolve contractions in reverse. ---
    // matched_leaf_under[node]: the original Y vertex through which the
    // subtree rooted at `node` is matched, if any.
    let mut matched_leaf: Vec<VertexId> = vec![NONE; node_parent.len()];
    let mut mate_y: Vec<VertexId> = vec![NONE; ny];
    let mut mate_x: Vec<VertexId> = vec![NONE; nx];
    // Seed from the super-vertex matching: walk from the matched leaf up
    // to the forest root, labelling every ancestor.
    let label_up = |leaf: VertexId, matched_leaf: &mut Vec<VertexId>, node_parent: &[u32]| {
        let mut node = leaf;
        loop {
            matched_leaf[node as usize] = leaf;
            let p = node_parent[node as usize];
            if p == u32::MAX {
                break;
            }
            node = p;
        }
    };
    for &(x, _root, y_orig) in &matched {
        mate_x[x as usize] = y_orig;
        mate_y[y_orig as usize] = x;
        label_up(y_orig, &mut matched_leaf, &node_parent);
    }
    for c in contractions.iter().rev() {
        let merged_match = matched_leaf[c.node_merged as usize];
        let under_first =
            merged_match != NONE && matched_leaf[c.node_first as usize] == merged_match;
        debug_assert!(
            !(under_first && matched_leaf[c.node_second as usize] == merged_match),
            "matched leaf cannot sit under both halves"
        );
        let y = if merged_match == NONE || !under_first {
            c.y_to_first
        } else {
            c.y_to_second
        };
        debug_assert_eq!(mate_y[y as usize], NONE, "expansion double-matched y{y}");
        mate_x[c.x as usize] = y;
        mate_y[y as usize] = c.x;
        // The chosen half is now matched through `y`: propagate downward
        // by labelling `y`'s chain (it stops mattering above node_merged,
        // which is already resolved).
        label_up(y, &mut matched_leaf, &node_parent);
    }

    Matching::from_mates(mate_x, mate_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::is_maximal;
    use crate::verify::is_maximum;

    #[test]
    fn ks2_simple_path() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let m = karp_sipser_two(&g, 1);
        assert!(m.validate(&g).is_ok());
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn ks2_pure_degree2_cycle_is_optimal() {
        // A single even cycle: every x has degree 2, so KS2 resolves the
        // whole instance by contraction and must reach the perfect
        // matching.
        let n = 24;
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            edges.push((i, i));
            edges.push((i, (i + 1) % n as VertexId));
        }
        let g = BipartiteCsr::from_edges(n, n, &edges);
        let m = karp_sipser_two(&g, 3);
        assert!(m.validate(&g).is_ok());
        assert_eq!(
            m.cardinality(),
            n,
            "degree-2 rule must solve the cycle exactly"
        );
        assert!(is_maximum(&g, &m));
    }

    #[test]
    fn ks2_chain_of_contractions() {
        // Long chain: alternating degree-1/degree-2 opportunities.
        let k = 60;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let m = karp_sipser_two(&g, 7);
        assert!(m.validate(&g).is_ok());
        assert_eq!(m.cardinality(), k);
    }

    #[test]
    fn ks2_never_worse_than_valid_maximal() {
        for seed in 0..8 {
            let g = crate::tests_support::random_graph(60, 60, 200, seed);
            let m = karp_sipser_two(&g, seed);
            assert!(m.validate(&g).is_ok(), "seed {seed}");
            assert!(is_maximal(&g, &m), "seed {seed}");
            let max = crate::hopcroft_karp(&g, Matching::for_graph(&g))
                .matching
                .cardinality();
            assert!(2 * m.cardinality() >= max, "below half at seed {seed}");
        }
    }

    #[test]
    fn ks2_deterministic() {
        let g = crate::tests_support::random_graph(50, 50, 150, 9);
        assert_eq!(karp_sipser_two(&g, 4), karp_sipser_two(&g, 4));
    }

    #[test]
    fn ks2_beats_or_ties_ks1_on_two_core_instances() {
        // Union of three random permutations: 3-regular, pure 2-core
        // after no degree-1 vertices exist. KS2's contraction shines here.
        let n = 400;
        let mut wins = 0;
        let mut total_ks1 = 0usize;
        let mut total_ks2 = 0usize;
        for seed in 0..5 {
            let mut edges = Vec::new();
            for k in 0..3u64 {
                let perm = graft_graph::random_permutation_with(n, seed * 31 + k);
                for (x, &y) in perm.iter().enumerate() {
                    edges.push((x as VertexId, y));
                }
            }
            let g = BipartiteCsr::from_edges(n, n, &edges);
            let ks1 = crate::init::karp_sipser(&g, seed).cardinality();
            let ks2 = karp_sipser_two(&g, seed).cardinality();
            total_ks1 += ks1;
            total_ks2 += ks2;
            if ks2 >= ks1 {
                wins += 1;
            }
        }
        assert!(
            total_ks2 >= total_ks1,
            "KS2 ({total_ks2}) should not lose to KS1 ({total_ks1}) in aggregate"
        );
        assert!(wins >= 3, "KS2 should win or tie most seeds, got {wins}/5");
    }

    #[test]
    fn ks2_empty_and_isolated() {
        let g = BipartiteCsr::from_edges(0, 0, &[]);
        assert_eq!(karp_sipser_two(&g, 0).cardinality(), 0);
        let g = BipartiteCsr::from_edges(4, 4, &[(1, 2)]);
        let m = karp_sipser_two(&g, 0);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_x(1), 2);
    }

    #[test]
    fn ks2_parallel_multi_edges_to_same_root() {
        // x1 has two edges into what becomes one super-vertex: its
        // effective degree is 1, so the degree-1 rule must fire, not the
        // contraction.
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let m = karp_sipser_two(&g, 2);
        assert!(m.validate(&g).is_ok());
        assert!(is_maximal(&g, &m));
    }
}
