//! The Karp-Sipser maximal-matching initializer, plus a CAS-based parallel
//! greedy initializer.
//!
//! Karp-Sipser repeatedly applies the **degree-1 rule**: a vertex with
//! exactly one unmatched neighbor is matched to that neighbor (this is
//! always optimal — some maximum matching contains that edge). When no
//! degree-1 vertex exists, a random unmatched vertex is matched to a random
//! unmatched neighbor. The paper uses this as the initializer for every
//! algorithm it evaluates (§II-B), citing Duff et al.'s finding that it is
//! among the best initializers for cardinality matching.

use crate::Matching;
use graft_graph::{BipartiteCsr, VertexId, NONE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    X,
    Y,
}

/// Karp-Sipser maximal matching with the degree-1 rule and seeded random
/// edge selection. Runs in `O(n + m)` amortized.
///
/// Deterministic for a fixed `(g, seed)` pair, which the experiment harness
/// relies on for reproducibility.
///
/// ```
/// use graft_core::init::karp_sipser;
/// use graft_graph::BipartiteCsr;
///
/// let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
/// let m = karp_sipser(&g, 42);
/// // The degree-1 rule matches x0 to its only neighbor first, so KS
/// // finds the perfect matching here.
/// assert_eq!(m.cardinality(), 2);
/// ```
pub fn karp_sipser(g: &BipartiteCsr, seed: u64) -> Matching {
    let nx = g.num_x();
    let ny = g.num_y();
    let mut m = Matching::for_graph(g);
    // deg[v] = current number of *unmatched* neighbors of v.
    let mut deg_x: Vec<u32> = (0..nx).map(|x| g.x_degree(x as VertexId) as u32).collect();
    let mut deg_y: Vec<u32> = (0..ny).map(|y| g.y_degree(y as VertexId) as u32).collect();

    let mut q1: VecDeque<(Side, VertexId)> = VecDeque::new();
    for (x, &d) in deg_x.iter().enumerate() {
        if d == 1 {
            q1.push_back((Side::X, x as VertexId));
        }
    }
    for (y, &d) in deg_y.iter().enumerate() {
        if d == 1 {
            q1.push_back((Side::Y, y as VertexId));
        }
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    // Pool of X vertices to consider in the random phase. Every edge has an
    // X endpoint, so exhausting this pool certifies maximality.
    let mut pool: Vec<VertexId> = (0..nx as VertexId)
        .filter(|&x| deg_x[x as usize] > 0)
        .collect();

    // Matches (x, y) and maintains effective degrees, feeding the
    // degree-1 queue.
    macro_rules! do_match {
        ($m:ident, $x:expr, $y:expr, $deg_x:ident, $deg_y:ident, $q1:ident) => {{
            let (x, y) = ($x, $y);
            $m.match_pair(x, y);
            for &ny_ in g.x_neighbors(x) {
                if !$m.is_y_matched(ny_) {
                    $deg_y[ny_ as usize] -= 1;
                    if $deg_y[ny_ as usize] == 1 {
                        $q1.push_back((Side::Y, ny_));
                    }
                }
            }
            for &nx_ in g.y_neighbors(y) {
                if !$m.is_x_matched(nx_) {
                    $deg_x[nx_ as usize] -= 1;
                    if $deg_x[nx_ as usize] == 1 {
                        $q1.push_back((Side::X, nx_));
                    }
                }
            }
        }};
    }

    loop {
        // Degree-1 rule to exhaustion.
        while let Some((side, v)) = q1.pop_front() {
            match side {
                Side::X => {
                    if m.is_x_matched(v) || deg_x[v as usize] != 1 {
                        continue;
                    }
                    let y = g
                        .x_neighbors(v)
                        .iter()
                        .copied()
                        .find(|&y| !m.is_y_matched(y))
                        .expect("degree counter promised an unmatched neighbor");
                    do_match!(m, v, y, deg_x, deg_y, q1);
                }
                Side::Y => {
                    if m.is_y_matched(v) || deg_y[v as usize] != 1 {
                        continue;
                    }
                    let x = g
                        .y_neighbors(v)
                        .iter()
                        .copied()
                        .find(|&x| !m.is_x_matched(x))
                        .expect("degree counter promised an unmatched neighbor");
                    do_match!(m, x, v, deg_x, deg_y, q1);
                }
            }
        }

        // Random phase: pick a random live X vertex and a random unmatched
        // neighbor.
        let mut matched_one = false;
        while !pool.is_empty() {
            let i = rng.gen_range(0..pool.len());
            let x = pool.swap_remove(i);
            if m.is_x_matched(x) || deg_x[x as usize] == 0 {
                continue;
            }
            let unmatched: Vec<VertexId> = g
                .x_neighbors(x)
                .iter()
                .copied()
                .filter(|&y| !m.is_y_matched(y))
                .collect();
            debug_assert_eq!(unmatched.len() as u32, deg_x[x as usize]);
            let y = unmatched[rng.gen_range(0..unmatched.len())];
            do_match!(m, x, y, deg_x, deg_y, q1);
            matched_one = true;
            break;
        }
        if !matched_one {
            break;
        }
    }
    m
}

/// Lock-free parallel greedy maximal matching: every `X` vertex races to
/// claim its first unmatched neighbor with a `compare_exchange` on the
/// `Y`-side mate array.
///
/// After the sweep no edge has two unmatched endpoints (any `y` that an
/// unmatched `x` scanned was already claimed, and claims are never
/// released), so the result is maximal. Used as the initializer for the
/// parallel solvers when Karp-Sipser's serial phase would dominate.
pub fn parallel_greedy_maximal(g: &BipartiteCsr) -> Matching {
    use rayon::prelude::*;
    let ny = g.num_y();
    let mate_y: Vec<AtomicU32> = (0..ny).map(|_| AtomicU32::new(NONE)).collect();
    let mate_x: Vec<VertexId> = (0..g.num_x() as VertexId)
        .into_par_iter()
        .map(|x| {
            for &y in g.x_neighbors(x) {
                // Cheap non-atomic-looking pre-check (paper idiom: test
                // before CAS to avoid wasted atomics).
                if mate_y[y as usize].load(Ordering::Relaxed) != NONE {
                    continue;
                }
                if mate_y[y as usize]
                    .compare_exchange(NONE, x, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return y;
                }
            }
            NONE
        })
        .collect();
    let mate_y: Vec<VertexId> = mate_y.into_iter().map(|a| a.into_inner()).collect();
    Matching::from_mates(mate_x, mate_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::is_maximal;

    fn crown(k: usize) -> BipartiteCsr {
        // Perfect matching exists: (i, i); plus distracting edges (i, i+1).
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if (i as usize) < k - 1 {
                edges.push((i, i + 1));
            }
        }
        BipartiteCsr::from_edges(k, k, &edges)
    }

    #[test]
    fn ks_is_valid_and_maximal() {
        let g = crown(50);
        let m = karp_sipser(&g, 1);
        assert!(m.validate(&g).is_ok());
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn ks_deterministic_per_seed() {
        let g = crown(64);
        let a = karp_sipser(&g, 7);
        let b = karp_sipser(&g, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn ks_degree_one_rule_finds_perfect_matching_on_path() {
        // A path x0-y0-x1-y1-...-x(k-1)-y(k-1): degree-1 cascade should
        // recover the unique perfect matching without any random picks.
        let k = 20;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let m = karp_sipser(&g, 0);
        assert_eq!(m.cardinality(), k);
    }

    #[test]
    fn ks_handles_isolated_vertices() {
        let g = BipartiteCsr::from_edges(5, 5, &[(0, 0), (1, 1)]);
        let m = karp_sipser(&g, 3);
        assert_eq!(m.cardinality(), 2);
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn ks_empty_graph() {
        let g = BipartiteCsr::from_edges(0, 0, &[]);
        assert_eq!(karp_sipser(&g, 0).cardinality(), 0);
    }

    #[test]
    fn ks_star() {
        // Hub x0 with 5 leaves: degree-1 rule fires on the leaves.
        let g = BipartiteCsr::from_edges(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]);
        let m = karp_sipser(&g, 0);
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn parallel_greedy_is_valid_and_maximal() {
        let g = crown(100);
        let m = parallel_greedy_maximal(&g);
        assert!(m.validate(&g).is_ok());
        assert!(is_maximal(&g, &m));
        assert!(m.cardinality() >= 50); // ≥ half of maximum (100)
    }

    #[test]
    fn parallel_greedy_empty() {
        let g = BipartiteCsr::from_edges(3, 0, &[]);
        assert_eq!(parallel_greedy_maximal(&g).cardinality(), 0);
    }

    #[test]
    fn ks_at_least_half_of_maximum_on_crown() {
        let g = crown(40);
        let m = karp_sipser(&g, 11);
        assert!(m.cardinality() >= 20);
    }
}
