//! Greedy maximal matching initializers (serial and parallel).

use crate::Matching;
use graft_graph::{BipartiteCsr, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// First-fit greedy maximal matching: scan `X` vertices in id order and
/// match each to its first unmatched neighbor.
///
/// Runs in `O(n + m)`; guarantees at least half the maximum cardinality
/// (standard maximal-matching bound), which the property tests check.
pub fn greedy_maximal(g: &BipartiteCsr) -> Matching {
    let mut m = Matching::for_graph(g);
    for x in 0..g.num_x() as VertexId {
        for &y in g.x_neighbors(x) {
            if !m.is_y_matched(y) {
                m.match_pair(x, y);
                break;
            }
        }
    }
    m
}

/// Random-order greedy maximal matching: visit `X` vertices in a seeded
/// random order and match each to a uniformly random unmatched neighbor.
///
/// Unlike Karp-Sipser (whose degree-1 rule solves many synthetic
/// instances outright), random greedy leaves a realistic 5-15% residual on
/// every graph class, which is what the experiment harness uses to
/// exercise the maximum-matching phase dynamics (see DESIGN.md §5).
pub fn random_greedy(g: &BipartiteCsr, seed: u64) -> Matching {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matching::for_graph(g);
    let mut order: Vec<VertexId> = (0..g.num_x() as VertexId).collect();
    order.shuffle(&mut rng);
    let mut free: Vec<VertexId> = Vec::new();
    for x in order {
        free.clear();
        free.extend(
            g.x_neighbors(x)
                .iter()
                .copied()
                .filter(|&y| !m.is_y_matched(y)),
        );
        if !free.is_empty() {
            m.match_pair(x, free[rng.gen_range(0..free.len())]);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::is_maximal;

    #[test]
    fn greedy_on_path() {
        // x0-y0, x1-y0, x1-y1: greedy matches (0,0) then (1,1): maximal and
        // in fact maximum here.
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let m = greedy_maximal(&g);
        assert_eq!(m.cardinality(), 2);
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn greedy_can_be_suboptimal_but_half() {
        // Crown: greedy may pick the "wrong" middle edge but stays ≥ 1/2.
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = greedy_maximal(&g);
        assert!(m.cardinality() >= 1);
        assert!(is_maximal(&g, &m));
    }

    #[test]
    fn greedy_empty_and_isolated() {
        let g = BipartiteCsr::from_edges(4, 4, &[]);
        assert_eq!(greedy_maximal(&g).cardinality(), 0);
    }

    #[test]
    fn random_greedy_valid_maximal_deterministic() {
        let g = BipartiteCsr::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (2, 2),
                (2, 3),
                (3, 3),
                (4, 4),
                (4, 0),
            ],
        );
        let a = random_greedy(&g, 9);
        let b = random_greedy(&g, 9);
        assert_eq!(a, b);
        assert!(a.validate(&g).is_ok());
        assert!(crate::init::is_maximal(&g, &a));
    }

    #[test]
    fn random_greedy_differs_by_seed_eventually() {
        // On a contested graph, different seeds give different matchings
        // for at least one seed pair.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            for y in 0..20u32 {
                if (x + y) % 3 != 0 {
                    edges.push((x, y));
                }
            }
        }
        let g = BipartiteCsr::from_edges(20, 20, &edges);
        let base = random_greedy(&g, 0);
        assert!((1..10).any(|s| random_greedy(&g, s) != base));
    }

    #[test]
    fn greedy_complete_bipartite() {
        let mut edges = Vec::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                edges.push((x, y));
            }
        }
        let g = BipartiteCsr::from_edges(4, 4, &edges);
        assert_eq!(greedy_maximal(&g).cardinality(), 4);
    }
}
