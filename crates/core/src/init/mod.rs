//! Maximal-matching initializers.
//!
//! Maximum matching algorithms are much faster when started from a good
//! maximal matching: the paper initializes **all** algorithms with
//! Karp-Sipser (§II-B), citing it as one of the best initializers for
//! cardinality matching. A simple greedy initializer is provided for
//! ablation, and [`Initializer::None`] starts from the empty matching.

mod greedy;
mod karp_sipser;
mod karp_sipser_two;

pub use greedy::{greedy_maximal, random_greedy};
pub use karp_sipser::{karp_sipser, parallel_greedy_maximal};
pub use karp_sipser_two::karp_sipser_two;

use crate::Matching;
use graft_graph::BipartiteCsr;

/// Which initial maximal matching to compute before the maximum-matching
/// search starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Initializer {
    /// Start from the empty matching.
    None,
    /// Greedy maximal matching (first-fit in vertex order).
    Greedy,
    /// Greedy with seeded random vertex order and random neighbor choice —
    /// leaves a realistic residual on every graph class, which the
    /// experiment harness uses to exercise the phase dynamics.
    RandomGreedy,
    /// Karp-Sipser with the degree-1 rule and seeded random picks — the
    /// paper's choice.
    #[default]
    KarpSipser,
    /// Karp-Sipser with both the degree-1 and degree-2 (contraction)
    /// rules — the stronger KS2 variant of Duff, Kaya & Uçar.
    KarpSipserTwo,
}

impl Initializer {
    /// Computes the initial matching for `g`. `seed` only affects
    /// [`Initializer::KarpSipser`].
    pub fn run(self, g: &BipartiteCsr, seed: u64) -> Matching {
        match self {
            Initializer::None => Matching::for_graph(g),
            Initializer::Greedy => greedy_maximal(g),
            Initializer::RandomGreedy => random_greedy(g, seed),
            Initializer::KarpSipser => karp_sipser(g, seed),
            Initializer::KarpSipserTwo => karp_sipser_two(g, seed),
        }
    }

    /// Parses the names used by the harness `--init` flag.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(Initializer::None),
            "greedy" => Some(Initializer::Greedy),
            "random-greedy" | "randomgreedy" => Some(Initializer::RandomGreedy),
            "karp-sipser" | "karpsipser" | "ks" => Some(Initializer::KarpSipser),
            "karp-sipser-2" | "karpsipser2" | "ks2" => Some(Initializer::KarpSipserTwo),
            _ => None,
        }
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Initializer::None => "none",
            Initializer::Greedy => "greedy",
            Initializer::RandomGreedy => "random-greedy",
            Initializer::KarpSipser => "karp-sipser",
            Initializer::KarpSipserTwo => "karp-sipser-2",
        }
    }
}

/// Asserts (in tests) that `m` is maximal in `g`: no edge has both
/// endpoints unmatched.
pub fn is_maximal(g: &BipartiteCsr, m: &Matching) -> bool {
    g.edges()
        .all(|(x, y)| m.is_x_matched(x) || m.is_y_matched(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializer_dispatch() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]);
        assert_eq!(Initializer::None.run(&g, 0).cardinality(), 0);
        let gm = Initializer::Greedy.run(&g, 0);
        let km = Initializer::KarpSipser.run(&g, 0);
        assert!(is_maximal(&g, &gm));
        assert!(is_maximal(&g, &km));
        assert!(gm.validate(&g).is_ok());
        assert!(km.validate(&g).is_ok());
    }

    #[test]
    fn names() {
        assert_eq!(Initializer::KarpSipser.name(), "karp-sipser");
        assert_eq!(Initializer::default(), Initializer::KarpSipser);
    }
}
