//! Instrumentation shared by all matching algorithms.
//!
//! The paper evaluates algorithms on hardware-independent counters as well
//! as wall-clock time:
//!
//! * **Fig. 1a** — number of traversed edges;
//! * **Fig. 1b** — number of phases;
//! * **Fig. 1c** — average augmenting path length;
//! * **Fig. 4** — search rate in MTEPS (traversed edges / second);
//! * **Fig. 6** — per-step runtime breakdown (TopDown, BottomUp, Augment,
//!   Tree-Grafting, Statistics);
//! * **Fig. 8** — frontier size per BFS level per phase.
//!
//! Every solver in this crate fills in a [`SearchStats`]; counters that do
//! not apply to an algorithm stay zero.

use std::time::Duration;

/// The step of the MS-BFS-Graft phase a time sample belongs to (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Top-down BFS expansion of the frontier.
    TopDown,
    /// Bottom-up BFS expansion over unvisited `Y` vertices.
    BottomUp,
    /// Augmenting the matching along discovered paths.
    Augment,
    /// Constructing the next frontier by tree grafting.
    Graft,
    /// Collecting the activeX/activeY/renewableY statistics that drive the
    /// grafting decision (lines 2–4 of Algorithm 7).
    Statistics,
    /// Anything else (allocation, initialization of pointer arrays, ...).
    Other,
}

/// Wall-clock time attributed to each step (Fig. 6).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Time in top-down BFS traversal.
    pub top_down: Duration,
    /// Time in bottom-up BFS traversal.
    pub bottom_up: Duration,
    /// Time augmenting the matching.
    pub augment: Duration,
    /// Time grafting / rebuilding frontiers.
    pub graft: Duration,
    /// Time gathering grafting statistics.
    pub statistics: Duration,
    /// Unattributed time.
    pub other: Duration,
}

impl Breakdown {
    /// Adds `d` to the bucket for `step`.
    pub fn add(&mut self, step: Step, d: Duration) {
        match step {
            Step::TopDown => self.top_down += d,
            Step::BottomUp => self.bottom_up += d,
            Step::Augment => self.augment += d,
            Step::Graft => self.graft += d,
            Step::Statistics => self.statistics += d,
            Step::Other => self.other += d,
        }
    }

    /// Total attributed time.
    pub fn total(&self) -> Duration {
        self.top_down + self.bottom_up + self.augment + self.graft + self.statistics + self.other
    }

    /// Time in graph search (top-down + bottom-up), the numerator of the
    /// "at least 40% of the time is spent on the BFS traversal"
    /// observation in §V-E and the Fig. 9 search-time fraction.
    pub fn search_time(&self) -> Duration {
        self.top_down + self.bottom_up
    }

    /// Fractions of total time per step, in Fig. 6's stacking order
    /// `[TopDown, BottomUp, Augment, Graft, Statistics, Other]`.
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.top_down.as_secs_f64() / t,
            self.bottom_up.as_secs_f64() / t,
            self.augment.as_secs_f64() / t,
            self.graft.as_secs_f64() / t,
            self.statistics.as_secs_f64() / t,
            self.other.as_secs_f64() / t,
        ]
    }
}

/// One frontier-size sample: level `level` of phase `phase` contained
/// `size` `X` vertices (Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierSample {
    /// Phase number, starting at 1.
    pub phase: u32,
    /// BFS level within the phase, starting at 0.
    pub level: u32,
    /// Number of `X` vertices in the frontier at this level.
    pub size: usize,
    /// Whether this level ran bottom-up (`true`) or top-down (`false`).
    pub bottom_up: bool,
}

/// Summary of one phase of an MS-BFS engine (recorded when
/// `record_phases` is enabled): the anatomy behind Figs. 7 and 8 —
/// which phases grafted, how much forest each rebuilt, and what each
/// phase paid and gained.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTrace {
    /// Phase number, starting at 1.
    pub phase: u32,
    /// BFS levels executed in this phase.
    pub levels: u32,
    /// How many of those levels ran bottom-up.
    pub bottom_up_levels: u32,
    /// Peak frontier size over the phase's levels.
    pub frontier_peak: usize,
    /// Edges traversed during this phase (BFS + grafting).
    pub edges_traversed: u64,
    /// Augmenting paths applied at the end of the phase.
    pub augmenting_paths: u64,
    /// Total length in edges of those paths.
    pub path_edges: u64,
    /// `|activeX|` at the grafting decision (Algorithm 7 line 2).
    pub active_x: usize,
    /// `|renewableY|` at the grafting decision.
    pub renewable_y: usize,
    /// Whether the next frontier was built by grafting (`true`) or by
    /// destroying the forest (`false`). Meaningless for the final phase.
    pub grafted: bool,
}

/// Counters and timings collected during one solver run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Directed edges inspected during searches (each scan of an adjacency
    /// entry counts once, matching the paper's TEPS accounting).
    pub edges_traversed: u64,
    /// Number of phases (repeat-until iterations for MS algorithms, number
    /// of single-source searches for SS algorithms).
    pub phases: u32,
    /// Number of augmenting paths applied.
    pub augmenting_paths: u64,
    /// Total length (in edges) of all applied augmenting paths.
    pub total_augmenting_path_edges: u64,
    /// Cardinality of the initial matching handed to the solver.
    pub initial_cardinality: usize,
    /// Cardinality of the final matching.
    pub final_cardinality: usize,
    /// Wall-clock duration of the solve (excluding initialization).
    pub elapsed: Duration,
    /// Per-step time attribution (meaningful for the MS-BFS engines).
    pub breakdown: Breakdown,
    /// Frontier-size history, recorded when the engine is configured with
    /// `record_frontier = true`.
    pub frontier_history: Vec<FrontierSample>,
    /// Per-phase summaries, recorded when the engine is configured with
    /// `record_phases = true`.
    pub phase_traces: Vec<PhaseTrace>,
    /// Set when the solver stopped at a phase boundary because the
    /// configured deadline ([`MsBfsOptions::deadline`]) passed. The
    /// returned matching is valid but not certified maximum.
    ///
    /// [`MsBfsOptions::deadline`]: crate::MsBfsOptions#structfield.deadline
    pub timed_out: bool,
}

impl SearchStats {
    /// Mean augmenting path length in edges (Fig. 1c), or 0 if no path was
    /// applied.
    pub fn avg_augmenting_path_len(&self) -> f64 {
        if self.augmenting_paths == 0 {
            0.0
        } else {
            self.total_augmenting_path_edges as f64 / self.augmenting_paths as f64
        }
    }

    /// Search rate in millions of traversed edges per second (Fig. 4).
    pub fn mteps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.edges_traversed as f64 / s / 1.0e6
        }
    }

    /// Fraction of attributed time spent in graph search (Fig. 9).
    pub fn search_fraction(&self) -> f64 {
        let t = self.breakdown.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.breakdown.search_time().as_secs_f64() / t
        }
    }

    /// Records one frontier sample.
    pub fn record_frontier(&mut self, phase: u32, level: u32, size: usize, bottom_up: bool) {
        self.frontier_history.push(FrontierSample {
            phase,
            level,
            size,
            bottom_up,
        });
    }

    /// Frontier samples belonging to the given phase.
    pub fn frontier_of_phase(&self, phase: u32) -> Vec<FrontierSample> {
        self.frontier_history
            .iter()
            .copied()
            .filter(|s| s.phase == phase)
            .collect()
    }
}

/// A scoped stopwatch accumulating into a [`Breakdown`] bucket.
///
/// ```
/// use graft_core::stats::{Breakdown, Step, Stopwatch};
/// let mut b = Breakdown::default();
/// {
///     let _t = Stopwatch::start(&mut b, Step::TopDown);
///     // ... timed work ...
/// }
/// assert!(b.top_down >= std::time::Duration::ZERO);
/// ```
pub struct Stopwatch<'a> {
    breakdown: &'a mut Breakdown,
    step: Step,
    started: std::time::Instant,
}

impl<'a> Stopwatch<'a> {
    /// Starts timing `step`.
    pub fn start(breakdown: &'a mut Breakdown, step: Step) -> Self {
        Self {
            breakdown,
            step,
            started: std::time::Instant::now(),
        }
    }
}

impl Drop for Stopwatch<'_> {
    fn drop(&mut self) {
        self.breakdown.add(self.step, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::default();
        b.add(Step::TopDown, Duration::from_millis(30));
        b.add(Step::BottomUp, Duration::from_millis(10));
        b.add(Step::TopDown, Duration::from_millis(10));
        b.add(Step::Augment, Duration::from_millis(15));
        b.add(Step::Graft, Duration::from_millis(15));
        b.add(Step::Statistics, Duration::from_millis(10));
        b.add(Step::Other, Duration::from_millis(10));
        assert_eq!(b.total(), Duration::from_millis(100));
        assert_eq!(b.search_time(), Duration::from_millis(50));
        let f = b.fractions();
        assert!((f[0] - 0.4).abs() < 1e-9);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_of_zero_total() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 6]);
    }

    #[test]
    fn avg_path_length() {
        let mut s = SearchStats::default();
        assert_eq!(s.avg_augmenting_path_len(), 0.0);
        s.augmenting_paths = 4;
        s.total_augmenting_path_edges = 14;
        assert!((s.avg_augmenting_path_len() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn mteps_computation() {
        let mut s = SearchStats {
            edges_traversed: 2_000_000,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((s.mteps() - 2.0).abs() < 1e-9);
        s.elapsed = Duration::ZERO;
        assert_eq!(s.mteps(), 0.0);
    }

    #[test]
    fn frontier_history_by_phase() {
        let mut s = SearchStats::default();
        s.record_frontier(1, 0, 10, false);
        s.record_frontier(1, 1, 20, true);
        s.record_frontier(2, 0, 5, false);
        assert_eq!(s.frontier_of_phase(1).len(), 2);
        assert_eq!(s.frontier_of_phase(2)[0].size, 5);
        assert!(s.frontier_of_phase(3).is_empty());
    }

    #[test]
    fn stopwatch_times_scope() {
        let mut b = Breakdown::default();
        {
            let _t = Stopwatch::start(&mut b, Step::Graft);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(b.graft >= Duration::from_millis(1));
        assert_eq!(b.top_down, Duration::ZERO);
    }

    #[test]
    fn search_fraction() {
        let mut s = SearchStats::default();
        s.breakdown.add(Step::TopDown, Duration::from_millis(60));
        s.breakdown.add(Step::Augment, Duration::from_millis(40));
        assert!((s.search_fraction() - 0.6).abs() < 1e-9);
    }
}
