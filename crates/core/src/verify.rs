//! Independent verification of maximum matchings via König's theorem.
//!
//! For bipartite graphs, König's theorem says the size of a maximum
//! matching equals the size of a minimum vertex cover. Given any matching
//! `M`, an alternating-reachability sweep constructs a candidate cover; if
//! that cover has size `|M|` and covers every edge, then — by weak duality
//! (`|M'| ≤ |C|` for every matching `M'` and cover `C`) — `M` is maximum
//! and the cover is minimum.
//!
//! This gives the test suite a way to certify the output of *every*
//! algorithm in the crate without trusting any of them: the certificate is
//! checked by elementary edge enumeration.

use crate::Matching;
use graft_graph::{BipartiteCsr, VertexId, NONE};

/// A vertex cover of a bipartite graph: a set of `X` and `Y` vertices such
/// that every edge has at least one endpoint in the set.
#[derive(Clone, Debug)]
pub struct VertexCover {
    /// Membership flags for `X` vertices.
    pub in_cover_x: Vec<bool>,
    /// Membership flags for `Y` vertices.
    pub in_cover_y: Vec<bool>,
}

impl VertexCover {
    /// Total number of vertices in the cover.
    pub fn size(&self) -> usize {
        self.in_cover_x.iter().filter(|&&b| b).count()
            + self.in_cover_y.iter().filter(|&&b| b).count()
    }

    /// Checks that every edge of `g` is covered.
    pub fn covers(&self, g: &BipartiteCsr) -> bool {
        g.edges()
            .all(|(x, y)| self.in_cover_x[x as usize] || self.in_cover_y[y as usize])
    }
}

/// Runs the alternating-reachability sweep from unmatched `X` vertices and
/// returns `(reached_x, reached_y)`.
///
/// Reachability follows **unmatched** edges from `X` to `Y` and **matched**
/// edges from `Y` to `X` — i.e. the vertices lying on some `M`-alternating
/// path starting at an unmatched `X` vertex.
pub fn alternating_reachability(g: &BipartiteCsr, m: &Matching) -> (Vec<bool>, Vec<bool>) {
    let mut reached_x = vec![false; g.num_x()];
    let mut reached_y = vec![false; g.num_y()];
    let mut stack: Vec<VertexId> = m.unmatched_x().collect();
    for &x in &stack {
        reached_x[x as usize] = true;
    }
    while let Some(x) = stack.pop() {
        for &y in g.x_neighbors(x) {
            if reached_y[y as usize] {
                continue;
            }
            reached_y[y as usize] = true;
            let mate = m.mate_of_y(y);
            if mate != NONE && !reached_x[mate as usize] {
                reached_x[mate as usize] = true;
                stack.push(mate);
            }
        }
    }
    (reached_x, reached_y)
}

/// Constructs the König cover candidate `C = (X \ R_X) ∪ R_Y` where
/// `(R_X, R_Y)` is the alternating reachability of `m`.
pub fn koenig_cover(g: &BipartiteCsr, m: &Matching) -> VertexCover {
    let (reached_x, reached_y) = alternating_reachability(g, m);
    VertexCover {
        in_cover_x: reached_x.iter().map(|&r| !r).collect(),
        in_cover_y: reached_y,
    }
}

/// Certifies that `m` is a **maximum** matching of `g`.
///
/// Returns the minimum vertex cover witnessing optimality, or a description
/// of the failure: either `m` is structurally invalid, or the candidate
/// cover misses an edge / has the wrong size (which happens exactly when an
/// augmenting path exists, i.e. `m` is not maximum).
pub fn certify_maximum(g: &BipartiteCsr, m: &Matching) -> Result<VertexCover, String> {
    m.validate(g)?;
    let cover = koenig_cover(g, m);
    if !cover.covers(g) {
        // An uncovered edge (x, y) means x is reached and y is not, so the
        // alternating path to x extends to unmatched-or-new y: augmenting
        // path exists.
        return Err("König candidate cover misses an edge: matching is not maximum".into());
    }
    let cs = cover.size();
    if cs != m.cardinality() {
        return Err(format!(
            "cover size {} ≠ matching cardinality {}: matching is not maximum",
            cs,
            m.cardinality()
        ));
    }
    Ok(cover)
}

/// `true` iff `m` is a valid maximum matching of `g`.
pub fn is_maximum(g: &BipartiteCsr, m: &Matching) -> bool {
    certify_maximum(g, m).is_ok()
}

/// A witness that a bipartite graph has no perfect matching on the `X`
/// side: a set `S ⊆ X` with `|N(S)| < |S|` (Hall's condition violated).
///
/// Produced by [`hall_violator`] from a maximum matching; the deficiency
/// `|S| − |N(S)|` equals the number of unmatched `X` vertices, so the
/// witness also *explains* the deficiency exactly.
#[derive(Clone, Debug)]
pub struct HallViolator {
    /// The violating set `S` of `X` vertices.
    pub set_x: Vec<VertexId>,
    /// Its neighborhood `N(S)` in `Y`.
    pub neighborhood_y: Vec<VertexId>,
}

impl HallViolator {
    /// `|S| − |N(S)|`, the certified deficiency.
    pub fn deficiency(&self) -> usize {
        self.set_x.len() - self.neighborhood_y.len()
    }

    /// Checks the witness against `g`: `N(S)` must be exactly the union
    /// of the neighborhoods of `S`, and strictly smaller than `S`.
    pub fn validate(&self, g: &BipartiteCsr) -> Result<(), String> {
        let mut in_n = vec![false; g.num_y()];
        for &y in &self.neighborhood_y {
            in_n[y as usize] = true;
        }
        let mut seen = vec![false; g.num_y()];
        let mut count = 0usize;
        for &x in &self.set_x {
            for &y in g.x_neighbors(x) {
                if !in_n[y as usize] {
                    return Err(format!("edge ({x},{y}) leaves the claimed neighborhood"));
                }
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    count += 1;
                }
            }
        }
        if count != self.neighborhood_y.len() {
            return Err("claimed neighborhood contains non-neighbors".into());
        }
        if self.set_x.len() <= self.neighborhood_y.len() {
            return Err("not a violator: |S| ≤ |N(S)|".into());
        }
        Ok(())
    }
}

/// Extracts a Hall violator from a **maximum** matching that leaves some
/// `X` vertex unmatched, or `None` when `X` is fully matched.
///
/// The construction is the standard one: `S` = the `X` vertices reachable
/// by alternating paths from unmatched `X` vertices; every neighbor of
/// `S` is reached and matched (else the matching would not be maximum),
/// and the matched partners of `N(S)` lie inside `S`, so
/// `|N(S)| = |S| − #unmatched`.
///
/// Panics if `m` is not a maximum matching of `g`.
pub fn hall_violator(g: &BipartiteCsr, m: &Matching) -> Option<HallViolator> {
    assert!(
        is_maximum(g, m),
        "hall_violator requires a maximum matching"
    );
    m.unmatched_x().next()?;
    let (rx, ry) = alternating_reachability(g, m);
    let set_x: Vec<VertexId> = (0..g.num_x() as VertexId)
        .filter(|&x| rx[x as usize])
        .collect();
    let neighborhood_y: Vec<VertexId> = (0..g.num_y() as VertexId)
        .filter(|&y| ry[y as usize])
        .collect();
    Some(HallViolator {
        set_x,
        neighborhood_y,
    })
}

/// Finds one augmenting path if any exists (used by tests to explain
/// non-maximum matchings). Returns the interleaved vertex sequence accepted
/// by [`Matching::augment`], or `None` if `m` is maximum.
pub fn find_augmenting_path(g: &BipartiteCsr, m: &Matching) -> Option<Vec<VertexId>> {
    let mut parent_y: Vec<VertexId> = vec![NONE; g.num_y()];
    let mut visited_y = vec![false; g.num_y()];
    let mut queue: std::collections::VecDeque<VertexId> = m.unmatched_x().collect();
    let mut root_of: Vec<VertexId> = vec![NONE; g.num_x()];
    for &x in &queue {
        root_of[x as usize] = x;
    }
    while let Some(x) = queue.pop_front() {
        for &y in g.x_neighbors(x) {
            if visited_y[y as usize] {
                continue;
            }
            visited_y[y as usize] = true;
            parent_y[y as usize] = x;
            let mate = m.mate_of_y(y);
            if mate == NONE {
                // Reconstruct: walk y → parent x → its mate y' → ...
                let mut path_rev = vec![y];
                let mut cx = x;
                loop {
                    path_rev.push(cx);
                    let py = m.mate_of_x(cx);
                    if py == NONE {
                        break; // cx is the unmatched root
                    }
                    path_rev.push(py);
                    cx = parent_y[py as usize];
                }
                path_rev.reverse();
                return Some(path_rev);
            }
            root_of[mate as usize] = root_of[x as usize];
            queue.push_back(mate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// P4 path: x0-y0-x1-y1 with extra edge; maximum matching = 2.
    fn path_graph() -> BipartiteCsr {
        BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)])
    }

    #[test]
    fn certify_accepts_maximum() {
        let g = path_graph();
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 0);
        m.match_pair(1, 1);
        let cover = certify_maximum(&g, &m).expect("maximum matching must certify");
        assert_eq!(cover.size(), 2);
        assert!(cover.covers(&g));
    }

    #[test]
    fn certify_rejects_non_maximum() {
        let g = path_graph();
        let mut m = Matching::for_graph(&g);
        m.match_pair(1, 0); // blocks x0; matching of size 1, not maximum
        assert!(certify_maximum(&g, &m).is_err());
        assert!(!is_maximum(&g, &m));
    }

    #[test]
    fn empty_graph_certifies() {
        let g = BipartiteCsr::from_edges(3, 3, &[]);
        let m = Matching::for_graph(&g);
        let cover = certify_maximum(&g, &m).unwrap();
        assert_eq!(cover.size(), 0);
    }

    #[test]
    fn augmenting_path_found_and_applied() {
        let g = path_graph();
        let mut m = Matching::for_graph(&g);
        m.match_pair(1, 0);
        let p = find_augmenting_path(&g, &m).expect("augmenting path exists");
        assert_eq!(p.len() % 2, 0);
        assert_eq!(p[0], 0); // starts at the unmatched x0
        m.augment(&p);
        assert_eq!(m.cardinality(), 2);
        assert!(is_maximum(&g, &m));
        assert!(find_augmenting_path(&g, &m).is_none());
    }

    #[test]
    fn star_graph_cover_is_center() {
        // x0 adjacent to all y; maximum matching 1, cover {x0}.
        let g = BipartiteCsr::from_edges(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 3);
        let cover = certify_maximum(&g, &m).unwrap();
        assert_eq!(cover.size(), 1);
        assert!(cover.in_cover_x[0]);
    }

    #[test]
    fn reachability_from_unmatched() {
        let g = path_graph();
        let mut m = Matching::for_graph(&g);
        m.match_pair(1, 0);
        let (rx, ry) = alternating_reachability(&g, &m);
        assert!(rx[0]); // unmatched root
        assert!(ry[0]); // neighbor of x0
        assert!(rx[1]); // mate of y0
        assert!(ry[1]); // neighbor of x1 — unmatched, so augmenting path exists
    }

    #[test]
    fn hall_violator_on_deficient_graph() {
        // 3 X vertices sharing one Y vertex: deficiency 2.
        let g = BipartiteCsr::from_edges(3, 2, &[(0, 0), (1, 0), (2, 0)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 0);
        let w = hall_violator(&g, &m).expect("deficient graph has a violator");
        assert!(w.validate(&g).is_ok());
        assert_eq!(w.deficiency(), 2);
        assert_eq!(w.set_x.len(), 3);
        assert_eq!(w.neighborhood_y, vec![0]);
    }

    #[test]
    fn hall_violator_none_when_x_saturated() {
        let g = BipartiteCsr::from_edges(2, 3, &[(0, 0), (1, 1), (1, 2)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 0);
        m.match_pair(1, 1);
        assert!(hall_violator(&g, &m).is_none());
    }

    #[test]
    fn hall_violator_deficiency_matches_unmatched_count() {
        // Two disjoint scarce groups.
        let g = BipartiteCsr::from_edges(
            6,
            3,
            &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (4, 2), (5, 2)],
        );
        let m = crate::hopcroft_karp(&g, Matching::for_graph(&g)).matching;
        let unmatched = g.num_x() - m.cardinality();
        let w = hall_violator(&g, &m).unwrap();
        assert!(w.validate(&g).is_ok());
        assert_eq!(w.deficiency(), unmatched);
    }

    #[test]
    fn hall_violator_rejects_bad_witness() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let w = HallViolator {
            set_x: vec![0, 1],
            neighborhood_y: vec![0],
        };
        assert!(w.validate(&g).is_err()); // edge (1,1) leaves neighborhood
        let w2 = HallViolator {
            set_x: vec![0],
            neighborhood_y: vec![0],
        };
        assert!(w2.validate(&g).is_err()); // not a violator
    }

    #[test]
    fn invalid_matching_rejected() {
        let g = path_graph();
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 1); // (0,1) is not an edge
        assert!(certify_maximum(&g, &m).is_err());
    }
}
