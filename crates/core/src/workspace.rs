//! Reusable per-solve buffers: the [`SolveWorkspace`].
//!
//! The paper's scalability argument hinges on keeping the hot loop out of
//! the allocator (§III-B: thread-private queues that "fit in the local
//! cache"), yet a naive engine rebuilds every per-vertex array — `parent`,
//! `root`, `leaf`, `visited`, the frontier vectors — from scratch on every
//! solve. A resident service (`graft-svc`) pays that cost on every warm
//! request. The workspace owns those arrays across solves, so a warm
//! solve performs **zero heap allocations** in the serial engines
//! (locked by `tests/workspace_alloc.rs`).
//!
//! ## The epoch trick: reuse without O(n) clears
//!
//! Recycling buffers is only a win if it does not trade the allocation
//! for an O(n) `memset` per solve. Every per-vertex mark is therefore
//! *versioned* by a solve epoch that advances at the start of each solve:
//!
//! * `visited[y]` stores the epoch in which `y` was visited; `y` is
//!   visited iff `visited[y] == epoch`, and un-visiting writes `0`
//!   (epoch `0` is never issued).
//! * `root[x]` and `leaf[x]` are read for *arbitrary* vertices (per edge
//!   in the bottom-up step), so they cannot be guarded by a visited
//!   check. They are packed as `(epoch << 32) | value` in a `u64`: a
//!   stale entry fails the epoch compare and reads as [`NONE`].
//! * `parent[y]` and the `Y`-side `root[y]` are only ever read behind a
//!   current-epoch visited check, so they need no versioning at all —
//!   stale values are unreachable, even across solves on *different*
//!   graphs (where a stale id could otherwise be out of range).
//!
//! When the epoch counter would wrap (once per 2³² solves), the marks are
//! fully cleared once and the epoch restarts — amortized cost zero.
//!
//! ## Scope
//!
//! The serial engines (MS-BFS in all three configurations, Pothen-Fan,
//! serial push-relabel) run allocation-free on a warm workspace. The
//! parallel MS-BFS-Graft engine reuses its large atomic per-vertex
//! arrays, but its fold/reduce frontier accumulators are inherently
//! allocating, as are the other parallel solvers and the single-source
//! baselines; those either reuse what they can or ignore the workspace
//! (see [`crate::solve_from_in`]).

use graft_graph::{VertexId, NONE};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64};

/// Packs `value` under `epoch` for the versioned `root`/`leaf` arrays.
#[inline]
pub(crate) fn pack(epoch: u32, value: VertexId) -> u64 {
    (u64::from(epoch) << 32) | u64::from(value)
}

/// Reads a packed entry: the stored value if it belongs to `epoch`,
/// otherwise [`NONE`] (the entry is stale from an earlier solve).
#[inline]
pub(crate) fn unpack(epoch: u32, packed: u64) -> VertexId {
    if (packed >> 32) as u32 == epoch {
        packed as VertexId
    } else {
        NONE
    }
}

/// Ensures `v` can hold `want` elements without reallocating.
fn reserve_to<T>(v: &mut Vec<T>, want: usize) {
    if v.capacity() < want {
        v.reserve(want - v.len());
    }
}

/// Buffers of the serial MS-BFS engine (all three Fig. 7 configurations).
#[derive(Debug, Default)]
pub(crate) struct MsBuffers {
    /// Current solve epoch; `0` means "never used".
    pub(crate) epoch: u32,
    /// `visited[y] == epoch` ⇔ `y` is in some tree this phase.
    pub(crate) visited: Vec<u32>,
    /// `X` parent of `y`; read only behind a visited check.
    pub(crate) parent_y: Vec<VertexId>,
    /// Tree root of `y`; read only behind a visited check.
    pub(crate) root_y: Vec<VertexId>,
    /// Epoch-packed tree root of `x` (read per edge — cannot be guarded).
    pub(crate) root_x: Vec<u64>,
    /// Epoch-packed augmenting-path endpoint of the tree rooted at `x`.
    pub(crate) leaf: Vec<u64>,
    /// Current BFS frontier (ping-pongs with `next`).
    pub(crate) frontier: Vec<VertexId>,
    /// Next BFS frontier (ping-pongs with `frontier`).
    pub(crate) next: Vec<VertexId>,
    /// Cached unvisited-`Y` list for bottom-up levels.
    pub(crate) unvisited: Vec<VertexId>,
    /// Whether `unvisited` is a valid superset for the current phase.
    pub(crate) unvisited_valid: bool,
    /// Renewable `Y` vertices gathered by the frontier rebuild.
    pub(crate) renewable: Vec<VertexId>,
    /// Augmenting-path reconstruction buffer.
    pub(crate) path: Vec<VertexId>,
}

impl MsBuffers {
    /// Starts a solve on an `nx`×`ny` graph: advances the epoch (every
    /// mark from earlier solves becomes stale) and grows the buffers.
    /// No O(n) clear happens except on the 2³²-solve epoch wrap.
    pub(crate) fn begin_solve(&mut self, nx: usize, ny: usize) {
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.root_x.iter_mut().for_each(|v| *v = 0);
            self.leaf.iter_mut().for_each(|v| *v = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.visited.len() < ny {
            self.visited.resize(ny, 0);
            self.parent_y.resize(ny, NONE);
            self.root_y.resize(ny, NONE);
        }
        if self.root_x.len() < nx {
            self.root_x.resize(nx, 0);
            self.leaf.resize(nx, 0);
        }
        // Frontier capacities are reserved up front rather than left to
        // amortized growth: `frontier`/`next` swap roles every level, so
        // a buffer can face a larger level in solve k+1 than it ever held
        // in solve k even on the identical instance — which would
        // reallocate on the warm path.
        reserve_to(&mut self.frontier, nx);
        reserve_to(&mut self.next, nx);
        reserve_to(&mut self.unvisited, ny);
        reserve_to(&mut self.renewable, ny);
        // An augmenting path alternates X and Y vertices, so its length
        // is bounded by twice the smaller side plus the free endpoint.
        reserve_to(&mut self.path, 2 * nx.min(ny) + 1);
        self.unvisited_valid = false;
        self.frontier.clear();
        self.next.clear();
        self.unvisited.clear();
        self.renewable.clear();
        self.path.clear();
    }

    #[inline]
    pub(crate) fn is_visited(&self, y: VertexId) -> bool {
        self.visited[y as usize] == self.epoch
    }

    #[inline]
    pub(crate) fn set_visited(&mut self, y: VertexId) {
        self.visited[y as usize] = self.epoch;
    }

    #[inline]
    pub(crate) fn unvisit(&mut self, y: VertexId) {
        self.visited[y as usize] = 0;
    }

    #[inline]
    pub(crate) fn root_of_x(&self, x: VertexId) -> VertexId {
        unpack(self.epoch, self.root_x[x as usize])
    }

    #[inline]
    pub(crate) fn set_root_x(&mut self, x: VertexId, root: VertexId) {
        self.root_x[x as usize] = pack(self.epoch, root);
    }

    #[inline]
    pub(crate) fn clear_root_x(&mut self, x: VertexId) {
        self.root_x[x as usize] = 0;
    }

    #[inline]
    pub(crate) fn leaf_of(&self, x: VertexId) -> VertexId {
        unpack(self.epoch, self.leaf[x as usize])
    }

    #[inline]
    pub(crate) fn set_leaf(&mut self, x: VertexId, y: VertexId) {
        self.leaf[x as usize] = pack(self.epoch, y);
    }

    #[inline]
    pub(crate) fn clear_leaf(&mut self, x: VertexId) {
        self.leaf[x as usize] = 0;
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.visited.capacity() * size_of::<u32>()
            + (self.parent_y.capacity() + self.root_y.capacity()) * size_of::<VertexId>()
            + (self.root_x.capacity() + self.leaf.capacity()) * size_of::<u64>()
            + (self.frontier.capacity()
                + self.next.capacity()
                + self.unvisited.capacity()
                + self.renewable.capacity()
                + self.path.capacity())
                * size_of::<VertexId>()
    }
}

/// Buffers of the parallel MS-BFS-Graft engine: the atomic per-vertex
/// arrays, versioned exactly like the serial ones. The visited claim
/// becomes `compare_exchange(observed_stale, epoch)` — a lost race means
/// another task already wrote the current epoch.
#[derive(Debug, Default)]
pub(crate) struct ParBuffers {
    pub(crate) epoch: u32,
    pub(crate) mate_x: Vec<AtomicU32>,
    pub(crate) mate_y: Vec<AtomicU32>,
    pub(crate) visited: Vec<AtomicU32>,
    pub(crate) parent_y: Vec<AtomicU32>,
    pub(crate) root_y: Vec<AtomicU32>,
    pub(crate) root_x: Vec<AtomicU64>,
    pub(crate) leaf: Vec<AtomicU64>,
}

impl ParBuffers {
    /// See [`MsBuffers::begin_solve`]; returns the new epoch.
    pub(crate) fn begin_solve(&mut self, nx: usize, ny: usize) -> u32 {
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v.get_mut() = 0);
            self.root_x.iter_mut().for_each(|v| *v.get_mut() = 0);
            self.leaf.iter_mut().for_each(|v| *v.get_mut() = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.visited.len() < ny {
            self.visited.resize_with(ny, || AtomicU32::new(0));
            self.parent_y.resize_with(ny, || AtomicU32::new(NONE));
            self.root_y.resize_with(ny, || AtomicU32::new(NONE));
            self.mate_y.resize_with(ny, || AtomicU32::new(NONE));
        }
        if self.root_x.len() < nx {
            self.root_x.resize_with(nx, || AtomicU64::new(0));
            self.leaf.resize_with(nx, || AtomicU64::new(0));
            self.mate_x.resize_with(nx, || AtomicU32::new(NONE));
        }
        self.epoch
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.mate_x.capacity()
            + self.mate_y.capacity()
            + self.visited.capacity()
            + self.parent_y.capacity()
            + self.root_y.capacity())
            * size_of::<AtomicU32>()
            + (self.root_x.capacity() + self.leaf.capacity()) * size_of::<AtomicU64>()
    }
}

/// Buffers of the serial Pothen-Fan engine. PF already phase-stamps its
/// visited flags; the workspace extends the stamp with the solve epoch
/// (`(epoch << 32) | phase`) so it survives across solves, and versions
/// the monotone lookahead cursors the same way (`(epoch << 32) | cursor`
/// — a stale cursor reads as 0, restarting the O(m)-total scan).
#[derive(Debug, Default)]
pub(crate) struct PfBuffers {
    pub(crate) epoch: u32,
    /// `visited[y] == pack(epoch, phase)` ⇔ visited in the current phase.
    pub(crate) visited: Vec<u64>,
    /// Epoch-packed monotone lookahead cursor per `X` vertex.
    pub(crate) lookahead: Vec<u64>,
    /// Per-phase DFS roots (the unmatched `X` vertices).
    pub(crate) roots: Vec<VertexId>,
    /// Explicit DFS stack: `(x, scan cursor, y used to enter the frame)`.
    pub(crate) stack: Vec<(VertexId, usize, VertexId)>,
}

impl PfBuffers {
    /// See [`MsBuffers::begin_solve`]; returns the new epoch.
    pub(crate) fn begin_solve(&mut self, nx: usize, ny: usize) -> u32 {
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.lookahead.iter_mut().for_each(|v| *v = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.visited.len() < ny {
            self.visited.resize(ny, 0);
        }
        if self.lookahead.len() < nx {
            self.lookahead.resize(nx, 0);
        }
        // Roots hold at most every X vertex; the DFS stack holds one frame
        // per X vertex on the current alternating path. Reserving up front
        // keeps the warm path off the allocator even when a later solve
        // pushes deeper than any earlier one did.
        reserve_to(&mut self.roots, nx);
        reserve_to(&mut self.stack, nx);
        self.roots.clear();
        self.stack.clear();
        self.epoch
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.visited.capacity() + self.lookahead.capacity()) * size_of::<u64>()
            + self.roots.capacity() * size_of::<VertexId>()
            + self.stack.capacity() * size_of::<(VertexId, usize, VertexId)>()
    }
}

/// Buffers of the serial push-relabel engine. PR needs no epoch trick:
/// every buffer is fully (re)initialized by the solve-opening global
/// relabel, so plain reuse already makes the warm path allocation-free.
#[derive(Debug, Default)]
pub(crate) struct PrBuffers {
    /// Distance labels of the `Y` vertices.
    pub(crate) d_y: Vec<u32>,
    /// Scratch marker sweep of `global_relabel`.
    pub(crate) matched_y: Vec<bool>,
    /// Scratch BFS queue of `global_relabel`.
    pub(crate) bfs: VecDeque<VertexId>,
    /// FIFO active set (the paper's configuration).
    pub(crate) fifo: VecDeque<VertexId>,
    /// Keyed active set for the highest/lowest-label disciplines.
    pub(crate) heap: BinaryHeap<(i64, VertexId)>,
}

impl PrBuffers {
    pub(crate) fn begin_solve(&mut self, ny: usize) {
        if self.d_y.len() < ny {
            self.d_y.resize(ny, 0);
            self.matched_y.resize(ny, false);
        }
        // Every queue holds at most each Y vertex once.
        if self.bfs.capacity() < ny {
            self.bfs.reserve(ny - self.bfs.len());
        }
        if self.fifo.capacity() < ny {
            self.fifo.reserve(ny - self.fifo.len());
        }
        if self.heap.capacity() < ny {
            self.heap.reserve(ny - self.heap.len());
        }
        self.bfs.clear();
        self.fifo.clear();
        self.heap.clear();
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.d_y.capacity() * size_of::<u32>()
            + self.matched_y.capacity()
            + (self.bfs.capacity() + self.fifo.capacity()) * size_of::<VertexId>()
            + self.heap.capacity() * size_of::<(i64, VertexId)>()
    }
}

/// Reusable solver workspace: every per-vertex buffer and frontier vector
/// the engines need, owned across solves.
///
/// Create one with [`SolveWorkspace::new`] and pass it to
/// [`crate::solve_in`] / [`crate::solve_from_in`] (or the engine-level
/// `*_in` entry points). The buffers grow lazily to the largest graph
/// seen, each engine touching only its own arena, and an epoch/versioned
/// scheme makes reuse safe with no O(n) clears between solves — even
/// across solves on *different* graphs. The module-level docs in
/// `workspace.rs` state the epoch invariants each arena relies on.
///
/// A workspace is plain mutable state: it is `Send` (hand it to another
/// thread between solves) but deliberately not `Sync` — one solve borrows
/// it exclusively. `graft-svc` gives each worker thread its own.
///
/// ```
/// use graft_core::{solve_in, Algorithm, SolveOptions, SolveWorkspace};
/// use graft_graph::BipartiteCsr;
///
/// let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
/// let mut ws = SolveWorkspace::new();
/// let first = solve_in(&g, Algorithm::MsBfsGraft, &SolveOptions::default(), &mut ws);
/// let warm = solve_in(&g, Algorithm::MsBfsGraft, &SolveOptions::default(), &mut ws);
/// assert_eq!(first.matching.cardinality(), warm.matching.cardinality());
/// ```
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    pub(crate) ms: MsBuffers,
    pub(crate) par: ParBuffers,
    pub(crate) pf: PfBuffers,
    pub(crate) pr: PrBuffers,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases all buffer memory. The next solve re-grows from empty —
    /// `graft-svc` workers call this after an `EVICT` so a workspace
    /// sized for an evicted giant does not pin its footprint forever.
    pub fn shrink(&mut self) {
        *self = Self::default();
    }

    /// Current heap footprint of the owned buffers, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.ms.bytes() + self.par.bytes() + self.pf.bytes() + self.pr.bytes()
    }

    /// Jumps every epoch counter to `u32::MAX`, so the *next* solve takes
    /// the once-per-2³²-solves full-clear path. Test hook only: the wrap
    /// is unreachable in bounded time otherwise, and its coverage must
    /// not depend on `pub(crate)` access.
    #[doc(hidden)]
    pub fn force_epoch_wrap(&mut self) {
        self.ms.epoch = u32::MAX;
        self.par.epoch = u32::MAX;
        self.pf.epoch = u32::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;
    use crate::{solve_from_in, Algorithm, Matching, SolveOptions};
    use graft_graph::BipartiteCsr;

    #[test]
    fn pack_unpack_roundtrip_and_staleness() {
        assert_eq!(unpack(3, pack(3, 17)), 17);
        assert_eq!(unpack(3, pack(3, NONE)), NONE);
        assert_eq!(unpack(4, pack(3, 17)), NONE, "stale epoch reads NONE");
        assert_eq!(unpack(1, 0), NONE, "zeroed entry reads NONE");
        assert_eq!(unpack(u32::MAX, pack(u32::MAX, 5)), 5);
    }

    #[test]
    fn footprint_grows_and_shrinks() {
        let g = BipartiteCsr::from_edges(64, 64, &[(0, 0), (1, 1), (2, 1), (2, 2)]);
        let mut ws = SolveWorkspace::new();
        assert_eq!(ws.footprint_bytes(), 0);
        let opts = SolveOptions::default();
        solve_from_in(
            &g,
            Matching::for_graph(&g),
            Algorithm::MsBfsGraft,
            &opts,
            &mut ws,
        );
        assert!(ws.footprint_bytes() > 0);
        ws.shrink();
        assert_eq!(ws.footprint_bytes(), 0);
    }

    /// Epoch wrap must fully clear the versioned marks: force the counter
    /// to the wrap point and check solves stay correct straight through it.
    #[test]
    fn epoch_wrap_is_survivable() {
        let g = BipartiteCsr::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (4, 3),
                (4, 4),
                (0, 4),
            ],
        );
        let opts = SolveOptions::default();
        let mut ws = SolveWorkspace::new();
        // Seed the buffers with real marks, then jump to the wrap point.
        solve_from_in(
            &g,
            Matching::for_graph(&g),
            Algorithm::MsBfsGraft,
            &opts,
            &mut ws,
        );
        ws.ms.epoch = u32::MAX - 1;
        ws.pf.epoch = u32::MAX - 1;
        ws.par.epoch = u32::MAX - 1;
        for _ in 0..4 {
            for alg in [
                Algorithm::MsBfsGraft,
                Algorithm::PothenFan,
                Algorithm::MsBfsGraftParallel,
            ] {
                let out = solve_from_in(&g, Matching::for_graph(&g), alg, &opts, &mut ws);
                assert_eq!(out.matching.cardinality(), 5, "{alg:?}");
                assert!(is_maximum(&g, &out.matching));
            }
        }
        assert!(
            ws.ms.epoch >= 1 && ws.ms.epoch < 10,
            "wrapped and restarted"
        );
    }

    /// A workspace grown on a large graph must stay correct on a smaller
    /// one (stale out-of-range ids must never be dereferenced).
    #[test]
    fn large_then_small_graph_reuse() {
        let mut edges = Vec::new();
        for x in 0..300u32 {
            edges.push((x, (x * 7) % 200));
            edges.push((x, (x * 13 + 3) % 200));
        }
        let big = BipartiteCsr::from_edges(300, 200, &edges);
        let small = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let opts = SolveOptions::default();
        let mut ws = SolveWorkspace::new();
        for alg in [
            Algorithm::MsBfsGraft,
            Algorithm::PothenFan,
            Algorithm::PushRelabel,
            Algorithm::MsBfsGraftParallel,
        ] {
            solve_from_in(&big, Matching::for_graph(&big), alg, &opts, &mut ws);
            let out = solve_from_in(&small, Matching::for_graph(&small), alg, &opts, &mut ws);
            assert_eq!(out.matching.cardinality(), 2, "{alg:?}");
            assert!(is_maximum(&small, &out.matching));
        }
    }
}
