//! graft-trace: a structured, zero-cost-when-disabled event layer.
//!
//! The paper's evaluation (Figs. 6–10) is built on *per-phase* internals:
//! frontier sizes and top-down/bottom-up switches at threshold α, grafted
//! vs. rebuilt trees, augmentations per phase. [`SearchStats`] aggregates
//! those to end-of-run totals; this module streams them as they happen,
//! as typed [`TraceEvent`]s, so the same run can be watched live by the
//! service (`TRACE` verb), written to a JSON-lines file (`graftmatch
//! --trace`), and replayed into the paper-style tables (`experiments
//! trace-report`).
//!
//! ## The zero-overhead contract
//!
//! Engines hold a [`Tracer`] and call [`Tracer::emit`] with a *closure*
//! that builds the event. When the tracer is disabled (the default for
//! every non-`_traced` entry point) the closure is **never evaluated**:
//! the whole call is a branch on a `None` that the optimizer deletes, so
//! no event is constructed, no string is formatted, and no lock is
//! touched. The differential test `tests/trace_noninterference.rs` pins
//! the stronger property that tracing — enabled or not — never perturbs
//! the matching or the [`SearchStats`] aggregates: event closures only
//! *read* engine state.
//!
//! Events are emitted from the engine's driving thread at level/phase
//! granularity — `O(levels)` events per run, not `O(edges)` — so sinks
//! keep a single short critical section per event; [`JsonlSink`] formats
//! the JSON on the emitting thread before taking its writer lock.
//!
//! ## Event schema
//!
//! One JSON object per line, discriminated by `"ev"` (see DESIGN.md §10):
//!
//! ```text
//! {"ev":"run_start","algorithm":"ms-bfs-graft","nx":6,"ny":6,"edges":12,
//!  "initial_cardinality":4,"alpha":5.0,"direction_optimizing":true,"grafting":true}
//! {"ev":"level","phase":1,"level":0,"frontier":2,"unvisited_y":6,"bottom_up":true}
//! {"ev":"phase_end","phase":1,"levels":2,"bottom_up_levels":2,"frontier_peak":2,
//!  "augmentations":2,"path_edges":4,"edges_traversed":14,"elapsed_us":11}
//! {"ev":"graft","phase":1,"active_x":0,"renewable_y":5,"grafted":false}
//! {"ev":"run_end","final_cardinality":6,"phases":2,"augmenting_paths":2,
//!  "edges_traversed":20,"elapsed_us":35,"timed_out":false}
//! ```
//!
//! [`replay`] reconstructs per-run summaries from an event stream and
//! *validates* the invariants the engines guarantee: levels strictly
//! increase within a phase, the recorded direction decision matches
//! `frontier ≥ unvisitedY / α`, the grafting decision matches
//! `activeX > renewableY / α`, and phase-reported augmentations sum to
//! the run's cardinality delta.
//!
//! [`SearchStats`]: crate::stats::SearchStats

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured trace event. All counters are `u64` so the wire schema
/// is uniform across platforms.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A solver run begins. `alpha`/`direction_optimizing`/`grafting`
    /// echo the *effective* engine configuration (they drive the replay
    /// invariants); non-MS algorithms report `alpha = 0`.
    RunStart {
        /// [`Algorithm::cli_name`](crate::Algorithm::cli_name) of the solver.
        algorithm: String,
        /// `|X|`.
        nx: u64,
        /// `|Y|`.
        ny: u64,
        /// Number of edges.
        edges: u64,
        /// Cardinality of the starting matching.
        initial_cardinality: u64,
        /// Direction-optimization threshold α (0 when not applicable).
        alpha: f64,
        /// Whether bottom-up levels are enabled.
        direction_optimizing: bool,
        /// Whether tree grafting is enabled.
        grafting: bool,
    },
    /// One BFS level of an MS-BFS engine, recorded *before* the sweep:
    /// the frontier size, the unvisited-`Y` population, and the direction
    /// the α rule chose (Fig. 8 / the Beamer et al. crossover).
    Level {
        /// Phase number, starting at 1.
        phase: u64,
        /// Level within the phase, starting at 0.
        level: u64,
        /// `X` vertices in the frontier.
        frontier: u64,
        /// Unvisited `Y` vertices before this level.
        unvisited_y: u64,
        /// `true` when the level ran bottom-up.
        bottom_up: bool,
    },
    /// A phase completed (BFS forest grown, matching augmented).
    PhaseEnd {
        /// Phase number, starting at 1.
        phase: u64,
        /// BFS levels executed (0 for non-level-structured solvers).
        levels: u64,
        /// How many of those ran bottom-up.
        bottom_up_levels: u64,
        /// Peak frontier size over the phase.
        frontier_peak: u64,
        /// Augmenting paths applied at the end of the phase.
        augmentations: u64,
        /// Total length in edges of those paths.
        path_edges: u64,
        /// Edges traversed during the phase.
        edges_traversed: u64,
        /// Wall-clock of the phase in microseconds.
        elapsed_us: u64,
    },
    /// The Algorithm-7 decision between tree grafting and a frontier
    /// rebuild, with the statistics that drove it.
    Graft {
        /// Phase the decision belongs to.
        phase: u64,
        /// `|activeX|` at the decision.
        active_x: u64,
        /// `|renewableY|` at the decision.
        renewable_y: u64,
        /// `true` when the next frontier was built by grafting.
        grafted: bool,
    },
    /// The run finished; totals mirror [`SearchStats`](crate::stats::SearchStats).
    RunEnd {
        /// Final matching cardinality.
        final_cardinality: u64,
        /// Total phases.
        phases: u64,
        /// Total augmenting paths applied.
        augmenting_paths: u64,
        /// Total edges traversed.
        edges_traversed: u64,
        /// Wall-clock of the solve in microseconds.
        elapsed_us: u64,
        /// Whether a deadline cut the run short.
        timed_out: bool,
    },
    /// An edge insertion in the `graft-dyn` subsystem ran a bounded
    /// augmenting search (or matched the endpoints directly).
    DynAugment {
        /// `X` endpoint of the inserted edge.
        x: u64,
        /// `Y` endpoint of the inserted edge.
        y: u64,
        /// Whether the matching grew by one.
        augmented: bool,
        /// Length in edges of the applied path (0 when none).
        path_len: u64,
        /// Edges traversed by the bounded search (0 for a direct match).
        edges_traversed: u64,
        /// Matching cardinality after the update.
        cardinality: u64,
    },
    /// A matched-edge deletion in `graft-dyn` attempted repair by
    /// augmenting from the two newly exposed endpoints.
    DynRepair {
        /// `X` endpoint of the deleted edge.
        x: u64,
        /// `Y` endpoint of the deleted edge.
        y: u64,
        /// Whether a replacement augmenting path restored the cardinality.
        repaired: bool,
        /// Edges traversed by the repair search(es).
        edges_traversed: u64,
        /// Matching cardinality after the update.
        cardinality: u64,
    },
    /// The `graft-dyn` overlay compacted into a fresh CSR and
    /// warm-started a full solve from the surviving matching.
    DynRebuild {
        /// Live edges in the compacted graph.
        edges: u64,
        /// Tombstones discarded by the compaction.
        tombstones: u64,
        /// Matching cardinality after the warm re-solve.
        cardinality: u64,
        /// Wall-clock of the rebuild in microseconds.
        elapsed_us: u64,
    },
}

impl TraceEvent {
    /// The `"ev"` discriminator of the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::Level { .. } => "level",
            TraceEvent::PhaseEnd { .. } => "phase_end",
            TraceEvent::Graft { .. } => "graft",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::DynAugment { .. } => "dyn_augment",
            TraceEvent::DynRepair { .. } => "dyn_repair",
            TraceEvent::DynRebuild { .. } => "dyn_rebuild",
        }
    }

    /// Serializes the event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"ev\":\"");
        s.push_str(self.kind());
        s.push('"');
        let field_str = |s: &mut String, k: &str, v: &str| {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":\"");
            for c in v.chars() {
                match c {
                    '"' => s.push_str("\\\""),
                    '\\' => s.push_str("\\\\"),
                    '\n' => s.push_str("\\n"),
                    '\r' => s.push_str("\\r"),
                    '\t' => s.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        s.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => s.push(c),
                }
            }
            s.push('"');
        };
        fn field_u64(s: &mut String, k: &str, v: u64) {
            use fmt::Write;
            let _ = write!(s, ",\"{k}\":{v}");
        }
        fn field_bool(s: &mut String, k: &str, v: bool) {
            use fmt::Write;
            let _ = write!(s, ",\"{k}\":{v}");
        }
        fn field_f64(s: &mut String, k: &str, v: f64) {
            use fmt::Write;
            // `{:?}` prints the shortest representation that round-trips
            // ("5.0", not "5"), keeping the value a JSON number.
            let _ = write!(s, ",\"{k}\":{v:?}");
        }
        match self {
            TraceEvent::RunStart {
                algorithm,
                nx,
                ny,
                edges,
                initial_cardinality,
                alpha,
                direction_optimizing,
                grafting,
            } => {
                field_str(&mut s, "algorithm", algorithm);
                field_u64(&mut s, "nx", *nx);
                field_u64(&mut s, "ny", *ny);
                field_u64(&mut s, "edges", *edges);
                field_u64(&mut s, "initial_cardinality", *initial_cardinality);
                field_f64(&mut s, "alpha", *alpha);
                field_bool(&mut s, "direction_optimizing", *direction_optimizing);
                field_bool(&mut s, "grafting", *grafting);
            }
            TraceEvent::Level {
                phase,
                level,
                frontier,
                unvisited_y,
                bottom_up,
            } => {
                field_u64(&mut s, "phase", *phase);
                field_u64(&mut s, "level", *level);
                field_u64(&mut s, "frontier", *frontier);
                field_u64(&mut s, "unvisited_y", *unvisited_y);
                field_bool(&mut s, "bottom_up", *bottom_up);
            }
            TraceEvent::PhaseEnd {
                phase,
                levels,
                bottom_up_levels,
                frontier_peak,
                augmentations,
                path_edges,
                edges_traversed,
                elapsed_us,
            } => {
                field_u64(&mut s, "phase", *phase);
                field_u64(&mut s, "levels", *levels);
                field_u64(&mut s, "bottom_up_levels", *bottom_up_levels);
                field_u64(&mut s, "frontier_peak", *frontier_peak);
                field_u64(&mut s, "augmentations", *augmentations);
                field_u64(&mut s, "path_edges", *path_edges);
                field_u64(&mut s, "edges_traversed", *edges_traversed);
                field_u64(&mut s, "elapsed_us", *elapsed_us);
            }
            TraceEvent::Graft {
                phase,
                active_x,
                renewable_y,
                grafted,
            } => {
                field_u64(&mut s, "phase", *phase);
                field_u64(&mut s, "active_x", *active_x);
                field_u64(&mut s, "renewable_y", *renewable_y);
                field_bool(&mut s, "grafted", *grafted);
            }
            TraceEvent::RunEnd {
                final_cardinality,
                phases,
                augmenting_paths,
                edges_traversed,
                elapsed_us,
                timed_out,
            } => {
                field_u64(&mut s, "final_cardinality", *final_cardinality);
                field_u64(&mut s, "phases", *phases);
                field_u64(&mut s, "augmenting_paths", *augmenting_paths);
                field_u64(&mut s, "edges_traversed", *edges_traversed);
                field_u64(&mut s, "elapsed_us", *elapsed_us);
                field_bool(&mut s, "timed_out", *timed_out);
            }
            TraceEvent::DynAugment {
                x,
                y,
                augmented,
                path_len,
                edges_traversed,
                cardinality,
            } => {
                field_u64(&mut s, "x", *x);
                field_u64(&mut s, "y", *y);
                field_bool(&mut s, "augmented", *augmented);
                field_u64(&mut s, "path_len", *path_len);
                field_u64(&mut s, "edges_traversed", *edges_traversed);
                field_u64(&mut s, "cardinality", *cardinality);
            }
            TraceEvent::DynRepair {
                x,
                y,
                repaired,
                edges_traversed,
                cardinality,
            } => {
                field_u64(&mut s, "x", *x);
                field_u64(&mut s, "y", *y);
                field_bool(&mut s, "repaired", *repaired);
                field_u64(&mut s, "edges_traversed", *edges_traversed);
                field_u64(&mut s, "cardinality", *cardinality);
            }
            TraceEvent::DynRebuild {
                edges,
                tombstones,
                cardinality,
                elapsed_us,
            } => {
                field_u64(&mut s, "edges", *edges);
                field_u64(&mut s, "tombstones", *tombstones);
                field_u64(&mut s, "cardinality", *cardinality);
                field_u64(&mut s, "elapsed_us", *elapsed_us);
            }
        }
        s.push('}');
        s
    }

    /// Parses one event from its JSON-line encoding.
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let s = |k: &str| -> Result<String, String> {
            match get(k)? {
                JsonValue::Str(v) => Ok(v.clone()),
                other => Err(format!("field `{k}` is not a string: {other:?}")),
            }
        };
        let u = |k: &str| -> Result<u64, String> {
            match get(k)? {
                JsonValue::U64(v) => Ok(*v),
                other => Err(format!("field `{k}` is not an integer: {other:?}")),
            }
        };
        let f = |k: &str| -> Result<f64, String> {
            match get(k)? {
                JsonValue::U64(v) => Ok(*v as f64),
                JsonValue::F64(v) => Ok(*v),
                other => Err(format!("field `{k}` is not a number: {other:?}")),
            }
        };
        let b = |k: &str| -> Result<bool, String> {
            match get(k)? {
                JsonValue::Bool(v) => Ok(*v),
                other => Err(format!("field `{k}` is not a bool: {other:?}")),
            }
        };
        let ev = match s("ev")?.as_str() {
            "run_start" => TraceEvent::RunStart {
                algorithm: s("algorithm")?,
                nx: u("nx")?,
                ny: u("ny")?,
                edges: u("edges")?,
                initial_cardinality: u("initial_cardinality")?,
                alpha: f("alpha")?,
                direction_optimizing: b("direction_optimizing")?,
                grafting: b("grafting")?,
            },
            "level" => TraceEvent::Level {
                phase: u("phase")?,
                level: u("level")?,
                frontier: u("frontier")?,
                unvisited_y: u("unvisited_y")?,
                bottom_up: b("bottom_up")?,
            },
            "phase_end" => TraceEvent::PhaseEnd {
                phase: u("phase")?,
                levels: u("levels")?,
                bottom_up_levels: u("bottom_up_levels")?,
                frontier_peak: u("frontier_peak")?,
                augmentations: u("augmentations")?,
                path_edges: u("path_edges")?,
                edges_traversed: u("edges_traversed")?,
                elapsed_us: u("elapsed_us")?,
            },
            "graft" => TraceEvent::Graft {
                phase: u("phase")?,
                active_x: u("active_x")?,
                renewable_y: u("renewable_y")?,
                grafted: b("grafted")?,
            },
            "run_end" => TraceEvent::RunEnd {
                final_cardinality: u("final_cardinality")?,
                phases: u("phases")?,
                augmenting_paths: u("augmenting_paths")?,
                edges_traversed: u("edges_traversed")?,
                elapsed_us: u("elapsed_us")?,
                timed_out: b("timed_out")?,
            },
            "dyn_augment" => TraceEvent::DynAugment {
                x: u("x")?,
                y: u("y")?,
                augmented: b("augmented")?,
                path_len: u("path_len")?,
                edges_traversed: u("edges_traversed")?,
                cardinality: u("cardinality")?,
            },
            "dyn_repair" => TraceEvent::DynRepair {
                x: u("x")?,
                y: u("y")?,
                repaired: b("repaired")?,
                edges_traversed: u("edges_traversed")?,
                cardinality: u("cardinality")?,
            },
            "dyn_rebuild" => TraceEvent::DynRebuild {
                edges: u("edges")?,
                tombstones: u("tombstones")?,
                cardinality: u("cardinality")?,
                elapsed_us: u("elapsed_us")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(ev)
    }
}

/// Error from [`read_jsonl`]: the 1-based line number and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

/// Reads a JSONL trace stream (blank lines are skipped).
pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TraceParseError {
            line: i + 1,
            msg: format!("read error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(
            TraceEvent::from_json(&line).map_err(|msg| TraceParseError { line: i + 1, msg })?,
        );
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON parsing (the schema needs no nesting or arrays)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    U64(u64),
    F64(f64),
    Bool(bool),
}

/// Parses `{"key":value,...}` where values are strings, numbers, or
/// booleans. Rejects nesting — the trace schema is deliberately flat.
fn parse_flat_object(s: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = s.trim().chars().peekable();
    let mut out = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected `\"`".into());
            }
            let mut v = String::new();
            loop {
                match chars.next() {
                    None => return Err("unterminated string".into()),
                    Some('"') => return Ok(v),
                    Some('\\') => match chars.next() {
                        Some('"') => v.push('"'),
                        Some('\\') => v.push('\\'),
                        Some('/') => v.push('/'),
                        Some('n') => v.push('\n'),
                        Some('r') => v.push('\r'),
                        Some('t') => v.push('\t'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = chars
                                    .next()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            v.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape `\\{other:?}`")),
                    },
                    Some(c) => v.push(c),
                }
            }
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => JsonValue::Str(parse_string(&mut chars)?),
                Some('t' | 'f') => {
                    let mut word = String::new();
                    while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                        word.push(chars.next().unwrap());
                    }
                    match word.as_str() {
                        "true" => JsonValue::Bool(true),
                        "false" => JsonValue::Bool(false),
                        other => return Err(format!("bad literal `{other}`")),
                    }
                }
                Some(c) if c.is_ascii_digit() || *c == '-' => {
                    let mut num = String::new();
                    while matches!(chars.peek(),
                        Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                    {
                        num.push(chars.next().unwrap());
                    }
                    if num.contains(['.', 'e', 'E']) || num.starts_with('-') {
                        JsonValue::F64(num.parse().map_err(|e| format!("bad number: {e}"))?)
                    } else {
                        JsonValue::U64(num.parse().map_err(|e| format!("bad number: {e}"))?)
                    }
                }
                other => return Err(format!("unexpected value start {other:?} for `{key}`")),
            };
            out.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing garbage after object".into());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Tracer and sinks
// ---------------------------------------------------------------------------

/// Where emitted events go. Implementations must tolerate concurrent
/// emitters (the service traces jobs from several worker threads into one
/// shared sink).
pub trait TraceSink: Send + Sync {
    /// Accepts one event.
    fn emit(&self, ev: TraceEvent);
    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A cheap, clonable handle the engines thread through their hot loops.
///
/// Disabled (`Tracer::disabled()`, the `Default`) it is a `None` the
/// optimizer sees through: [`emit`](Self::emit) never evaluates its
/// closure. Enabled, it forwards constructed events to the shared sink.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Tracer {
    /// The no-op tracer every untraced entry point uses.
    pub const fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding `sink`.
    pub fn to_sink(sink: Arc<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether events are being collected. Engines use this to gate
    /// trace-only work (e.g. phase stopwatches) that has no untraced
    /// counterpart.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `build` — which is *not called* when the
    /// tracer is disabled.
    #[inline(always)]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(build());
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        match &self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Collects events in memory; the sink the tests replay from.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the events collected so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Removes and returns the events collected so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no event has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, ev: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }
}

/// Writes one JSON line per event. The JSON is formatted on the emitting
/// thread; the writer lock is held only for the append.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    failed: AtomicBool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer (consider a `BufWriter`).
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
            failed: AtomicBool::new(false),
        }
    }

    /// Whether any write has failed since creation. Emission is
    /// infallible by design (tracing must never abort a solve); failures
    /// latch here and surface through [`TraceSink::flush`].
    pub fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, ev: TraceEvent) {
        let mut line = ev.to_json();
        line.push('\n');
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.write_all(line.as_bytes()).is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
    }

    fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.flush()?;
        if self.has_failed() {
            return Err(io::Error::other("trace write failed earlier"));
        }
        Ok(())
    }
}

/// Keeps the most recent `capacity` events — the service's `TRACE` verb
/// reads from one of these, so live tracing is bounded-memory no matter
/// how many solves run.
pub struct RingSink {
    buf: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` events (0 keeps nothing).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The last `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        let skip = buf.len().saturating_sub(n);
        buf.iter().skip(skip).cloned().collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl TraceSink for RingSink {
    fn emit(&self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev);
    }
}

// ---------------------------------------------------------------------------
// Replay: reconstruct and validate per-run summaries from an event stream
// ---------------------------------------------------------------------------

/// The grafting decision of one phase, from a [`TraceEvent::Graft`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraftSummary {
    /// `|activeX|` at the decision.
    pub active_x: u64,
    /// `|renewableY|` at the decision.
    pub renewable_y: u64,
    /// Whether grafting was chosen over a rebuild.
    pub grafted: bool,
}

/// One phase reconstructed from a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSummary {
    /// Phase number, starting at 1.
    pub phase: u64,
    /// BFS levels executed.
    pub levels: u64,
    /// Levels that ran bottom-up.
    pub bottom_up_levels: u64,
    /// Peak frontier size.
    pub frontier_peak: u64,
    /// Augmenting paths applied.
    pub augmentations: u64,
    /// Total path length in edges.
    pub path_edges: u64,
    /// Edges traversed during the phase.
    pub edges_traversed: u64,
    /// Wall-clock of the phase in microseconds.
    pub elapsed_us: u64,
    /// The graft-vs-rebuild decision, when one was recorded.
    pub graft: Option<GraftSummary>,
}

/// One run reconstructed (and validated) from a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Solver cli-name.
    pub algorithm: String,
    /// `|X|`.
    pub nx: u64,
    /// `|Y|`.
    pub ny: u64,
    /// Edge count.
    pub edges: u64,
    /// Starting cardinality.
    pub initial_cardinality: u64,
    /// Effective α (0 when not applicable).
    pub alpha: f64,
    /// Direction optimization enabled.
    pub direction_optimizing: bool,
    /// Grafting enabled.
    pub grafting: bool,
    /// The reconstructed phases, in order.
    pub phases: Vec<PhaseSummary>,
    /// Final cardinality.
    pub final_cardinality: u64,
    /// Total phases reported by the solver.
    pub total_phases: u64,
    /// Total augmenting paths.
    pub augmenting_paths: u64,
    /// Total edges traversed.
    pub edges_traversed: u64,
    /// Total wall-clock in microseconds.
    pub elapsed_us: u64,
    /// Whether the run hit its deadline.
    pub timed_out: bool,
}

impl RunSummary {
    /// Fraction of recorded BFS levels that ran bottom-up (Fig. 8's
    /// crossover summary); 0 when no level ran.
    pub fn bottom_up_fraction(&self) -> f64 {
        let levels: u64 = self.phases.iter().map(|p| p.levels).sum();
        if levels == 0 {
            return 0.0;
        }
        let bu: u64 = self.phases.iter().map(|p| p.bottom_up_levels).sum();
        bu as f64 / levels as f64
    }

    /// `(grafted, rebuilt)` decision counts over the recorded phases.
    pub fn graft_counts(&self) -> (u64, u64) {
        let mut grafted = 0;
        let mut rebuilt = 0;
        for p in &self.phases {
            match p.graft {
                Some(GraftSummary { grafted: true, .. }) => grafted += 1,
                Some(GraftSummary { grafted: false, .. }) => rebuilt += 1,
                None => {}
            }
        }
        (grafted, rebuilt)
    }
}

/// An invariant violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// 0-based index of the offending event in the stream.
    pub index: usize,
    /// What was violated.
    pub msg: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace event {}: {}", self.index, self.msg)
    }
}

impl std::error::Error for ReplayError {}

/// The engines' direction rule, bit-for-bit: top-down while
/// `|F| < numUnvisitedY / α`.
pub fn direction_rule(frontier: u64, unvisited_y: u64, alpha: f64) -> bool {
    frontier as f64 >= unvisited_y as f64 / alpha
}

/// The engines' grafting rule, bit-for-bit:
/// graft iff grafting is enabled and `|activeX| > |renewableY| / α`.
pub fn graft_rule(active_x: u64, renewable_y: u64, alpha: f64, grafting: bool) -> bool {
    grafting && active_x as f64 > renewable_y as f64 / alpha
}

struct OpenRun {
    summary: RunSummary,
    levels_seen: u64,
    bottom_up_seen: u64,
    frontier_peak_seen: u64,
}

/// Replays an event stream into per-run summaries, validating every
/// invariant the engines guarantee (see the module docs). Multiple runs
/// per stream are fine; interleaved runs are not (the service's ring
/// serializes whole jobs only when one worker runs at a time — replay a
/// `--trace` file or a per-test capture for strict validation).
pub fn replay(events: &[TraceEvent]) -> Result<Vec<RunSummary>, ReplayError> {
    let mut runs: Vec<RunSummary> = Vec::new();
    let mut open: Option<OpenRun> = None;
    let err = |index: usize, msg: String| ReplayError { index, msg };

    for (i, ev) in events.iter().enumerate() {
        match ev {
            TraceEvent::RunStart {
                algorithm,
                nx,
                ny,
                edges,
                initial_cardinality,
                alpha,
                direction_optimizing,
                grafting,
            } => {
                if open.is_some() {
                    return Err(err(i, "run_start while a run is open".into()));
                }
                open = Some(OpenRun {
                    summary: RunSummary {
                        algorithm: algorithm.clone(),
                        nx: *nx,
                        ny: *ny,
                        edges: *edges,
                        initial_cardinality: *initial_cardinality,
                        alpha: *alpha,
                        direction_optimizing: *direction_optimizing,
                        grafting: *grafting,
                        phases: Vec::new(),
                        final_cardinality: 0,
                        total_phases: 0,
                        augmenting_paths: 0,
                        edges_traversed: 0,
                        elapsed_us: 0,
                        timed_out: false,
                    },
                    levels_seen: 0,
                    bottom_up_seen: 0,
                    frontier_peak_seen: 0,
                });
            }
            TraceEvent::Level {
                phase,
                level,
                frontier,
                unvisited_y,
                bottom_up,
            } => {
                let run = open
                    .as_mut()
                    .ok_or_else(|| err(i, "level event outside a run".into()))?;
                let expected_phase = run.summary.phases.len() as u64 + 1;
                if *phase != expected_phase {
                    return Err(err(
                        i,
                        format!("level in phase {phase}, expected phase {expected_phase}"),
                    ));
                }
                if *level != run.levels_seen {
                    return Err(err(
                        i,
                        format!(
                            "levels must increase strictly from 0: got {level}, expected {}",
                            run.levels_seen
                        ),
                    ));
                }
                if *frontier == 0 {
                    return Err(err(i, "level with an empty frontier".into()));
                }
                let want = run.summary.direction_optimizing
                    && direction_rule(*frontier, *unvisited_y, run.summary.alpha);
                if *bottom_up != want {
                    return Err(err(
                        i,
                        format!(
                            "direction decision bottom_up={bottom_up} contradicts \
                             frontier={frontier} >= unvisited_y={unvisited_y} / alpha={} \
                             (dir-opt {})",
                            run.summary.alpha, run.summary.direction_optimizing
                        ),
                    ));
                }
                run.levels_seen += 1;
                run.bottom_up_seen += u64::from(*bottom_up);
                run.frontier_peak_seen = run.frontier_peak_seen.max(*frontier);
            }
            TraceEvent::PhaseEnd {
                phase,
                levels,
                bottom_up_levels,
                frontier_peak,
                augmentations,
                path_edges,
                edges_traversed,
                elapsed_us,
            } => {
                let run = open
                    .as_mut()
                    .ok_or_else(|| err(i, "phase_end outside a run".into()))?;
                let expected_phase = run.summary.phases.len() as u64 + 1;
                if *phase != expected_phase {
                    return Err(err(
                        i,
                        format!("phase_end for phase {phase}, expected {expected_phase}"),
                    ));
                }
                if *levels != run.levels_seen {
                    return Err(err(
                        i,
                        format!(
                            "phase_end reports {levels} levels but {} level events were seen",
                            run.levels_seen
                        ),
                    ));
                }
                if *bottom_up_levels != run.bottom_up_seen {
                    return Err(err(
                        i,
                        format!(
                            "phase_end reports {bottom_up_levels} bottom-up levels, saw {}",
                            run.bottom_up_seen
                        ),
                    ));
                }
                if run.levels_seen > 0 && *frontier_peak != run.frontier_peak_seen {
                    return Err(err(
                        i,
                        format!(
                            "phase_end reports frontier_peak={frontier_peak}, saw {}",
                            run.frontier_peak_seen
                        ),
                    ));
                }
                run.summary.phases.push(PhaseSummary {
                    phase: *phase,
                    levels: *levels,
                    bottom_up_levels: *bottom_up_levels,
                    frontier_peak: *frontier_peak,
                    augmentations: *augmentations,
                    path_edges: *path_edges,
                    edges_traversed: *edges_traversed,
                    elapsed_us: *elapsed_us,
                    graft: None,
                });
                run.levels_seen = 0;
                run.bottom_up_seen = 0;
                run.frontier_peak_seen = 0;
            }
            TraceEvent::Graft {
                phase,
                active_x,
                renewable_y,
                grafted,
            } => {
                let run = open
                    .as_mut()
                    .ok_or_else(|| err(i, "graft event outside a run".into()))?;
                let last = run
                    .summary
                    .phases
                    .last_mut()
                    .ok_or_else(|| err(i, "graft event before any phase_end".into()))?;
                if *phase != last.phase {
                    return Err(err(
                        i,
                        format!("graft for phase {phase} after phase {}", last.phase),
                    ));
                }
                if last.graft.is_some() {
                    return Err(err(i, format!("second graft event for phase {phase}")));
                }
                let want = graft_rule(
                    *active_x,
                    *renewable_y,
                    run.summary.alpha,
                    run.summary.grafting,
                );
                if *grafted != want {
                    return Err(err(
                        i,
                        format!(
                            "graft decision grafted={grafted} contradicts active_x={active_x} > \
                             renewable_y={renewable_y} / alpha={} (grafting {})",
                            run.summary.alpha, run.summary.grafting
                        ),
                    ));
                }
                last.graft = Some(GraftSummary {
                    active_x: *active_x,
                    renewable_y: *renewable_y,
                    grafted: *grafted,
                });
            }
            TraceEvent::RunEnd {
                final_cardinality,
                phases,
                augmenting_paths,
                edges_traversed,
                elapsed_us,
                timed_out,
            } => {
                let mut run = open
                    .take()
                    .ok_or_else(|| err(i, "run_end outside a run".into()))?;
                if run.levels_seen > 0 {
                    return Err(err(i, "run_end with an unterminated phase".into()));
                }
                let s = &mut run.summary;
                s.final_cardinality = *final_cardinality;
                s.total_phases = *phases;
                s.augmenting_paths = *augmenting_paths;
                s.edges_traversed = *edges_traversed;
                s.elapsed_us = *elapsed_us;
                s.timed_out = *timed_out;
                if *final_cardinality < s.initial_cardinality {
                    return Err(err(i, "matching shrank over the run".into()));
                }
                // Solvers that emit phase events account every
                // augmentation to a phase: the phase-reported sum must
                // equal both the cardinality delta and the run total.
                if !s.phases.is_empty() {
                    let phase_augs: u64 = s.phases.iter().map(|p| p.augmentations).sum();
                    let delta = *final_cardinality - s.initial_cardinality;
                    if phase_augs != delta {
                        return Err(err(
                            i,
                            format!(
                                "phase augmentations sum to {phase_augs} but the cardinality \
                                 delta is {delta}"
                            ),
                        ));
                    }
                    if phase_augs != *augmenting_paths {
                        return Err(err(
                            i,
                            format!(
                                "phase augmentations sum to {phase_augs} but run_end reports \
                                 {augmenting_paths}"
                            ),
                        ));
                    }
                    if s.phases.len() as u64 != *phases {
                        return Err(err(
                            i,
                            format!(
                                "{} phase_end events but run_end reports {phases} phases",
                                s.phases.len()
                            ),
                        ));
                    }
                }
                runs.push(run.summary);
            }
            // graft-dyn update events are not part of a solver run; they
            // may appear anywhere in a stream (a rebuild's warm re-solve
            // emits its own run_start/run_end pair) and carry no replay
            // invariants of their own.
            TraceEvent::DynAugment { .. }
            | TraceEvent::DynRepair { .. }
            | TraceEvent::DynRebuild { .. } => {}
        }
    }
    if open.is_some() {
        return Err(err(events.len(), "stream ends with an open run".into()));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                algorithm: "ms-bfs-graft".into(),
                nx: 6,
                ny: 6,
                edges: 12,
                initial_cardinality: 4,
                alpha: 5.0,
                direction_optimizing: true,
                grafting: true,
            },
            TraceEvent::Level {
                phase: 1,
                level: 0,
                frontier: 2,
                unvisited_y: 6,
                bottom_up: true,
            },
            TraceEvent::Level {
                phase: 1,
                level: 1,
                frontier: 2,
                unvisited_y: 3,
                bottom_up: true,
            },
            TraceEvent::PhaseEnd {
                phase: 1,
                levels: 2,
                bottom_up_levels: 2,
                frontier_peak: 2,
                augmentations: 2,
                path_edges: 4,
                edges_traversed: 14,
                elapsed_us: 11,
            },
            TraceEvent::Graft {
                phase: 1,
                active_x: 0,
                renewable_y: 5,
                grafted: false,
            },
            TraceEvent::PhaseEnd {
                phase: 2,
                levels: 0,
                bottom_up_levels: 0,
                frontier_peak: 0,
                augmentations: 0,
                path_edges: 0,
                edges_traversed: 0,
                elapsed_us: 1,
            },
            TraceEvent::RunEnd {
                final_cardinality: 6,
                phases: 2,
                augmenting_paths: 2,
                edges_traversed: 20,
                elapsed_us: 35,
                timed_out: false,
            },
        ]
    }

    fn dyn_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::DynAugment {
                x: 3,
                y: 7,
                augmented: true,
                path_len: 5,
                edges_traversed: 19,
                cardinality: 42,
            },
            TraceEvent::DynRepair {
                x: 3,
                y: 7,
                repaired: false,
                edges_traversed: 8,
                cardinality: 41,
            },
            TraceEvent::DynRebuild {
                edges: 900,
                tombstones: 250,
                cardinality: 41,
                elapsed_us: 120,
            },
        ]
    }

    #[test]
    fn json_round_trip_every_variant() {
        for ev in sample_events().into_iter().chain(dyn_events()) {
            let json = ev.to_json();
            let back = TraceEvent::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(ev, back, "round-trip of {json}");
        }
    }

    #[test]
    fn replay_skips_dyn_events_anywhere() {
        // Before, between, and after runs: dyn events never perturb the
        // run-level invariants.
        let mut evs = dyn_events();
        evs.extend(sample_events());
        evs.insert(4, dyn_events()[2].clone());
        evs.extend(dyn_events());
        let runs = replay(&evs).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].final_cardinality, 6);
    }

    #[test]
    fn json_escapes_are_reversible() {
        let ev = TraceEvent::RunStart {
            algorithm: "we\"ird\\name\nwith\tctrl\u{1}".into(),
            nx: 0,
            ny: 0,
            edges: 0,
            initial_cardinality: 0,
            alpha: 0.5,
            direction_optimizing: false,
            grafting: false,
        };
        let back = TraceEvent::from_json(&ev.to_json()).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        for bad in [
            "",
            "{",
            "nonsense",
            "{\"ev\":\"level\"}",                       // missing fields
            "{\"ev\":\"warp\",\"phase\":1}",            // unknown kind
            "{\"ev\":\"level\",\"phase\":\"one\",\"level\":0,\"frontier\":1,\"unvisited_y\":1,\"bottom_up\":true}",
            "{\"ev\":\"run_end\"} extra",
        ] {
            assert!(TraceEvent::from_json(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn read_jsonl_reports_line_numbers() {
        let text = "\n{\"ev\":\"graft\",\"phase\":1,\"active_x\":1,\"renewable_y\":1,\"grafted\":true}\nnot json\n";
        let e = read_jsonl(text.as_bytes()).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(|| panic!("closure must not run when disabled"));
        t.flush().unwrap();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::to_sink(Arc::<MemorySink>::clone(&sink));
        assert!(t.is_enabled());
        for ev in sample_events() {
            t.emit(|| ev.clone());
        }
        assert_eq!(sink.snapshot(), sample_events());
        assert_eq!(sink.take().len(), 7);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        for ev in sample_events() {
            sink.emit(ev);
        }
        sink.flush().unwrap();
        let bytes = sink.writer.into_inner().unwrap();
        let parsed = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::new(3);
        for ev in sample_events() {
            ring.emit(ev);
        }
        assert_eq!(ring.len(), 3);
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1], sample_events()[6]);
        assert_eq!(ring.recent(100).len(), 3);
        ring.clear();
        assert!(ring.is_empty());
        let empty = RingSink::new(0);
        empty.emit(sample_events()[0].clone());
        assert!(empty.is_empty());
    }

    #[test]
    fn replay_accepts_a_valid_run() {
        let runs = replay(&sample_events()).unwrap();
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.algorithm, "ms-bfs-graft");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].graft.unwrap().renewable_y, 5);
        assert!((r.bottom_up_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.graft_counts(), (0, 1));
    }

    #[test]
    fn replay_rejects_wrong_direction_decision() {
        let mut evs = sample_events();
        // frontier 2 >= 6/5: must be bottom-up; flip it.
        evs[1] = TraceEvent::Level {
            phase: 1,
            level: 0,
            frontier: 2,
            unvisited_y: 6,
            bottom_up: false,
        };
        let e = replay(&evs).unwrap_err();
        assert_eq!(e.index, 1);
        assert!(e.msg.contains("direction decision"), "{}", e.msg);
    }

    #[test]
    fn replay_rejects_non_increasing_levels() {
        let mut evs = sample_events();
        evs[2] = evs[1].clone(); // repeat level 0
        let e = replay(&evs).unwrap_err();
        assert_eq!(e.index, 2);
        assert!(e.msg.contains("strictly"), "{}", e.msg);
    }

    #[test]
    fn replay_rejects_bad_augmentation_sum() {
        let mut evs = sample_events();
        if let TraceEvent::RunEnd {
            final_cardinality, ..
        } = &mut evs[6]
        {
            *final_cardinality = 5; // delta 1, phases sum 2
        }
        let e = replay(&evs).unwrap_err();
        assert!(e.msg.contains("cardinality"), "{}", e.msg);
    }

    #[test]
    fn replay_rejects_wrong_graft_decision() {
        let mut evs = sample_events();
        evs[4] = TraceEvent::Graft {
            phase: 1,
            active_x: 10,
            renewable_y: 5,
            grafted: false, // 10 > 5/5 with grafting on: must be true
        };
        let e = replay(&evs).unwrap_err();
        assert!(e.msg.contains("graft decision"), "{}", e.msg);
    }

    #[test]
    fn replay_rejects_orphan_and_open_runs() {
        let evs = vec![sample_events()[1].clone()];
        assert!(replay(&evs).unwrap_err().msg.contains("outside a run"));
        let evs = sample_events()[..1].to_vec();
        assert!(replay(&evs).unwrap_err().msg.contains("open run"));
    }

    #[test]
    fn replay_handles_multiple_runs() {
        let mut evs = sample_events();
        evs.extend(sample_events());
        let runs = replay(&evs).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn rules_match_engine_arithmetic() {
        assert!(direction_rule(2, 10, 5.0)); // 2 >= 2
        assert!(!direction_rule(1, 10, 5.0)); // 1 < 2
        assert!(graft_rule(3, 10, 5.0, true)); // 3 > 2
        assert!(!graft_rule(2, 10, 5.0, true)); // 2 !> 2
        assert!(!graft_rule(3, 10, 5.0, false));
    }
}
