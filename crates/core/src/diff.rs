//! Symmetric difference of two matchings, decomposed into alternating
//! paths and cycles.
//!
//! `M ⊕ M′ = (M ∖ M′) ∪ (M′ ∖ M)` induces a subgraph of maximum degree 2
//! whose components alternate between `M`-edges and `M′`-edges — the
//! object at the heart of Berge's theorem and of the paper's augmentation
//! step (`M ← M ⊕ P`, §II-A). The decomposition gives the test suite a
//! *structural* comparison between two solvers' outputs: two **maximum**
//! matchings always differ by even alternating paths and cycles only
//! (any odd path would augment one of them), which the property tests
//! assert for every algorithm pair.

use crate::Matching;
use graft_graph::{VertexId, NONE};

/// Which matching contributed an edge of the symmetric difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The edge belongs to the first matching only.
    A,
    /// The edge belongs to the second matching only.
    B,
}

/// One connected component of `M_A ⊕ M_B`.
#[derive(Clone, Debug)]
pub struct DiffComponent {
    /// The component's edges in walk order, each tagged with its source.
    pub edges: Vec<(VertexId, VertexId, Side)>,
    /// Whether the walk closes into a cycle.
    pub is_cycle: bool,
}

impl DiffComponent {
    /// Number of edges contributed by matching A.
    pub fn a_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.2 == Side::A).count()
    }

    /// Number of edges contributed by matching B.
    pub fn b_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.2 == Side::B).count()
    }

    /// A path with more B-edges than A-edges is an `M_A`-augmenting path
    /// (and vice versa); balanced components exchange no cardinality.
    pub fn imbalance(&self) -> i64 {
        self.b_edges() as i64 - self.a_edges() as i64
    }
}

/// Decomposes `a ⊕ b` into alternating paths and cycles.
///
/// Panics if the matchings have different dimensions. Runs in
/// `O(nx + ny)`.
///
/// ```
/// use graft_core::diff::symmetric_difference;
/// use graft_core::Matching;
///
/// let mut a = Matching::empty(2, 2);
/// a.match_pair(0, 0);
/// a.match_pair(1, 1);
/// let mut b = Matching::empty(2, 2);
/// b.match_pair(0, 1);
/// b.match_pair(1, 0);
/// let comps = symmetric_difference(&a, &b);
/// assert_eq!(comps.len(), 1);
/// assert!(comps[0].is_cycle); // the two perfect matchings differ by a 4-cycle
/// ```
pub fn symmetric_difference(a: &Matching, b: &Matching) -> Vec<DiffComponent> {
    let nx = a.mates_x().len();
    let ny = a.mates_y().len();
    assert_eq!(nx, b.mates_x().len(), "dimension mismatch");
    assert_eq!(ny, b.mates_y().len(), "dimension mismatch");

    // Diff edges from each x: the A-mate if it differs, the B-mate if it
    // differs. Each x and each y touches at most one edge per side.
    let a_edge = |x: usize| -> VertexId {
        let ya = a.mates_x()[x];
        if ya != NONE && b.mates_x()[x] != ya {
            ya
        } else {
            NONE
        }
    };
    let b_edge = |x: usize| -> VertexId {
        let yb = b.mates_x()[x];
        if yb != NONE && a.mates_x()[x] != yb {
            yb
        } else {
            NONE
        }
    };

    let mut seen_x = vec![false; nx];
    let mut components = Vec::new();

    // Diff edge incident to y from the given side (the x endpoint), or
    // NONE when y has no such edge.
    let y_edge = |y: usize, side: Side| -> VertexId {
        match side {
            Side::A => {
                let xa = a.mates_y()[y];
                if xa != NONE && b.mates_y()[y] != xa {
                    xa
                } else {
                    NONE
                }
            }
            Side::B => {
                let xb = b.mates_y()[y];
                if xb != NONE && a.mates_y()[y] != xb {
                    xb
                } else {
                    NONE
                }
            }
        }
    };
    let flip = |s: Side| match s {
        Side::A => Side::B,
        Side::B => Side::A,
    };

    // Walks one component starting from `x0`, departing via `start_side`.
    // Each iteration consumes the X-side edge (x, y) and the Y-side
    // through-edge (next_x, y); arriving at `next_x` via one matching
    // forces departure via the other, so the departure side is invariant.
    let walk = |x0: usize, start_side: Side, seen_x: &mut [bool]| -> DiffComponent {
        let mut edges = Vec::new();
        let mut x = x0;
        let dep = start_side;
        let mut is_cycle = false;
        loop {
            seen_x[x] = true;
            let y = match dep {
                Side::A => a_edge(x),
                Side::B => b_edge(x),
            };
            if y == NONE {
                break; // path ends at x
            }
            edges.push((x as VertexId, y, dep));
            let other = flip(dep);
            let next_x = y_edge(y as usize, other);
            if next_x == NONE {
                break; // path ends at y
            }
            edges.push((next_x, y, other));
            if next_x as usize == x0 {
                is_cycle = true; // the through-edge closed the cycle
                break;
            }
            x = next_x as usize;
        }
        DiffComponent { edges, is_cycle }
    };

    // Path endpoints first: x vertices with exactly one diff edge.
    for x0 in 0..nx {
        if seen_x[x0] {
            continue;
        }
        let has_a = a_edge(x0) != NONE;
        let has_b = b_edge(x0) != NONE;
        match (has_a, has_b) {
            (false, false) => {} // not in the diff
            (true, false) => components.push(walk(x0, Side::A, &mut seen_x)),
            (false, true) => components.push(walk(x0, Side::B, &mut seen_x)),
            (true, true) => {} // interior or cycle vertex: second pass
        }
    }
    // Paths that end on the Y side at both ends never visit a degree-1 x;
    // they and the cycles are picked up here.
    for x0 in 0..nx {
        if seen_x[x0] {
            continue;
        }
        if a_edge(x0) != NONE && b_edge(x0) != NONE {
            // Either a cycle (one walk covers it completely) or a path
            // whose both endpoints lie on the Y side (x0 is interior):
            // walk both directions from x0 and stitch.
            let forward = walk(x0, Side::A, &mut seen_x);
            if forward.is_cycle {
                components.push(forward);
            } else {
                let backward = walk(x0, Side::B, &mut seen_x);
                debug_assert!(!backward.is_cycle);
                let mut edges = backward.edges;
                edges.reverse();
                edges.extend(forward.edges);
                components.push(DiffComponent {
                    edges,
                    is_cycle: false,
                });
            }
        }
    }
    components
}

/// `|A ⊕ B|` as a plain edge count (cheap cardinality check).
pub fn symmetric_difference_size(a: &Matching, b: &Matching) -> usize {
    symmetric_difference(a, b)
        .iter()
        .map(|c| c.edges.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matchings_empty_diff() {
        let mut a = Matching::empty(3, 3);
        a.match_pair(0, 0);
        a.match_pair(1, 1);
        let b = a.clone();
        assert!(symmetric_difference(&a, &b).is_empty());
        assert_eq!(symmetric_difference_size(&a, &b), 0);
    }

    #[test]
    fn single_swapped_pair_is_two_paths_or_cycle() {
        // A: (0,0), (1,1); B: (0,1), (1,0) — a 4-cycle.
        let mut a = Matching::empty(2, 2);
        a.match_pair(0, 0);
        a.match_pair(1, 1);
        let mut b = Matching::empty(2, 2);
        b.match_pair(0, 1);
        b.match_pair(1, 0);
        let comps = symmetric_difference(&a, &b);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].is_cycle);
        assert_eq!(comps[0].edges.len(), 4);
        assert_eq!(comps[0].a_edges(), 2);
        assert_eq!(comps[0].b_edges(), 2);
        assert_eq!(comps[0].imbalance(), 0);
    }

    #[test]
    fn augmenting_path_shows_imbalance() {
        // A: (1,0); B: (0,0), (1,1) — B is one bigger; diff is the path
        // x0-y0-x1-y1 with 1 A-edge, 2 B-edges.
        let mut a = Matching::empty(2, 2);
        a.match_pair(1, 0);
        let mut b = Matching::empty(2, 2);
        b.match_pair(0, 0);
        b.match_pair(1, 1);
        let comps = symmetric_difference(&a, &b);
        assert_eq!(comps.len(), 1);
        let c = &comps[0];
        assert!(!c.is_cycle);
        assert_eq!(c.edges.len(), 3);
        assert_eq!(c.imbalance(), 1);
    }

    #[test]
    fn one_sided_edge_is_singleton_path() {
        let mut a = Matching::empty(2, 2);
        a.match_pair(0, 1);
        let b = Matching::empty(2, 2);
        let comps = symmetric_difference(&a, &b);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].edges, vec![(0, 1, Side::A)]);
        assert!(!comps[0].is_cycle);
    }

    #[test]
    fn diff_size_counts_all_edges() {
        let mut a = Matching::empty(3, 3);
        a.match_pair(0, 0);
        a.match_pair(1, 1);
        a.match_pair(2, 2);
        let mut b = Matching::empty(3, 3);
        b.match_pair(0, 0); // shared
        b.match_pair(1, 2);
        b.match_pair(2, 1);
        // Diff: (1,1)A, (2,2)A, (1,2)B, (2,1)B.
        assert_eq!(symmetric_difference_size(&a, &b), 4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matching::empty(2, 2);
        let b = Matching::empty(3, 2);
        symmetric_difference(&a, &b);
    }
}
