//! Single-shot augmenting-path searches over an abstract adjacency view.
//!
//! The solvers in this crate run to a fixed point on a static
//! [`BipartiteCsr`]. A *dynamic* matching (the `graft-dyn` crate) instead
//! repairs one edge update at a time, which needs exactly one bounded
//! augmenting BFS per update — from a newly exposed vertex, or as a wave
//! from every free `X` vertex. Those searches live here, inside
//! graft-core, because they borrow the [`SolveWorkspace`] internals (the
//! epoch-versioned visited marks and frontier vectors) that make the hot
//! path allocation-free: `begin_solve` bumps the epoch instead of
//! clearing, so a search on a warm workspace touches only the vertices it
//! actually reaches.
//!
//! The graph is abstracted behind [`XYAdjacency`] so the same search runs
//! on a plain CSR *and* on graft-dyn's delta overlay (base CSR minus
//! tombstones plus insert buffers) without materializing anything.

use crate::workspace::SolveWorkspace;
use crate::Matching;
use graft_graph::{BipartiteCsr, VertexId, NONE};

/// An adjacency view of a bipartite graph, traversable from both sides
/// with early exit.
///
/// The callback returns `true` to stop the enumeration; the method
/// returns whether it stopped early. Implementations must enumerate each
/// neighbor exactly once and agree between the two directions
/// (`y ∈ N(x) ⇔ x ∈ N(y)`).
pub trait XYAdjacency {
    /// Number of `X`-side vertices.
    fn nx(&self) -> usize;
    /// Number of `Y`-side vertices.
    fn ny(&self) -> usize;
    /// Enumerates the `Y` neighbors of `x` until `f` returns `true`.
    fn for_each_x_neighbor(&self, x: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool;
    /// Enumerates the `X` neighbors of `y` until `f` returns `true`.
    fn for_each_y_neighbor(&self, y: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool;
}

impl XYAdjacency for BipartiteCsr {
    fn nx(&self) -> usize {
        self.num_x()
    }

    fn ny(&self) -> usize {
        self.num_y()
    }

    fn for_each_x_neighbor(&self, x: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.x_neighbors(x).iter().any(|&y| f(y))
    }

    fn for_each_y_neighbor(&self, y: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.y_neighbors(y).iter().any(|&x| f(x))
    }
}

/// The result of one bounded augmenting-path search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AugmentOutcome {
    /// An augmenting path was found and applied: the matching grew by one.
    Augmented {
        /// Vertices on the applied path (even, ≥ 2).
        path_len: usize,
        /// Edges traversed by the search.
        edges_traversed: u64,
    },
    /// The search ran to completion without finding an augmenting path —
    /// a *proof* that none exists from the given source(s), so a maximum
    /// matching stays maximum.
    Exhausted {
        /// Edges traversed by the search.
        edges_traversed: u64,
    },
    /// The traversal budget ran out before the search completed. The
    /// matching is unchanged; the caller must fall back to an exact
    /// re-solve to restore the maximum invariant.
    BudgetExceeded {
        /// Edges traversed before giving up (> the budget).
        edges_traversed: u64,
    },
}

impl AugmentOutcome {
    /// Whether the search applied an augmenting path.
    pub fn augmented(&self) -> bool {
        matches!(self, AugmentOutcome::Augmented { .. })
    }

    /// Edges traversed, whatever the outcome.
    pub fn edges_traversed(&self) -> u64 {
        match *self {
            AugmentOutcome::Augmented {
                edges_traversed, ..
            }
            | AugmentOutcome::Exhausted { edges_traversed }
            | AugmentOutcome::BudgetExceeded { edges_traversed } => edges_traversed,
        }
    }
}

/// BFS for an augmenting path from the single free `X` vertex `x0`,
/// applying it to `m` if found. Traverses at most `budget` edges
/// (pass `u64::MAX` for an exhaustive search).
///
/// Alternating structure: edges `x → y` are traversed unmatched and
/// `y → x` only through the matched edge, so any path found starts
/// unmatched at `x0` and ends at a free `y` — exactly an augmenting path.
pub fn augment_from_x<G: XYAdjacency + ?Sized>(
    g: &G,
    m: &mut Matching,
    x0: VertexId,
    budget: u64,
    ws: &mut SolveWorkspace,
) -> AugmentOutcome {
    debug_assert!(!m.is_x_matched(x0), "source x must be free");
    x_side_search(g, m, std::iter::once(x0), budget, ws)
}

/// BFS wave for an augmenting path from *every* free `X` vertex at once,
/// applying the first one found. This is the repair used when an inserted
/// edge joins two already-matched endpoints: any augmenting path the new
/// edge enables still starts at some free `X` vertex, and the multi-source
/// wave finds it without guessing which.
pub fn augment_from_free_x<G: XYAdjacency + ?Sized>(
    g: &G,
    m: &mut Matching,
    budget: u64,
    ws: &mut SolveWorkspace,
) -> AugmentOutcome {
    let sources: Vec<VertexId> = m.unmatched_x().collect();
    x_side_search(g, m, sources.into_iter(), budget, ws)
}

fn x_side_search<G: XYAdjacency + ?Sized>(
    g: &G,
    m: &mut Matching,
    sources: impl Iterator<Item = VertexId>,
    budget: u64,
    ws: &mut SolveWorkspace,
) -> AugmentOutcome {
    let ms = &mut ws.ms;
    ms.begin_solve(g.nx(), g.ny());
    let mut frontier = std::mem::take(&mut ms.frontier);
    let mut next = std::mem::take(&mut ms.next);
    frontier.clear();
    next.clear();
    for x in sources {
        // `root_x` doubles as the X-side visited mark (epoch-packed, so
        // this costs no clear); the stored value is unused.
        ms.set_root_x(x, x);
        frontier.push(x);
    }

    let mut traversed = 0u64;
    let mut over_budget = false;
    let mut found: Option<VertexId> = None;
    while !frontier.is_empty() && found.is_none() && !over_budget {
        for &x in &frontier {
            g.for_each_x_neighbor(x, &mut |y| {
                traversed += 1;
                if traversed > budget {
                    over_budget = true;
                    return true;
                }
                if ms.is_visited(y) {
                    return false;
                }
                ms.set_visited(y);
                ms.parent_y[y as usize] = x;
                let xm = m.mate_of_y(y);
                if xm == NONE {
                    found = Some(y);
                    return true;
                }
                if ms.root_of_x(xm) == NONE {
                    ms.set_root_x(xm, x);
                    next.push(xm);
                }
                false
            });
            if found.is_some() || over_budget {
                break;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    let outcome = match found {
        _ if over_budget => AugmentOutcome::BudgetExceeded {
            edges_traversed: traversed,
        },
        None => AugmentOutcome::Exhausted {
            edges_traversed: traversed,
        },
        Some(y_end) => {
            // Walk parents back to a (free) source, building the reversed
            // interleaved path, then flip it into augment's order.
            let mut path = std::mem::take(&mut ms.path);
            path.clear();
            path.push(y_end);
            let mut x = ms.parent_y[y_end as usize];
            loop {
                path.push(x);
                let ym = m.mate_of_x(x);
                if ym == NONE {
                    break;
                }
                path.push(ym);
                x = ms.parent_y[ym as usize];
            }
            path.reverse();
            m.augment(&path);
            let path_len = path.len();
            ms.path = path;
            AugmentOutcome::Augmented {
                path_len,
                edges_traversed: traversed,
            }
        }
    };
    ms.frontier = frontier;
    ms.next = next;
    outcome
}

/// BFS for an augmenting path from the single free `Y` vertex `y0`,
/// applying it to `m` if found. Mirror image of [`augment_from_x`]:
/// edges `y → x` are traversed unmatched and `x → y` only through the
/// matched edge, so a found path runs from a free `x` back to `y0`.
pub fn augment_from_y<G: XYAdjacency + ?Sized>(
    g: &G,
    m: &mut Matching,
    y0: VertexId,
    budget: u64,
    ws: &mut SolveWorkspace,
) -> AugmentOutcome {
    debug_assert!(!m.is_y_matched(y0), "source y must be free");
    let ms = &mut ws.ms;
    ms.begin_solve(g.nx(), g.ny());
    let mut frontier = std::mem::take(&mut ms.frontier);
    let mut next = std::mem::take(&mut ms.next);
    frontier.clear();
    next.clear();
    ms.set_visited(y0);
    frontier.push(y0);

    let mut traversed = 0u64;
    let mut over_budget = false;
    let mut found: Option<VertexId> = None;
    while !frontier.is_empty() && found.is_none() && !over_budget {
        for &y in &frontier {
            g.for_each_y_neighbor(y, &mut |x| {
                traversed += 1;
                if traversed > budget {
                    over_budget = true;
                    return true;
                }
                // `root_x` stores the Y vertex that discovered `x`: the
                // visited mark and the parent pointer in one packed slot.
                if ms.root_of_x(x) != NONE {
                    return false;
                }
                ms.set_root_x(x, y);
                let ym = m.mate_of_x(x);
                if ym == NONE {
                    found = Some(x);
                    return true;
                }
                if !ms.is_visited(ym) {
                    ms.set_visited(ym);
                    next.push(ym);
                }
                false
            });
            if found.is_some() || over_budget {
                break;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    let outcome = match found {
        _ if over_budget => AugmentOutcome::BudgetExceeded {
            edges_traversed: traversed,
        },
        None => AugmentOutcome::Exhausted {
            edges_traversed: traversed,
        },
        Some(x_end) => {
            // The parent walk already yields augment's order: the free
            // `x` first, alternating back to the free `y0`.
            let mut path = std::mem::take(&mut ms.path);
            path.clear();
            path.push(x_end);
            let mut y = ms.root_of_x(x_end);
            loop {
                path.push(y);
                let xm = m.mate_of_y(y);
                if xm == NONE {
                    break;
                }
                path.push(xm);
                y = ms.root_of_x(xm);
            }
            m.augment(&path);
            let path_len = path.len();
            ms.path = path;
            AugmentOutcome::Augmented {
                path_len,
                edges_traversed: traversed,
            }
        }
    };
    ms.frontier = frontier;
    ms.next = next;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> BipartiteCsr {
        // x0 - y0 - x1 - y1 - x2 - y2 (a 6-vertex alternating chain).
        BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])
    }

    #[test]
    fn x_search_finds_length_one_path() {
        let g = BipartiteCsr::from_edges(1, 1, &[(0, 0)]);
        let mut m = Matching::empty(1, 1);
        let mut ws = SolveWorkspace::new();
        let out = augment_from_x(&g, &mut m, 0, u64::MAX, &mut ws);
        assert!(matches!(out, AugmentOutcome::Augmented { path_len: 2, .. }));
        assert_eq!(m.mate_of_x(0), 0);
    }

    #[test]
    fn x_search_walks_alternating_chain() {
        let g = path_graph();
        let mut m = Matching::empty(3, 3);
        m.match_pair(1, 0);
        m.match_pair(2, 1);
        let mut ws = SolveWorkspace::new();
        // Only augmenting path from x0: x0-y0-x1-y1-x2-y2.
        let out = augment_from_x(&g, &mut m, 0, u64::MAX, &mut ws);
        assert!(matches!(out, AugmentOutcome::Augmented { path_len: 6, .. }));
        assert_eq!(m.cardinality(), 3);
        m.validate(&g).unwrap();
    }

    #[test]
    fn y_search_walks_alternating_chain() {
        let g = path_graph();
        let mut m = Matching::empty(3, 3);
        m.match_pair(1, 0);
        m.match_pair(2, 1);
        let mut ws = SolveWorkspace::new();
        let out = augment_from_y(&g, &mut m, 2, u64::MAX, &mut ws);
        assert!(matches!(out, AugmentOutcome::Augmented { path_len: 6, .. }));
        assert_eq!(m.cardinality(), 3);
        m.validate(&g).unwrap();
    }

    #[test]
    fn exhausted_is_a_no_path_proof() {
        // x0 and x1 both only see y0.
        let g = BipartiteCsr::from_edges(2, 1, &[(0, 0), (1, 0)]);
        let mut m = Matching::empty(2, 1);
        m.match_pair(0, 0);
        let mut ws = SolveWorkspace::new();
        let out = augment_from_x(&g, &mut m, 1, u64::MAX, &mut ws);
        assert!(matches!(out, AugmentOutcome::Exhausted { .. }));
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn budget_exhaustion_leaves_matching_unchanged() {
        let g = path_graph();
        let mut m = Matching::empty(3, 3);
        m.match_pair(1, 0);
        m.match_pair(2, 1);
        let before = m.clone();
        let mut ws = SolveWorkspace::new();
        let out = augment_from_x(&g, &mut m, 0, 1, &mut ws);
        assert!(matches!(out, AugmentOutcome::BudgetExceeded { .. }));
        assert_eq!(m, before);
    }

    #[test]
    fn multi_source_wave_reaches_through_matched_endpoints() {
        // x0-y0 and x1-y1 matched; the only augmenting structure needs
        // the wave to pass through matched vertices: x2 free sees y0,
        // x0's alternative is y2.
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 2), (1, 1), (2, 0)]);
        let mut m = Matching::empty(3, 3);
        m.match_pair(0, 0);
        m.match_pair(1, 1);
        let mut ws = SolveWorkspace::new();
        let out = augment_from_free_x(&g, &mut m, u64::MAX, &mut ws);
        assert!(out.augmented());
        assert_eq!(m.cardinality(), 3);
        m.validate(&g).unwrap();
    }

    #[test]
    fn workspace_reuse_across_searches_is_clean() {
        // The same workspace serves many searches on different graphs;
        // epoch bumping must isolate them without clears.
        let mut ws = SolveWorkspace::new();
        for seed in 0..20u64 {
            let g = crate::tests_support::random_graph(30, 30, 90, seed);
            let mut m = Matching::empty(30, 30);
            loop {
                let out = augment_from_free_x(&g, &mut m, u64::MAX, &mut ws);
                if !out.augmented() {
                    break;
                }
            }
            m.validate(&g).unwrap();
            let oracle = crate::hopcroft_karp(&g, Matching::for_graph(&g))
                .matching
                .cardinality();
            assert_eq!(m.cardinality(), oracle, "seed {seed}");
        }
    }

    #[test]
    fn csr_adjacency_early_exit() {
        let g = path_graph();
        let mut seen = 0;
        let stopped = g.for_each_x_neighbor(1, &mut |_| {
            seen += 1;
            true
        });
        assert!(stopped);
        assert_eq!(seen, 1);
        let mut all = Vec::new();
        let stopped = g.for_each_y_neighbor(1, &mut |x| {
            all.push(x);
            false
        });
        assert!(!stopped);
        assert_eq!(all, vec![1, 2]);
    }
}
