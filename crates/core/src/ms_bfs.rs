//! The serial MS-BFS engine with direction-optimizing BFS and tree
//! grafting (Algorithms 3–7 of the paper).
//!
//! One engine implements three of the paper's algorithms through the
//! [`MsBfsOptions`] toggles, which is exactly the ablation axis of Fig. 7:
//!
//! | configuration | paper name |
//! |---|---|
//! | `direction_optimizing = false, grafting = false` | MS-BFS |
//! | `direction_optimizing = true, grafting = false` | MS-BFS + direction optimization |
//! | `direction_optimizing = true, grafting = true` | **MS-BFS-Graft** |
//!
//! ## Phase anatomy (Algorithm 3)
//!
//! Each phase (1) grows an alternating BFS forest from the frontier until
//! it is empty, choosing top-down vs. bottom-up per level by the frontier
//! size against `numUnvisitedY / α`; (2) augments the matching along the
//! one augmenting path recorded per *renewable* tree (`leaf[root] ≠ NONE`);
//! (3) rebuilds the next frontier, either by **grafting** the `Y` vertices
//! of renewable trees onto active trees (a bottom-up step restricted to
//! `renewableY`) or, when grafting would not pay (`|activeX| ≤
//! |renewableY|/α`), by destroying the forest and restarting from the
//! unmatched `X` vertices.
//!
//! ## Pointer roles (§III-B)
//!
//! * `visited[y]` — `y` belongs to some tree this phase (trees stay
//!   vertex-disjoint);
//! * `parent[y]` — the `X` parent through which `y` was discovered;
//! * `root[v]` — the unmatched root of the tree containing `v`;
//! * `leaf[x₀]` — `NONE` while `T(x₀)` is *active*; the free `Y` endpoint
//!   of the discovered augmenting path once the tree is *renewable*.
//!
//! Matched `X` vertices are only ever reached through their unique mate,
//! so they need neither a visited flag nor a parent pointer.

use crate::ss::reconstruct_into;
use crate::stats::{SearchStats, Step};
use crate::trace::{TraceEvent, Tracer};
use crate::workspace::{MsBuffers, SolveWorkspace};
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::time::Instant;

/// A cooperative phase-boundary observer, invoked at the same point the
/// engines check [`MsBfsOptions::deadline`]: once before every phase,
/// with the number of completed phases as argument.
///
/// The `&'static` borrow keeps [`MsBfsOptions`] `Copy`; long-lived
/// callers (the service's fault-injection plan) leak one allocation per
/// process to obtain it. The hook may sleep (delay injection) or panic
/// (fault injection) — the engines make no attempt to catch unwinds,
/// that is the caller's job.
#[derive(Clone, Copy)]
pub struct PhaseHook(pub &'static (dyn Fn(u32) + Sync));

impl PhaseHook {
    /// Invokes the hook for the phase about to start.
    #[inline]
    pub fn call(&self, phases_done: u32) {
        (self.0)(phases_done)
    }
}

impl std::fmt::Debug for PhaseHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PhaseHook(..)")
    }
}

/// A replacement time source for the [`MsBfsOptions::deadline`] checks.
///
/// The engines compare `now_hook` (or `Instant::now` when unset) against
/// the deadline at every phase boundary; a simulation harness installs a
/// virtual clock here so cooperative cancellation runs on simulated time.
/// Like [`PhaseHook`], the `&'static` borrow keeps the options `Copy` —
/// long-lived callers leak one allocation per process.
#[derive(Clone, Copy)]
pub struct NowHook(pub &'static (dyn Fn() -> Instant + Sync));

impl NowHook {
    /// The hook's idea of "now".
    #[inline]
    pub fn now(&self) -> Instant {
        (self.0)()
    }
}

impl std::fmt::Debug for NowHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NowHook(..)")
    }
}

/// Configuration of the MS-BFS engine (serial and parallel).
#[derive(Clone, Copy, Debug)]
pub struct MsBfsOptions {
    /// Direction-optimization threshold α: top-down is used while
    /// `|F| < numUnvisitedY / α`, and the graft-vs-rebuild decision uses
    /// `|activeX| > |renewableY| / α`. The paper found α ≈ 5 best.
    pub alpha: f64,
    /// Enable direction-optimizing BFS (bottom-up steps).
    pub direction_optimizing: bool,
    /// Enable tree grafting between phases.
    pub grafting: bool,
    /// Record per-level frontier sizes into the stats (Fig. 8).
    pub record_frontier: bool,
    /// Record per-phase summaries ([`crate::stats::PhaseTrace`]).
    pub record_phases: bool,
    /// Cooperative cancellation: when set, the engine checks the clock at
    /// every phase boundary and stops early once the deadline has passed,
    /// returning the (valid, maximal-so-far) matching with
    /// [`SearchStats::timed_out`](crate::stats::SearchStats::timed_out)
    /// set. The matching is *not* guaranteed maximum in that case.
    pub deadline: Option<Instant>,
    /// Observer called at every phase boundary, immediately after the
    /// deadline check (the same cooperative cancellation point). `None`
    /// costs one branch per phase; the service's fault-injection harness
    /// uses it to panic or stall a solve mid-run.
    pub phase_hook: Option<PhaseHook>,
    /// Time source for the deadline checks; `None` means `Instant::now`.
    /// The simulation harness points this at its virtual clock so that
    /// deadlines expire on simulated time.
    pub now_hook: Option<NowHook>,
}

impl Default for MsBfsOptions {
    fn default() -> Self {
        Self {
            alpha: 5.0,
            direction_optimizing: true,
            grafting: true,
            record_frontier: false,
            record_phases: false,
            deadline: None,
            phase_hook: None,
            now_hook: None,
        }
    }
}

impl MsBfsOptions {
    /// Plain MS-BFS: always top-down, rebuild every phase.
    pub fn plain() -> Self {
        Self {
            direction_optimizing: false,
            grafting: false,
            ..Self::default()
        }
    }

    /// MS-BFS with direction-optimization but no grafting (Fig. 7 middle
    /// bar).
    pub fn dir_opt_only() -> Self {
        Self {
            direction_optimizing: true,
            grafting: false,
            ..Self::default()
        }
    }

    /// The full MS-BFS-Graft configuration (default).
    pub fn graft() -> Self {
        Self::default()
    }
}

struct Engine<'a> {
    g: &'a BipartiteCsr,
    m: Matching,
    opts: MsBfsOptions,
    /// Per-vertex buffers, borrowed from the caller's workspace. The
    /// epoch was already advanced by `begin_solve`, so every mark from
    /// earlier solves reads as unvisited/NONE without any O(n) clear
    /// (see [`crate::SolveWorkspace`]). The unvisited-`Y` cache lives
    /// here too: exact when `unvisited_valid`, rebuilt from a full scan
    /// after a graft/destroy reset invalidates it, and filtered
    /// incrementally between bottom-up levels of one phase so repeated
    /// levels do not rescan all of `Y`.
    ws: &'a mut MsBuffers,
    num_unvisited_y: usize,
    stats: SearchStats,
    tracer: Tracer,
}

/// Maximum matching by the serial MS-BFS engine configured by `opts`.
///
/// ```
/// use graft_core::{ms_bfs_serial, Matching, MsBfsOptions};
/// use graft_graph::BipartiteCsr;
///
/// let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
/// let out = ms_bfs_serial(&g, Matching::for_graph(&g), &MsBfsOptions::graft());
/// assert_eq!(out.matching.cardinality(), 2);
/// assert!(out.stats.phases >= 1);
/// ```
pub fn ms_bfs_serial(g: &BipartiteCsr, m: Matching, opts: &MsBfsOptions) -> RunOutcome {
    ms_bfs_serial_traced(g, m, opts, &Tracer::disabled())
}

/// [`ms_bfs_serial`] with a [`Tracer`] observing every level, phase, and
/// graft decision. Event closures only read engine state; a disabled
/// tracer makes this identical to `ms_bfs_serial` (pinned by
/// `tests/trace_noninterference.rs`).
pub fn ms_bfs_serial_traced(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    tracer: &Tracer,
) -> RunOutcome {
    let mut ws = SolveWorkspace::new();
    ms_bfs_serial_traced_in(g, m, opts, tracer, &mut ws)
}

/// [`ms_bfs_serial_traced`] solving in a caller-provided
/// [`SolveWorkspace`]: on a warm workspace the engine performs no heap
/// allocation at all (pinned by `tests/workspace_alloc.rs`), and the
/// result is identical to a fresh-workspace solve (pinned by
/// `tests/workspace_reuse.rs`).
pub fn ms_bfs_serial_traced_in(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let start = Instant::now();
    ws.ms.begin_solve(g.num_x(), g.num_y());
    let mut e = Engine {
        g,
        stats: SearchStats {
            initial_cardinality: m.cardinality(),
            ..Default::default()
        },
        m,
        opts: *opts,
        ws: &mut ws.ms,
        num_unvisited_y: g.num_y(),
        tracer: tracer.clone(),
    };
    e.run();
    let Engine { m, mut stats, .. } = e;
    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

impl Engine<'_> {
    fn run(&mut self) {
        // The frontier ping-pong buffers are taken out of the workspace
        // for the whole run (the borrow checker cannot see that the
        // engine never touches them through `self.ws`), and returned at
        // the end so their capacity survives into the next solve.
        let mut frontier = std::mem::take(&mut self.ws.frontier);
        let mut next = std::mem::take(&mut self.ws.next);
        // Initial frontier: all unmatched X vertices become roots.
        frontier.extend(self.m.unmatched_x());
        for &x in &frontier {
            self.ws.set_root_x(x, x);
        }

        loop {
            if let Some(deadline) = self.opts.deadline {
                let now = match self.opts.now_hook {
                    Some(h) => h.now(),
                    None => Instant::now(),
                };
                if now >= deadline {
                    self.stats.timed_out = true;
                    break;
                }
            }
            if let Some(hook) = self.opts.phase_hook {
                hook.call(self.stats.phases);
            }
            self.stats.phases += 1;
            let phase = self.stats.phases;
            let mut trace = crate::stats::PhaseTrace {
                phase,
                ..Default::default()
            };
            let edges_at_start = self.stats.edges_traversed;
            let path_edges_at_start = self.stats.total_augmenting_path_edges;
            // Phase stopwatch exists only while tracing: the untraced hot
            // path must not pay for a clock read per phase.
            let phase_t0 = self.tracer.is_enabled().then(Instant::now);

            // ---- Step 1: grow the alternating BFS forest. ----
            let mut level: u32 = 0;
            while !frontier.is_empty() {
                let bottom_up = self.opts.direction_optimizing
                    && (frontier.len() as f64) >= self.num_unvisited_y as f64 / self.opts.alpha;
                if self.opts.record_frontier {
                    self.stats
                        .record_frontier(phase, level, frontier.len(), bottom_up);
                }
                self.tracer.emit(|| TraceEvent::Level {
                    phase: u64::from(phase),
                    level: u64::from(level),
                    frontier: frontier.len() as u64,
                    unvisited_y: self.num_unvisited_y as u64,
                    bottom_up,
                });
                trace.frontier_peak = trace.frontier_peak.max(frontier.len());
                trace.bottom_up_levels += u32::from(bottom_up);
                let t0 = Instant::now();
                next.clear();
                let step = if bottom_up {
                    self.bottom_up_level(&mut next);
                    Step::BottomUp
                } else {
                    self.top_down_level(&frontier, &mut next);
                    Step::TopDown
                };
                self.stats.breakdown.add(step, t0.elapsed());
                std::mem::swap(&mut frontier, &mut next);
                level += 1;
            }
            trace.levels = level;

            // ---- Step 2: augment along one path per renewable tree. ----
            let t0 = Instant::now();
            let augmented = self.augment_all();
            self.stats.breakdown.add(Step::Augment, t0.elapsed());
            trace.augmenting_paths = augmented;
            trace.path_edges = self.stats.total_augmenting_path_edges - path_edges_at_start;
            if augmented == 0 {
                trace.edges_traversed = self.stats.edges_traversed - edges_at_start;
                self.emit_phase_end(&trace, phase_t0);
                if self.opts.record_phases {
                    self.stats.phase_traces.push(trace);
                }
                break; // no augmenting path in this phase: maximum reached
            }

            // ---- Step 3: rebuild the frontier (Algorithm 7). ----
            let (active_x, renewable_y, grafted) = self.rebuild_frontier(&mut frontier);
            trace.active_x = active_x;
            trace.renewable_y = renewable_y;
            trace.grafted = grafted;
            trace.edges_traversed = self.stats.edges_traversed - edges_at_start;
            self.emit_phase_end(&trace, phase_t0);
            self.tracer.emit(|| TraceEvent::Graft {
                phase: u64::from(phase),
                active_x: active_x as u64,
                renewable_y: renewable_y as u64,
                grafted,
            });
            if self.opts.record_phases {
                self.stats.phase_traces.push(trace);
            }
        }
        self.ws.frontier = frontier;
        self.ws.next = next;
    }

    fn emit_phase_end(&self, trace: &crate::stats::PhaseTrace, phase_t0: Option<Instant>) {
        self.tracer.emit(|| TraceEvent::PhaseEnd {
            phase: u64::from(trace.phase),
            levels: u64::from(trace.levels),
            bottom_up_levels: u64::from(trace.bottom_up_levels),
            frontier_peak: trace.frontier_peak as u64,
            augmentations: trace.augmenting_paths,
            path_edges: trace.path_edges,
            edges_traversed: trace.edges_traversed,
            elapsed_us: phase_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
        });
    }

    /// Algorithm 4: expand the frontier top-down into `next`.
    fn top_down_level(&mut self, frontier: &[VertexId], next: &mut Vec<VertexId>) {
        let g = self.g;
        for &x in frontier {
            // The tree may have turned renewable earlier this level.
            let root = self.ws.root_of_x(x);
            if self.ws.leaf_of(root) != NONE {
                continue;
            }
            for &y in g.x_neighbors(x) {
                self.stats.edges_traversed += 1;
                if !self.ws.is_visited(y) {
                    self.visit(y, x, next);
                }
            }
        }
    }

    /// Algorithm 6: expand bottom-up over the unvisited `Y` vertices.
    fn bottom_up_level(&mut self, next: &mut Vec<VertexId>) {
        let mut candidates = std::mem::take(&mut self.ws.unvisited);
        if self.ws.unvisited_valid {
            candidates.retain(|&y| !self.ws.is_visited(y));
        } else {
            candidates.clear();
            candidates.extend((0..self.g.num_y() as VertexId).filter(|&y| !self.ws.is_visited(y)));
        }
        // Indexed loop: `adopt_into_active` needs `&mut self` while the
        // candidate list is iterated.
        #[allow(clippy::needless_range_loop)]
        for i in 0..candidates.len() {
            let y = candidates[i];
            self.adopt_into_active(y, next);
        }
        candidates.retain(|&y| !self.ws.is_visited(y));
        self.ws.unvisited = candidates;
        self.ws.unvisited_valid = true;
    }

    /// Scans the neighbors of the unvisited vertex `y` for a member of an
    /// active tree; on success `y` (and its mate) join that tree.
    fn adopt_into_active(&mut self, y: VertexId, next: &mut Vec<VertexId>) {
        let g = self.g;
        for &x in g.y_neighbors(y) {
            self.stats.edges_traversed += 1;
            let root = self.ws.root_of_x(x);
            if root != NONE && self.ws.leaf_of(root) == NONE {
                self.visit(y, x, next);
                return; // stop exploring y's neighbors (Algorithm 6 line 7)
            }
        }
    }

    /// Algorithm 5: record `y`'s discovery from `x`, extending the tree.
    fn visit(&mut self, y: VertexId, x: VertexId, next: &mut Vec<VertexId>) {
        debug_assert!(!self.ws.is_visited(y));
        self.ws.set_visited(y);
        self.num_unvisited_y -= 1;
        self.ws.parent_y[y as usize] = x;
        let root = self.ws.root_of_x(x);
        self.ws.root_y[y as usize] = root;
        let mate = self.m.mate_of_y(y);
        if mate != NONE {
            self.ws.set_root_x(mate, root);
            next.push(mate);
        } else {
            // Augmenting path found: mark T(root) renewable. Later finds in
            // the same tree overwrite — one path per tree survives.
            self.ws.set_leaf(root, y);
        }
    }

    /// Step 2: augment every renewable tree; returns the number of paths.
    fn augment_all(&mut self) -> u64 {
        let mut count = 0u64;
        let mut path = std::mem::take(&mut self.ws.path);
        for x0 in 0..self.g.num_x() as VertexId {
            let leaf = self.ws.leaf_of(x0);
            if self.m.is_x_matched(x0) || self.ws.root_of_x(x0) != x0 || leaf == NONE {
                continue;
            }
            reconstruct_into(&self.m, &self.ws.parent_y, leaf, &mut path);
            debug_assert_eq!(path[0], x0);
            self.stats.total_augmenting_path_edges += (path.len() - 1) as u64;
            self.m.augment(&path);
            count += 1;
        }
        self.ws.path = path;
        self.stats.augmenting_paths += count;
        count
    }

    /// Algorithm 7: construct the next phase's frontier (into `frontier`)
    /// by tree grafting, or destroy the forest and restart from the
    /// unmatched vertices. Returns `(|activeX|, |renewableY|, grafted)`.
    fn rebuild_frontier(&mut self, frontier: &mut Vec<VertexId>) -> (usize, usize, bool) {
        // -- Statistics driving the decision (timed separately: Fig. 6). --
        let t_stats = Instant::now();
        let active_x = (0..self.g.num_x() as VertexId)
            .filter(|&x| {
                let r = self.ws.root_of_x(x);
                r != NONE && self.ws.leaf_of(r) == NONE
            })
            .count();
        let mut renewable_y = std::mem::take(&mut self.ws.renewable);
        renewable_y.clear();
        // The visited check must come first: `root_y` is only meaningful
        // (and only guaranteed in-range after a graph change) for
        // vertices visited in the current epoch.
        renewable_y.extend((0..self.g.num_y() as VertexId).filter(|&y| {
            if !self.ws.is_visited(y) {
                return false;
            }
            let r = self.ws.root_y[y as usize];
            r != NONE && self.ws.leaf_of(r) != NONE
        }));
        self.stats
            .breakdown
            .add(Step::Statistics, t_stats.elapsed());

        let t_graft = Instant::now();
        // Resets below un-visit vertices: the cached unvisited list is no
        // longer a superset and must be rebuilt at the next bottom-up.
        self.ws.unvisited_valid = false;
        // Reset the renewable Y vertices so they can be reused.
        for &y in &renewable_y {
            self.ws.unvisit(y);
            self.num_unvisited_y += 1;
            self.ws.root_y[y as usize] = NONE;
            self.ws.parent_y[y as usize] = NONE;
        }

        let renewable_count = renewable_y.len();
        let graft_profitable =
            self.opts.grafting && active_x as f64 > renewable_count as f64 / self.opts.alpha;

        frontier.clear();
        if graft_profitable {
            // Tree grafting: bottom-up step restricted to the renewable Y
            // vertices; any of them adjacent to an active tree is adopted
            // and its mate becomes part of the new frontier.
            for &y in &renewable_y {
                self.adopt_into_active(y, frontier);
            }
        } else {
            // Destroy everything and restart from the unmatched vertices.
            for y in 0..self.g.num_y() as VertexId {
                if self.ws.is_visited(y) {
                    self.ws.unvisit(y);
                    self.num_unvisited_y += 1;
                    self.ws.root_y[y as usize] = NONE;
                    self.ws.parent_y[y as usize] = NONE;
                }
            }
            for x in 0..self.g.num_x() as VertexId {
                self.ws.clear_root_x(x);
                self.ws.clear_leaf(x);
            }
            frontier.extend(self.m.unmatched_x());
            for &x in frontier.iter() {
                self.ws.set_root_x(x, x);
            }
        }
        self.ws.renewable = renewable_y;
        self.stats.breakdown.add(Step::Graft, t_graft.elapsed());
        (active_x, renewable_count, graft_profitable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    fn all_configs() -> [MsBfsOptions; 3] {
        [
            MsBfsOptions::plain(),
            MsBfsOptions::dir_opt_only(),
            MsBfsOptions::graft(),
        ]
    }

    /// The worked example of Fig. 2: 6 X vertices, 6 Y vertices.
    /// x1..x6 → 0-indexed x0..x5, same for y.
    fn fig2_graph() -> BipartiteCsr {
        BipartiteCsr::from_edges(
            6,
            6,
            &[
                (0, 0), // x1-y1
                (0, 1), // x1-y2
                (1, 1), // x2-y2  (matched in the example's initial matching)
                (1, 2), // x2-y3
                (2, 0), // x3-y1  (matched)
                (2, 2), // x3-y3
                (3, 1), // x4-y2
                (3, 3), // x4-y4  (matched)
                (4, 2), // x5-y3  (matched... actually x5-y5 matched)
                (4, 4), // x5-y5
                (5, 3), // x6-y4
                (5, 5), // x6-y6
            ],
        )
    }

    #[test]
    fn fig2_example_reaches_maximum() {
        let g = fig2_graph();
        // The maximal matching of Fig. 2(a): (x2,y2), (x3,y1), (x4,y4), (x5,y5).
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 1);
        m0.match_pair(2, 0);
        m0.match_pair(3, 3);
        m0.match_pair(4, 4);
        for opts in all_configs() {
            let out = ms_bfs_serial(&g, m0.clone(), &opts);
            assert!(is_maximum(&g, &out.matching), "not maximum under {opts:?}");
            assert_eq!(out.matching.cardinality(), 6);
        }
    }

    #[test]
    fn all_configs_agree_on_hard_graphs() {
        let graphs = [
            BipartiteCsr::from_edges(4, 2, &[(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)]),
            BipartiteCsr::from_edges(1, 1, &[(0, 0)]),
            BipartiteCsr::from_edges(3, 3, &[]),
            BipartiteCsr::from_edges(
                5,
                5,
                &[
                    (0, 0),
                    (0, 1),
                    (1, 0),
                    (2, 1),
                    (2, 2),
                    (3, 2),
                    (3, 3),
                    (4, 3),
                    (4, 4),
                    (0, 4),
                ],
            ),
        ];
        for g in &graphs {
            let oracle = crate::hopcroft_karp(g, Matching::for_graph(g))
                .matching
                .cardinality();
            for opts in all_configs() {
                let out = ms_bfs_serial(g, Matching::for_graph(g), &opts);
                assert_eq!(out.matching.cardinality(), oracle, "config {opts:?}");
                assert!(is_maximum(g, &out.matching));
            }
        }
    }

    #[test]
    fn long_chain_all_configs() {
        let k = 80;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let mut m0 = Matching::for_graph(&g);
        for i in 1..k as VertexId {
            m0.match_pair(i, i - 1);
        }
        for opts in all_configs() {
            let out = ms_bfs_serial(&g, m0.clone(), &opts);
            assert_eq!(out.matching.cardinality(), k, "config {opts:?}");
        }
    }

    #[test]
    fn grafting_reduces_traversals_on_low_matching_graph() {
        // Deficient graph: a few hubs serve many X vertices; most X stay
        // unmatched, so ungrafted MS-BFS rebuilds dead trees every phase.
        let mut edges = Vec::new();
        let nx = 300u32;
        for x in 0..nx {
            edges.push((x, x % 10));
            edges.push((x, 10 + (x % 7)));
        }
        // A tail of private vertices creating some augmenting-path churn.
        for i in 0..10u32 {
            edges.push((i, 17 + i));
        }
        let g = BipartiteCsr::from_edges(nx as usize, 27, &edges);
        let plain = ms_bfs_serial(&g, Matching::for_graph(&g), &MsBfsOptions::plain());
        let graft = ms_bfs_serial(&g, Matching::for_graph(&g), &MsBfsOptions::graft());
        assert_eq!(plain.matching.cardinality(), graft.matching.cardinality());
        assert!(
            graft.stats.edges_traversed <= plain.stats.edges_traversed,
            "grafting should not traverse more edges: {} vs {}",
            graft.stats.edges_traversed,
            plain.stats.edges_traversed
        );
    }

    #[test]
    fn frontier_history_recorded() {
        let g = fig2_graph();
        let opts = MsBfsOptions {
            record_frontier: true,
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_serial(&g, Matching::for_graph(&g), &opts);
        assert!(!out.stats.frontier_history.is_empty());
        assert_eq!(out.stats.frontier_history[0].level, 0);
    }

    #[test]
    fn fig2_phase_trace_is_stable() {
        // Regression pin of the engine's deterministic behavior on the
        // paper's Fig. 2 instance: with direction optimization both free
        // roots resolve in one phase (two disjoint augmenting paths of
        // lengths 1 and 3), and the second phase certifies termination.
        let g = fig2_graph();
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 1);
        m0.match_pair(2, 0);
        m0.match_pair(3, 3);
        m0.match_pair(4, 4);
        let opts = MsBfsOptions {
            record_phases: true,
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_serial(&g, m0, &opts);
        assert_eq!(out.matching.cardinality(), 6);
        let t = &out.stats.phase_traces;
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].augmenting_paths, 2);
        assert_eq!(t[0].path_edges, 4); // lengths 1 + 3
        assert_eq!(t[0].renewable_y, 5);
        assert_eq!(t[0].active_x, 0); // every tree found a path
        assert_eq!(t[1].augmenting_paths, 0); // certification phase
    }

    #[test]
    fn stats_consistency() {
        let g = fig2_graph();
        let out = ms_bfs_serial(&g, Matching::for_graph(&g), &MsBfsOptions::graft());
        assert_eq!(
            out.stats.final_cardinality - out.stats.initial_cardinality,
            out.stats.augmenting_paths as usize
        );
        assert!(out.stats.phases >= 1);
    }

    #[test]
    fn expired_deadline_stops_before_first_phase() {
        let g = fig2_graph();
        let opts = MsBfsOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_serial(&g, Matching::for_graph(&g), &opts);
        assert!(out.stats.timed_out);
        assert_eq!(out.stats.phases, 0);
        assert_eq!(out.matching.cardinality(), 0); // initial matching returned
    }

    #[test]
    fn generous_deadline_does_not_time_out() {
        let g = fig2_graph();
        let opts = MsBfsOptions {
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_serial(&g, Matching::for_graph(&g), &opts);
        assert!(!out.stats.timed_out);
        assert_eq!(out.matching.cardinality(), 6);
    }

    #[test]
    fn phase_hook_fires_once_per_phase() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        static LAST: AtomicU32 = AtomicU32::new(u32::MAX);
        let opts = MsBfsOptions {
            phase_hook: Some(PhaseHook(&|done| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                LAST.store(done, Ordering::Relaxed);
            })),
            ..MsBfsOptions::graft()
        };
        let g = fig2_graph();
        let out = ms_bfs_serial(&g, Matching::for_graph(&g), &opts);
        assert_eq!(out.matching.cardinality(), 6);
        assert_eq!(CALLS.load(Ordering::Relaxed), out.stats.phases);
        assert_eq!(LAST.load(Ordering::Relaxed), out.stats.phases - 1);
    }

    #[test]
    fn panicking_phase_hook_unwinds_out_of_the_engine() {
        let opts = MsBfsOptions {
            phase_hook: Some(PhaseHook(&|_| panic!("injected"))),
            ..MsBfsOptions::graft()
        };
        let g = fig2_graph();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ms_bfs_serial(&g, Matching::for_graph(&g), &opts)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn starts_from_perfect_matching() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(0, 0);
        m0.match_pair(1, 1);
        let out = ms_bfs_serial(&g, m0, &MsBfsOptions::graft());
        assert_eq!(out.stats.phases, 1); // one phase discovers nothing
        assert_eq!(out.stats.augmenting_paths, 0);
        assert_eq!(out.matching.cardinality(), 2);
    }
}
