//! Multithreaded Pothen-Fan (the parallel DFS competitor of the paper,
//! after Azad, Halappanavar, Rajamanickam, Boman, Khan & Pothen).
//!
//! Parallelization is **coarse-grained**: in each phase, every unmatched
//! `X` vertex is searched by a rayon task running the same
//! lookahead-DFS as the serial variant. Vertex-disjointness of the
//! concurrent DFS trees is enforced with phase-stamped atomic `visited`
//! claims on `Y` vertices, and free vertices are claimed by a
//! `compare_exchange` on the `Y`-side mate slot, so two searches can never
//! finish on the same free vertex.
//!
//! Interior path flips only touch `Y` vertices the search claimed and `X`
//! vertices entered through them, so the relaxed stores cannot race; the
//! rayon phase barrier publishes them to the next phase. The one subtlety
//! is a *freshly matched* pair: between a winner's free-vertex CAS and the
//! completion of its path flip, `mate_y[y]` already names an `X` whose own
//! slot still points elsewhere — descending through such a pair would put
//! that `X` on two stacks at once. The descent therefore adopts a mate
//! only when `mate_x[mate] == y` confirms the pair is stable (see the
//! comment at the check). This granularity
//! is exactly why the paper finds PF load-imbalanced (§V-B): one long DFS
//! serializes the tail of every phase — the behavior the variability
//! experiment reproduces.

use crate::stats::SearchStats;
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use rayon::prelude::*;
use std::time::Instant;

// Under `--cfg graft_check` the mate/visited/lookahead atomics become their
// graft-check instrumented twins, so the model suite explores the real
// search protocol. Outside the checker they pass straight through to std.
#[cfg(not(graft_check))]
use std::sync::atomic::{AtomicU32, Ordering};

#[cfg(graft_check)]
use graft_check::sync::atomic::{AtomicU32, Ordering};

/// Maximum matching by multithreaded Pothen-Fan with fairness + lookahead.
///
/// `threads = 0` uses the ambient rayon pool; otherwise a dedicated pool of
/// the given size is built for the call.
pub fn pothen_fan_parallel(g: &BipartiteCsr, m: Matching, threads: usize) -> RunOutcome {
    if threads == 0 {
        return run(g, m);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(|| run(g, m))
}

/// Shared search state: one atomic slot per vertex for mates, phase-stamped
/// visited claims, and the per-`X` lookahead cursors. Public only so the
/// graft-check model suite can drive `dfs_task` directly; fields stay
/// private and normal builds cannot reach the type at all.
pub struct Shared<'a> {
    g: &'a BipartiteCsr,
    mate_x: Vec<AtomicU32>,
    mate_y: Vec<AtomicU32>,
    visited: Vec<AtomicU32>,
    lookahead: Vec<AtomicU32>,
}

fn run(g: &BipartiteCsr, m: Matching) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    let (mx, my) = m.into_mates();
    let sh = Shared {
        g,
        mate_x: mx.into_iter().map(AtomicU32::new).collect(),
        mate_y: my.into_iter().map(AtomicU32::new).collect(),
        visited: (0..g.num_y()).map(|_| AtomicU32::new(0)).collect(),
        lookahead: (0..g.num_x()).map(|_| AtomicU32::new(0)).collect(),
    };

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        let roots: Vec<VertexId> = (0..g.num_x() as VertexId)
            .filter(|&x| sh.mate_x[x as usize].load(Ordering::Relaxed) == NONE)
            .collect();
        if roots.is_empty() {
            break;
        }
        let fair_reverse = phase.is_multiple_of(2);

        // (augments, path edges, traversed edges) per task, reduced.
        let (aug, path_edges, traversed) = roots
            .par_iter()
            .map(|&x0| dfs_task(&sh, phase, fair_reverse, x0))
            .reduce(
                || (0u64, 0u64, 0u64),
                |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
            );
        stats.phases += 1;
        stats.augmenting_paths += aug;
        stats.total_augmenting_path_edges += path_edges;
        stats.edges_traversed += traversed;
        if aug == 0 {
            break;
        }
    }

    let mate_x: Vec<VertexId> = sh
        .mate_x
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let mate_y: Vec<VertexId> = sh
        .mate_y
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let matching = Matching::from_mates(mate_x, mate_y);
    stats.final_cardinality = matching.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching, stats }
}

/// One concurrent lookahead-DFS; returns `(augmented, path_edges, edges_traversed)`.
fn dfs_task(sh: &Shared<'_>, phase: u32, fair_reverse: bool, x0: VertexId) -> (u64, u64, u64) {
    let g = sh.g;
    let mut traversed = 0u64;
    let mut stack: Vec<(VertexId, usize, VertexId)> = vec![(x0, 0, NONE)];

    while !stack.is_empty() {
        let (x, _, _) = *stack.last().unwrap();
        let nbrs = g.x_neighbors(x);

        // Lookahead with a shared monotone cursor. Invariant: every entry
        // strictly below the cursor is matched (and stays matched), so no
        // free vertex can ever be skipped.
        let la = &sh.lookahead[x as usize];
        let mut claimed_free = NONE;
        loop {
            let i = la.load(Ordering::Relaxed) as usize;
            if i >= nbrs.len() {
                break;
            }
            la.store(i as u32 + 1, Ordering::Relaxed);
            let y = nbrs[i];
            traversed += 1;
            if sh.mate_y[y as usize].load(Ordering::Relaxed) != NONE {
                continue;
            }
            // Claim the free vertex: the CAS loser rescans.
            if sh.mate_y[y as usize]
                .compare_exchange(NONE, x, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                claimed_free = y;
                break;
            }
        }
        if claimed_free != NONE {
            // Flip the path spelled out by the stack. Every interior vertex
            // is exclusively owned by this search (visited / free-CAS
            // claims), so plain stores suffice.
            let mut cur_y = claimed_free;
            let mut edges = 1u64;
            while let Some((fx, _, via)) = stack.pop() {
                sh.mate_y[cur_y as usize].store(fx, Ordering::Relaxed);
                sh.mate_x[fx as usize].store(cur_y, Ordering::Relaxed);
                cur_y = via;
                if cur_y != NONE {
                    edges += 2;
                }
            }
            return (1, edges, traversed);
        }

        // DFS descent with phase-stamped visited claims.
        let top = stack.last_mut().unwrap();
        let mut advanced = false;
        while top.1 < nbrs.len() {
            let i = top.1;
            top.1 += 1;
            let y = if fair_reverse {
                nbrs[nbrs.len() - 1 - i]
            } else {
                nbrs[i]
            };
            traversed += 1;
            let v = &sh.visited[y as usize];
            let seen = v.load(Ordering::Relaxed);
            if seen == phase {
                continue;
            }
            if v.compare_exchange(seen, phase, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue; // another search claimed y concurrently
            }
            let mate = sh.mate_y[y as usize].load(Ordering::Relaxed);
            if mate == NONE {
                // y became free-claimed... cannot happen: free vertices are
                // never claimed via `visited`; they are matched by the
                // free-CAS before any mate load can observe NONE here only
                // if y was free all along — in that case claim it now.
                if sh.mate_y[y as usize]
                    .compare_exchange(NONE, x, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    let mut cur_y = y;
                    let mut edges = 1u64;
                    while let Some((fx, _, via)) = stack.pop() {
                        sh.mate_y[cur_y as usize].store(fx, Ordering::Relaxed);
                        sh.mate_x[fx as usize].store(cur_y, Ordering::Relaxed);
                        cur_y = via;
                        if cur_y != NONE {
                            edges += 2;
                        }
                    }
                    return (1, edges, traversed);
                }
                continue;
            }
            // Only descend through a *stable* matched edge. If `mate` does
            // not point back at `y`, another search free-claimed `y` an
            // instant ago and is still flipping its path: adopting the X
            // side now would put one vertex on two stacks and interleave
            // two flips over the same mate slots. A relaxed load is enough:
            // `mate_x[mate] == y` is only ever written *after* the claim
            // that set `mate_y[y] = mate`, and once both slots agree the
            // claiming search never writes either again — while a stale
            // mismatch merely makes us skip a matched edge the next phase
            // will see consistently.
            // Mutation knob (model-check builds only): when set, descend
            // without the check — reintroducing the adoption race the
            // graft-check regression suite must find.
            #[cfg(graft_check)]
            let check_stability =
                !check_api::DISABLE_STABILITY_CHECK.load(std::sync::atomic::Ordering::Relaxed);
            #[cfg(not(graft_check))]
            let check_stability = true;
            if check_stability && sh.mate_x[mate as usize].load(Ordering::Relaxed) != y {
                continue;
            }
            stack.push((mate, 0, y));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
        }
    }
    (0, 0, traversed)
}

/// Test-only surface for the graft-check model suite: build the shared
/// search state, run one `dfs_task` exactly as a pool task would, and
/// snapshot the mate arrays for post-execution invariant checks.
#[cfg(graft_check)]
pub mod check_api {
    use super::*;

    /// When set, `dfs_task` descends through freshly matched pairs without
    /// confirming `mate_x[mate] == y` — reintroducing the adoption race the
    /// stability check exists to prevent. A plain std atomic on purpose:
    /// this is test configuration, not modeled state, so reading it adds no
    /// scheduling points.
    pub static DISABLE_STABILITY_CHECK: std::sync::atomic::AtomicBool =
        std::sync::atomic::AtomicBool::new(false);

    /// Shared search state for `g` starting from an empty matching.
    pub fn make_shared(g: &BipartiteCsr) -> Shared<'_> {
        Shared {
            g,
            mate_x: (0..g.num_x()).map(|_| AtomicU32::new(NONE)).collect(),
            mate_y: (0..g.num_y()).map(|_| AtomicU32::new(NONE)).collect(),
            visited: (0..g.num_y()).map(|_| AtomicU32::new(0)).collect(),
            lookahead: (0..g.num_x()).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// One phase-1 search from root `x0` (forward fairness), exactly the
    /// closure a pool task runs.
    pub fn run_search(sh: &Shared<'_>, x0: VertexId) -> (u64, u64, u64) {
        dfs_task(sh, 1, false, x0)
    }

    /// Snapshot `(mate_x, mate_y)`.
    pub fn mates(sh: &Shared<'_>) -> (Vec<VertexId>, Vec<VertexId>) {
        (
            sh.mate_x
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            sh.mate_y
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    fn chain(k: u32) -> BipartiteCsr {
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        BipartiteCsr::from_edges(k as usize, k as usize, &edges)
    }

    #[test]
    fn parallel_pf_simple() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = pothen_fan_parallel(&g, Matching::for_graph(&g), 2);
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn parallel_pf_chain() {
        let g = chain(100);
        let out = pothen_fan_parallel(&g, Matching::for_graph(&g), 4);
        assert_eq!(out.matching.cardinality(), 100);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn parallel_pf_contention_on_scarce_y() {
        // Many X vertices racing for 3 free Y vertices.
        let mut edges = Vec::new();
        for x in 0..50u32 {
            for y in 0..3u32 {
                edges.push((x, y));
            }
        }
        let g = BipartiteCsr::from_edges(50, 3, &edges);
        let out = pothen_fan_parallel(&g, Matching::for_graph(&g), 4);
        assert_eq!(out.matching.cardinality(), 3);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn parallel_pf_matches_serial_cardinality() {
        let g = chain(64);
        let serial = crate::pothen_fan(&g, Matching::for_graph(&g));
        let par = pothen_fan_parallel(&g, Matching::for_graph(&g), 3);
        assert_eq!(serial.matching.cardinality(), par.matching.cardinality());
    }

    #[test]
    fn parallel_pf_from_initializer() {
        let g = chain(40);
        let m0 = crate::init::Initializer::KarpSipser.run(&g, 3);
        let out = pothen_fan_parallel(&g, m0, 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn parallel_pf_ambient_pool() {
        let g = chain(16);
        let out = pothen_fan_parallel(&g, Matching::for_graph(&g), 0);
        assert_eq!(out.matching.cardinality(), 16);
    }
}
