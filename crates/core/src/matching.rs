//! The [`Matching`] type: a set of vertex-disjoint edges with O(1) mate
//! lookup on both sides.
//!
//! All algorithms in this crate communicate through this type. It mirrors
//! the paper's `mate` array (§III-B): `mate[u] = -1` for an unmatched
//! vertex, here represented by [`NONE`].

use graft_graph::{BipartiteCsr, VertexId, NONE};

/// A matching in a bipartite graph: `mate_x[x] = y ⇔ mate_y[y] = x`.
///
/// The cardinality is maintained incrementally so that `cardinality()` is
/// O(1) — the algorithms poll it after every phase.
#[derive(Clone, PartialEq, Eq)]
pub struct Matching {
    mate_x: Vec<VertexId>,
    mate_y: Vec<VertexId>,
    cardinality: usize,
}

impl Matching {
    /// The empty matching for an `nx × ny` bipartite graph.
    pub fn empty(nx: usize, ny: usize) -> Self {
        Self {
            mate_x: vec![NONE; nx],
            mate_y: vec![NONE; ny],
            cardinality: 0,
        }
    }

    /// The empty matching sized for `g`.
    pub fn for_graph(g: &BipartiteCsr) -> Self {
        Self::empty(g.num_x(), g.num_y())
    }

    /// Reconstructs a matching from raw mate arrays.
    ///
    /// Panics if the arrays are inconsistent (mates that do not point back
    /// at each other, or out-of-range ids). See
    /// [`Matching::try_from_mates`] for the fallible variant.
    pub fn from_mates(mate_x: Vec<VertexId>, mate_y: Vec<VertexId>) -> Self {
        Self::try_from_mates(mate_x, mate_y).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Matching::from_mates`] for untrusted input.
    pub fn try_from_mates(mate_x: Vec<VertexId>, mate_y: Vec<VertexId>) -> Result<Self, String> {
        let mut cardinality = 0;
        for (x, &y) in mate_x.iter().enumerate() {
            if y != NONE {
                if (y as usize) >= mate_y.len() || mate_y[y as usize] != x as VertexId {
                    return Err(format!("mate arrays inconsistent at x={x}"));
                }
                cardinality += 1;
            }
        }
        for (y, &x) in mate_y.iter().enumerate() {
            if x != NONE && ((x as usize) >= mate_x.len() || mate_x[x as usize] != y as VertexId) {
                return Err(format!("mate arrays inconsistent at y={y}"));
            }
        }
        Ok(Self {
            mate_x,
            mate_y,
            cardinality,
        })
    }

    /// Number of matched edges `|M|`.
    #[inline(always)]
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// The mate of `x`, or [`NONE`] if unmatched.
    #[inline(always)]
    pub fn mate_of_x(&self, x: VertexId) -> VertexId {
        self.mate_x[x as usize]
    }

    /// The mate of `y`, or [`NONE`] if unmatched.
    #[inline(always)]
    pub fn mate_of_y(&self, y: VertexId) -> VertexId {
        self.mate_y[y as usize]
    }

    /// Whether `x` is matched.
    #[inline(always)]
    pub fn is_x_matched(&self, x: VertexId) -> bool {
        self.mate_x[x as usize] != NONE
    }

    /// Whether `y` is matched.
    #[inline(always)]
    pub fn is_y_matched(&self, y: VertexId) -> bool {
        self.mate_y[y as usize] != NONE
    }

    /// The raw `X`-side mate array.
    #[inline(always)]
    pub fn mates_x(&self) -> &[VertexId] {
        &self.mate_x
    }

    /// The raw `Y`-side mate array.
    #[inline(always)]
    pub fn mates_y(&self) -> &[VertexId] {
        &self.mate_y
    }

    /// Iterator over unmatched `X` vertices.
    pub fn unmatched_x(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.mate_x
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == NONE)
            .map(|(x, _)| x as VertexId)
    }

    /// Iterator over unmatched `Y` vertices.
    pub fn unmatched_y(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.mate_y
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == NONE)
            .map(|(y, _)| y as VertexId)
    }

    /// Iterator over the matched edges `(x, y)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.mate_x
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != NONE)
            .map(|(x, &y)| (x as VertexId, y))
    }

    /// Matches the currently-unmatched pair `(x, y)`.
    ///
    /// Panics (debug) if either endpoint is already matched; use
    /// [`Matching::rematch`] to steal.
    #[inline]
    pub fn match_pair(&mut self, x: VertexId, y: VertexId) {
        debug_assert_eq!(self.mate_x[x as usize], NONE, "x={x} already matched");
        debug_assert_eq!(self.mate_y[y as usize], NONE, "y={y} already matched");
        self.mate_x[x as usize] = y;
        self.mate_y[y as usize] = x;
        self.cardinality += 1;
    }

    /// Matches `(x, y)`, unmatching any previous partners. Returns the
    /// previous mate of `y` (the "stolen-from" vertex used by push-relabel),
    /// or [`NONE`].
    pub fn rematch(&mut self, x: VertexId, y: VertexId) -> VertexId {
        let old_x = self.mate_y[y as usize];
        if old_x == x {
            return NONE; // already matched to each other
        }
        if old_x != NONE {
            self.mate_x[old_x as usize] = NONE;
            self.cardinality -= 1;
        }
        let old_y = self.mate_x[x as usize];
        if old_y != NONE {
            self.mate_y[old_y as usize] = NONE;
            self.cardinality -= 1;
        }
        self.mate_x[x as usize] = y;
        self.mate_y[y as usize] = x;
        self.cardinality += 1;
        old_x
    }

    /// Removes the matched edge incident to `x`. Panics (debug) if `x` is
    /// unmatched.
    pub fn unmatch_x(&mut self, x: VertexId) {
        let y = self.mate_x[x as usize];
        debug_assert_ne!(y, NONE);
        self.mate_x[x as usize] = NONE;
        self.mate_y[y as usize] = NONE;
        self.cardinality -= 1;
    }

    /// Augments along the path
    /// `x₀, y₁, x₁, y₂, …, x_k, y_{k+1}` given as the interleaved vertex
    /// sequence `[x₀, y₁, x₁, …, x_k, y_{k+1}]` (even length ≥ 2).
    ///
    /// Endpoints must be unmatched; interior edges must alternate
    /// matched/unmatched with respect to the current matching (checked in
    /// debug builds). Increases the cardinality by exactly one.
    pub fn augment(&mut self, path: &[VertexId]) {
        assert!(
            path.len() >= 2 && path.len().is_multiple_of(2),
            "augmenting path must interleave x,y"
        );
        debug_assert_eq!(
            self.mate_x[path[0] as usize], NONE,
            "path must start unmatched"
        );
        debug_assert_eq!(
            self.mate_y[path[path.len() - 1] as usize],
            NONE,
            "path must end unmatched"
        );
        // path[2i] = x_i, path[2i+1] = y_{i+1}; matched pairs before the
        // augmentation are (x_i, y_i), i.e. (path[2i], path[2i-1]).
        for i in (2..path.len()).step_by(2) {
            debug_assert_eq!(
                self.mate_x[path[i] as usize],
                path[i - 1],
                "interior path edge not matched"
            );
        }
        for i in (0..path.len()).step_by(2) {
            let (x, y) = (path[i], path[i + 1]);
            self.mate_x[x as usize] = y;
            self.mate_y[y as usize] = x;
        }
        self.cardinality += 1;
    }

    /// Consumes the matching, returning the `(mate_x, mate_y)` arrays.
    pub fn into_mates(self) -> (Vec<VertexId>, Vec<VertexId>) {
        (self.mate_x, self.mate_y)
    }

    /// Checks structural validity against `g`: mates point at each other,
    /// every matched pair is an edge of `g`, cardinality is consistent.
    pub fn validate(&self, g: &BipartiteCsr) -> Result<(), String> {
        if self.mate_x.len() != g.num_x() || self.mate_y.len() != g.num_y() {
            return Err("matching dimensions do not match graph".into());
        }
        let mut count = 0;
        for x in 0..g.num_x() {
            let y = self.mate_x[x];
            if y == NONE {
                continue;
            }
            if y as usize >= g.num_y() {
                return Err(format!("x={x} matched to out-of-range y={y}"));
            }
            if self.mate_y[y as usize] != x as VertexId {
                return Err(format!("mate_y[{y}] does not point back at x={x}"));
            }
            if !g.has_edge(x as VertexId, y) {
                return Err(format!("matched pair ({x},{y}) is not an edge"));
            }
            count += 1;
        }
        for y in 0..g.num_y() {
            let x = self.mate_y[y];
            if x != NONE && self.mate_x[x as usize] != y as VertexId {
                return Err(format!("mate_x[{x}] does not point back at y={y}"));
            }
        }
        if count != self.cardinality {
            return Err(format!(
                "cached cardinality {} disagrees with actual {count}",
                self.cardinality
            ));
        }
        Ok(())
    }

    /// The matching number as a fraction of `|V|`, the normalization the
    /// paper's Table II reports (`2|M| / n` — a perfect matching of a
    /// balanced graph gives 1.0).
    pub fn matching_fraction(&self, g: &BipartiteCsr) -> f64 {
        if g.num_vertices() == 0 {
            return 0.0;
        }
        2.0 * self.cardinality as f64 / g.num_vertices() as f64
    }
}

impl std::fmt::Debug for Matching {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matching")
            .field("nx", &self.mate_x.len())
            .field("ny", &self.mate_y.len())
            .field("cardinality", &self.cardinality)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3, 4);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.unmatched_x().count(), 3);
        assert_eq!(m.unmatched_y().count(), 4);
        assert!(!m.is_x_matched(0));
    }

    #[test]
    fn match_and_unmatch() {
        let mut m = Matching::empty(2, 2);
        m.match_pair(0, 1);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_x(0), 1);
        assert_eq!(m.mate_of_y(1), 0);
        assert!(m.is_y_matched(1));
        assert!(!m.is_y_matched(0));
        m.unmatch_x(0);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.mate_of_y(1), NONE);
    }

    #[test]
    fn rematch_steals() {
        let mut m = Matching::empty(3, 3);
        m.match_pair(0, 0);
        let stolen = m.rematch(1, 0);
        assert_eq!(stolen, 0);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_x(0), NONE);
        assert_eq!(m.mate_of_x(1), 0);
        // Rematching the same pair is a no-op.
        assert_eq!(m.rematch(1, 0), NONE);
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn rematch_releases_both_old_partners() {
        let mut m = Matching::empty(3, 3);
        m.match_pair(0, 0);
        m.match_pair(1, 1);
        m.rematch(0, 1); // 0 leaves y0, steals y1 from x1
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_x(0), 1);
        assert_eq!(m.mate_of_y(0), NONE);
        assert_eq!(m.mate_of_x(1), NONE);
    }

    #[test]
    fn augment_length_one() {
        let mut m = Matching::empty(1, 1);
        m.augment(&[0, 0]);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_x(0), 0);
    }

    #[test]
    fn augment_length_three() {
        // x0 - y1 - x1 - y2 where (x1,y1) is matched.
        let mut m = Matching::empty(2, 3);
        m.match_pair(1, 1);
        m.augment(&[0, 1, 1, 2]);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.mate_of_x(0), 1);
        assert_eq!(m.mate_of_x(1), 2);
    }

    #[test]
    fn validate_catches_non_edge() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 1); // not an edge of g
        assert!(m.validate(&g).is_err());
        let mut m2 = Matching::for_graph(&g);
        m2.match_pair(0, 0);
        assert!(m2.validate(&g).is_ok());
    }

    #[test]
    fn from_mates_roundtrip() {
        let mut m = Matching::empty(3, 3);
        m.match_pair(0, 2);
        m.match_pair(2, 0);
        let (mx, my) = m.clone().into_mates();
        let m2 = Matching::from_mates(mx, my);
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic]
    fn from_mates_rejects_inconsistent() {
        Matching::from_mates(vec![1], vec![NONE, NONE]);
    }

    #[test]
    fn matching_fraction_perfect() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let mut m = Matching::for_graph(&g);
        m.match_pair(0, 0);
        m.match_pair(1, 1);
        assert!((m.matching_fraction(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator() {
        let mut m = Matching::empty(3, 3);
        m.match_pair(2, 0);
        m.match_pair(0, 1);
        let e: Vec<_> = m.edges().collect();
        assert_eq!(e, vec![(0, 1), (2, 0)]);
    }
}
