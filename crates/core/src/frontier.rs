//! The paper's parallel frontier queue: per-thread private buffers that
//! spill into one shared global queue.
//!
//! §III-B / §IV-A: *"we assign a small private queue to each thread so
//! that it fits in the local cache. When a private queue is filled up,
//! the associated thread copies the local queue to the global shared
//! queue in a thread-safe manner. These queue management schemes improve
//! the scalability of our matching algorithm significantly across
//! multiple sockets."* (The scheme originates in the Graph500 `omp-csr`
//! reference code.)
//!
//! [`SharedQueue`] is that global queue: a fixed-capacity slot array with
//! an atomic tail; a flush reserves a contiguous range with one
//! `fetch_add` and writes its batch without further synchronization.
//! [`LocalBuffer`] is the cache-sized private queue that batches pushes.
//!
//! The MS-BFS engines in this crate express the same pattern through
//! rayon's `fold`/`reduce` (per-task `Vec`s concatenated at the barrier).
//! `bench_kernels::frontier_*` compares the two schemes directly: on a
//! single core fold/reduce wins ~2× (the shared queue pays for its
//! atomic slot stores with no contention to amortize); the explicit
//! queue's strengths — bounded memory, allocation-free levels, one
//! `fetch_add` per spill regardless of thread count — are multi-socket
//! properties, exactly the context the paper tuned it for. This module
//! keeps the structure available as a substrate for such hosts.

use graft_graph::VertexId;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Number of entries a [`LocalBuffer`] holds before spilling (512 B,
/// comfortably inside L1, matching the paper's "fits in the local cache").
pub const LOCAL_BUFFER_LEN: usize = 128;

/// Fixed-capacity, concurrently-fillable vertex queue.
///
/// Writers reserve disjoint ranges with a single atomic `fetch_add`, so
/// pushes never contend beyond that one counter. Reading happens after
/// the parallel region (the level barrier), via [`SharedQueue::drain`].
pub struct SharedQueue {
    slots: Vec<AtomicU32>,
    tail: AtomicUsize,
}

impl SharedQueue {
    /// A queue that can hold up to `capacity` vertices (for BFS
    /// frontiers: the side size, since a vertex enters at most once).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            tail: AtomicUsize::new(0),
        }
    }

    /// Current number of enqueued vertices.
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether nothing has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a batch, reserving its range with one `fetch_add`.
    ///
    /// Panics if the queue would overflow — for frontier use the capacity
    /// is an invariant (each vertex enters at most once per level), so an
    /// overflow is a logic error, not an input error.
    pub fn push_batch(&self, batch: &[VertexId]) {
        if batch.is_empty() {
            return;
        }
        let start = self.tail.fetch_add(batch.len(), Ordering::AcqRel);
        let end = start + batch.len();
        assert!(
            end <= self.slots.len(),
            "SharedQueue overflow: {end} > {}",
            self.slots.len()
        );
        for (slot, &v) in self.slots[start..end].iter().zip(batch) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// Copies the queued vertices out and resets the queue for the next
    /// level. Call only after all writers have finished (a barrier).
    pub fn drain(&self) -> Vec<VertexId> {
        let len = self.len();
        let out = self.slots[..len]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        self.tail.store(0, Ordering::Release);
        out
    }
}

/// A thread-private buffer that spills into a [`SharedQueue`] when full
/// and flushes the remainder on drop.
pub struct LocalBuffer<'q> {
    queue: &'q SharedQueue,
    buf: [VertexId; LOCAL_BUFFER_LEN],
    len: usize,
}

impl<'q> LocalBuffer<'q> {
    /// A fresh private buffer spilling into `queue`.
    pub fn new(queue: &'q SharedQueue) -> Self {
        Self {
            queue,
            buf: [0; LOCAL_BUFFER_LEN],
            len: 0,
        }
    }

    /// Enqueues one vertex, spilling to the shared queue when the local
    /// buffer fills.
    #[inline]
    pub fn push(&mut self, v: VertexId) {
        self.buf[self.len] = v;
        self.len += 1;
        if self.len == LOCAL_BUFFER_LEN {
            self.flush();
        }
    }

    /// Spills the buffered vertices now.
    pub fn flush(&mut self) {
        self.queue.push_batch(&self.buf[..self.len]);
        self.len = 0;
    }
}

impl Drop for LocalBuffer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn single_thread_roundtrip() {
        let q = SharedQueue::with_capacity(10);
        q.push_batch(&[3, 1, 4]);
        q.push_batch(&[1, 5]);
        assert_eq!(q.len(), 5);
        let mut v = q.drain();
        v.sort_unstable();
        assert_eq!(v, vec![1, 1, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn local_buffer_spills_and_flushes_on_drop() {
        let q = SharedQueue::with_capacity(LOCAL_BUFFER_LEN * 2 + 10);
        {
            let mut b = LocalBuffer::new(&q);
            for i in 0..(LOCAL_BUFFER_LEN as u32 + 5) {
                b.push(i);
            }
            // One automatic spill has happened; 5 entries still private.
            assert_eq!(q.len(), LOCAL_BUFFER_LEN);
        }
        // Drop flushed the rest.
        assert_eq!(q.len(), LOCAL_BUFFER_LEN + 5);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let n = 10_000u32;
        let q = SharedQueue::with_capacity(n as usize);
        (0..n)
            .into_par_iter()
            .for_each_init(|| LocalBuffer::new(&q), |buf, v| buf.push(v));
        let mut out = q.drain();
        out.sort_unstable();
        let expect: Vec<u32> = (0..n).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn drain_resets_for_reuse() {
        let q = SharedQueue::with_capacity(4);
        q.push_batch(&[1, 2, 3, 4]);
        assert_eq!(q.drain().len(), 4);
        q.push_batch(&[9]);
        assert_eq!(q.drain(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_a_logic_error() {
        let q = SharedQueue::with_capacity(2);
        q.push_batch(&[1, 2, 3]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let q = SharedQueue::with_capacity(1);
        q.push_batch(&[]);
        assert!(q.is_empty());
    }
}
