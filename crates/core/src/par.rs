//! The multithreaded MS-BFS-Graft engine (Algorithm 3 of the paper).
//!
//! This is the paper's contribution: a level-synchronous parallel
//! alternating BFS with direction optimization and tree grafting. The
//! parallel structure maps the paper's OpenMP implementation onto rayon:
//!
//! * **Private queues → fold/reduce.** The paper gives each thread a small
//!   private queue that spills into a shared global queue (the Graph500
//!   `omp-csr` scheme). Rayon's `fold` creates exactly that: a per-task
//!   local `Vec` filled lock-free, and `reduce` concatenates them into the
//!   global next frontier — no hot-path locks.
//! * **Vertex-disjoint trees → visited CAS.** A `Y` vertex joins exactly
//!   one tree because discovery happens through a `compare_exchange` on its
//!   visited flag. A cheap relaxed load screens out already-visited
//!   vertices before attempting the CAS, mirroring the paper's
//!   "check the flags before performing the atomic operations".
//! * **Benign `leaf` race.** Threads finding augmenting paths in the same
//!   tree all store to `leaf[root]`; the last write wins and exactly one
//!   path per tree is augmented. Free endpoints whose record was
//!   overwritten are recycled by the renewable-tree reset, so no matching
//!   opportunity is lost (the serial engine has the same overwrite
//!   semantics).
//! * **Bottom-up needs no atomics.** Each unvisited `Y` vertex is owned by
//!   one task, which is the only writer of its flags (§III-B).
//! * **Parallel augmentation.** Augmenting paths live in distinct trees and
//!   are therefore vertex-disjoint; each is flipped by one task.
//!
//! Memory ordering: claims use `AcqRel` CAS; all other pointer stores are
//! `Relaxed` and become visible to the next level / step through the
//! happens-before edges of the rayon joins that end every parallel region
//! (the level-synchronous barrier the paper relies on). Since the shim
//! gained a real work-stealing pool these joins are genuine cross-thread
//! barriers: every batch ends with the submitting thread acquiring a latch
//! mutex that each worker released after finishing its piece, so all
//! `Relaxed` stores from a level are ordered before every read in the next
//! level. The engine code needed no changes to run multithreaded; see
//! DESIGN.md §17 for the full argument.

use crate::ms_bfs::MsBfsOptions;
use crate::stats::{SearchStats, Step, Stopwatch};
use crate::trace::{TraceEvent, Tracer};
use crate::workspace::{pack, unpack, SolveWorkspace};
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// Maximum matching by the parallel MS-BFS-Graft engine.
///
/// `opts` carries the α threshold and the direction-optimization /
/// grafting toggles (the Fig. 7 ablation axis also applies to the parallel
/// engine). `threads = 0` uses the ambient rayon pool.
pub fn ms_bfs_graft_parallel(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    threads: usize,
) -> RunOutcome {
    ms_bfs_graft_parallel_traced(g, m, opts, threads, &Tracer::disabled())
}

/// [`ms_bfs_graft_parallel`] with a [`Tracer`] observing every level,
/// phase, and graft decision. All events are emitted from the driving
/// thread at level/phase boundaries — the parallel regions are untouched —
/// so enabling tracing cannot change scheduling-visible behavior.
pub fn ms_bfs_graft_parallel_traced(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    threads: usize,
    tracer: &Tracer,
) -> RunOutcome {
    let mut ws = SolveWorkspace::new();
    ms_bfs_graft_parallel_traced_in(g, m, opts, threads, tracer, &mut ws)
}

/// [`ms_bfs_graft_parallel_traced`] against a caller-owned
/// [`SolveWorkspace`]: the large atomic per-vertex arrays are reused
/// across solves under the epoch scheme (the visited claim becomes a
/// `compare_exchange(stale, epoch)`). The fold/reduce frontier
/// accumulators still allocate — they are inherent to the private-queue
/// scheme — so this engine is *allocation-light*, not allocation-free.
pub fn ms_bfs_graft_parallel_traced_in(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    threads: usize,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    if threads == 0 {
        return run(g, m, opts, tracer, ws);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(|| run(g, m, opts, tracer, ws))
}

struct Shared<'a> {
    g: &'a BipartiteCsr,
    /// Current workspace epoch: `visited[y] == epoch` ⇔ visited this
    /// solve; `root_x`/`leaf` entries are `(epoch << 32) | value` packed.
    epoch: u32,
    mate_x: &'a [AtomicU32],
    mate_y: &'a [AtomicU32],
    visited: &'a [AtomicU32],
    parent_y: &'a [AtomicU32],
    root_y: &'a [AtomicU32],
    root_x: &'a [AtomicU64],
    leaf: &'a [AtomicU64],
}

/// Accumulator for one BFS level: next frontier, newly visited count,
/// edges traversed.
type LevelAcc = (Vec<VertexId>, u64, u64);

fn merge(mut a: LevelAcc, mut b: LevelAcc) -> LevelAcc {
    // Append the smaller into the larger to keep the reduction linear.
    if a.0.len() < b.0.len() {
        std::mem::swap(&mut a, &mut b);
    }
    a.0.append(&mut b.0);
    (a.0, a.1 + b.1, a.2 + b.2)
}

impl Shared<'_> {
    #[inline]
    fn is_visited(&self, y: VertexId) -> bool {
        self.visited[y as usize].load(Ordering::Relaxed) == self.epoch
    }

    #[inline]
    fn root_of_x(&self, x: VertexId) -> VertexId {
        unpack(self.epoch, self.root_x[x as usize].load(Ordering::Relaxed))
    }

    #[inline]
    fn set_root_x(&self, x: VertexId, root: VertexId) {
        self.root_x[x as usize].store(pack(self.epoch, root), Ordering::Relaxed);
    }

    #[inline]
    fn leaf_of(&self, x: VertexId) -> VertexId {
        unpack(self.epoch, self.leaf[x as usize].load(Ordering::Relaxed))
    }

    /// Algorithm 5: pointer updates after the calling task has claimed `y`.
    #[inline]
    fn visit_claimed(&self, y: VertexId, x: VertexId, acc: &mut LevelAcc) {
        let root = self.root_of_x(x);
        self.parent_y[y as usize].store(x, Ordering::Relaxed);
        self.root_y[y as usize].store(root, Ordering::Relaxed);
        acc.1 += 1;
        let mate = self.mate_y[y as usize].load(Ordering::Relaxed);
        if mate != NONE {
            self.set_root_x(mate, root);
            acc.0.push(mate);
        } else {
            // Benign race: last writer wins, one augmenting path per tree.
            self.leaf[root as usize].store(pack(self.epoch, y), Ordering::Relaxed);
        }
    }

    /// `x` is in an active tree (root known and not yet renewable).
    #[inline]
    fn x_is_active(&self, x: VertexId) -> bool {
        let root = self.root_of_x(x);
        root != NONE && self.leaf_of(root) == NONE
    }

    /// Algorithm 4: one parallel top-down level.
    fn top_down(&self, frontier: &[VertexId]) -> LevelAcc {
        frontier
            .par_iter()
            .fold(
                || (Vec::new(), 0u64, 0u64),
                |mut acc, &x| {
                    if !self.x_is_active(x) {
                        return acc; // tree became renewable
                    }
                    for &y in self.g.x_neighbors(x) {
                        acc.2 += 1;
                        // Screen with a relaxed load before the CAS. The
                        // observed stale value (0 or an old epoch) is the
                        // CAS expectation: a lost race means another task
                        // already wrote the current epoch.
                        let cur = self.visited[y as usize].load(Ordering::Relaxed);
                        if cur == self.epoch {
                            continue;
                        }
                        if self.visited[y as usize]
                            .compare_exchange(cur, self.epoch, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            self.visit_claimed(y, x, &mut acc);
                        }
                    }
                    acc
                },
            )
            .reduce(|| (Vec::new(), 0, 0), merge)
    }

    /// Algorithm 6: one parallel bottom-up step over the candidate `Y`
    /// vertices `r` (unvisited vertices during BFS; renewable vertices
    /// during grafting). Each candidate is owned by one task, so its
    /// visited flag needs no atomics.
    fn bottom_up(&self, r: &[VertexId]) -> LevelAcc {
        r.par_iter()
            .fold(
                || (Vec::new(), 0u64, 0u64),
                |mut acc, &y| {
                    for &x in self.g.y_neighbors(y) {
                        acc.2 += 1;
                        if self.x_is_active(x) {
                            self.visited[y as usize].store(self.epoch, Ordering::Relaxed);
                            self.visit_claimed(y, x, &mut acc);
                            break; // stop exploring y's neighbors
                        }
                    }
                    acc
                },
            )
            .reduce(|| (Vec::new(), 0, 0), merge)
    }

    fn unvisited_y(&self) -> Vec<VertexId> {
        (0..self.g.num_y() as VertexId)
            .into_par_iter()
            .filter(|&y| !self.is_visited(y))
            .collect()
    }
}

fn run(
    g: &BipartiteCsr,
    m: Matching,
    opts: &MsBfsOptions,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    let (nx, ny) = (g.num_x(), g.num_y());
    let epoch = ws.par.begin_solve(nx, ny);
    let (mut mx, mut my) = m.into_mates();
    for (a, &v) in ws.par.mate_x.iter().zip(mx.iter()) {
        a.store(v, Ordering::Relaxed);
    }
    for (a, &v) in ws.par.mate_y.iter().zip(my.iter()) {
        a.store(v, Ordering::Relaxed);
    }
    let sh = Shared {
        g,
        epoch,
        mate_x: &ws.par.mate_x[..nx],
        mate_y: &ws.par.mate_y[..ny],
        visited: &ws.par.visited[..ny],
        parent_y: &ws.par.parent_y[..ny],
        root_y: &ws.par.root_y[..ny],
        root_x: &ws.par.root_x[..nx],
        leaf: &ws.par.leaf[..nx],
    };

    // Initial frontier: unmatched X vertices become roots.
    let mut frontier: Vec<VertexId> = (0..g.num_x() as VertexId)
        .filter(|&x| sh.mate_x[x as usize].load(Ordering::Relaxed) == NONE)
        .collect();
    for &x in &frontier {
        sh.set_root_x(x, x);
    }
    let mut num_unvisited_y = g.num_y();
    // Cached unvisited-Y list for bottom-up levels: exact when present,
    // invalidated by the step-3 resets, filtered in parallel between
    // levels so repeated bottom-up levels do not rescan all of Y.
    let mut unvisited_cache: Option<Vec<VertexId>> = None;

    loop {
        if let Some(deadline) = opts.deadline {
            let now = match opts.now_hook {
                Some(h) => h.now(),
                None => Instant::now(),
            };
            if now >= deadline {
                stats.timed_out = true;
                break;
            }
        }
        if let Some(hook) = opts.phase_hook {
            hook.call(stats.phases);
        }
        stats.phases += 1;
        let phase = stats.phases;
        let mut trace = crate::stats::PhaseTrace {
            phase,
            ..Default::default()
        };
        let edges_at_start = stats.edges_traversed;
        let path_edges_at_start = stats.total_augmenting_path_edges;
        // Phase stopwatch exists only while tracing: the untraced hot
        // path must not pay for a clock read per phase.
        let phase_t0 = tracer.is_enabled().then(Instant::now);

        // ---- Step 1: grow the alternating BFS forest. ----
        let mut level: u32 = 0;
        while !frontier.is_empty() {
            let bottom_up = opts.direction_optimizing
                && (frontier.len() as f64) >= num_unvisited_y as f64 / opts.alpha;
            if opts.record_frontier {
                stats.record_frontier(phase, level, frontier.len(), bottom_up);
            }
            tracer.emit(|| TraceEvent::Level {
                phase: u64::from(phase),
                level: u64::from(level),
                frontier: frontier.len() as u64,
                unvisited_y: num_unvisited_y as u64,
                bottom_up,
            });
            trace.frontier_peak = trace.frontier_peak.max(frontier.len());
            trace.bottom_up_levels += u32::from(bottom_up);
            let (next, newly_visited, edges) = if bottom_up {
                let _t = Stopwatch::start(&mut stats.breakdown, Step::BottomUp);
                let r = match unvisited_cache.take() {
                    Some(list) => list
                        .into_par_iter()
                        .filter(|&y| !sh.is_visited(y))
                        .collect(),
                    None => sh.unvisited_y(),
                };
                let out = sh.bottom_up(&r);
                unvisited_cache = Some(r.into_par_iter().filter(|&y| !sh.is_visited(y)).collect());
                out
            } else {
                let _t = Stopwatch::start(&mut stats.breakdown, Step::TopDown);
                sh.top_down(&frontier)
            };
            num_unvisited_y -= newly_visited as usize;
            stats.edges_traversed += edges;
            frontier = next;
            level += 1;
        }
        trace.levels = level;

        // ---- Step 2: parallel augmentation, one path per renewable tree. ----
        let augmented = {
            let _t = Stopwatch::start(&mut stats.breakdown, Step::Augment);
            let roots: Vec<VertexId> = (0..g.num_x() as VertexId)
                .into_par_iter()
                .filter(|&x0| {
                    sh.mate_x[x0 as usize].load(Ordering::Relaxed) == NONE
                        && sh.root_of_x(x0) == x0
                        && sh.leaf_of(x0) != NONE
                })
                .collect();
            let (count, path_edges) = roots
                .par_iter()
                .map(|&x0| augment_tree(&sh, x0))
                .reduce(|| (0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
            stats.augmenting_paths += count;
            stats.total_augmenting_path_edges += path_edges;
            count
        };
        trace.augmenting_paths = augmented;
        trace.path_edges = stats.total_augmenting_path_edges - path_edges_at_start;
        if augmented == 0 {
            trace.edges_traversed = stats.edges_traversed - edges_at_start;
            emit_phase_end(tracer, &trace, phase_t0);
            if opts.record_phases {
                stats.phase_traces.push(trace);
            }
            break;
        }

        // ---- Step 3: rebuild the frontier (Algorithm 7). ----
        // Statistics gathering (timed separately, Fig. 6's "Statistics").
        let (active_x_count, renewable_y) = {
            let _t = Stopwatch::start(&mut stats.breakdown, Step::Statistics);
            let active_x_count = (0..g.num_x() as VertexId)
                .into_par_iter()
                .filter(|&x| sh.x_is_active(x))
                .count();
            let renewable_y: Vec<VertexId> = (0..g.num_y() as VertexId)
                .into_par_iter()
                .filter(|&y| {
                    // The visited check must come first: `root_y` is only
                    // meaningful (and only guaranteed in-range after a
                    // graph change) for current-epoch vertices.
                    if !sh.is_visited(y) {
                        return false;
                    }
                    let r = sh.root_y[y as usize].load(Ordering::Relaxed);
                    r != NONE && sh.leaf_of(r) != NONE
                })
                .collect();
            (active_x_count, renewable_y)
        };

        let _t = Stopwatch::start(&mut stats.breakdown, Step::Graft);
        // The resets below un-visit vertices: invalidate the cache.
        // (Un-visits store 0 — epoch 0 is never issued — and happen only
        // in this join-delimited region, never concurrently with claims.)
        unvisited_cache = None;
        // Reset renewable Y vertices for reuse.
        renewable_y.par_iter().for_each(|&y| {
            sh.visited[y as usize].store(0, Ordering::Relaxed);
            sh.root_y[y as usize].store(NONE, Ordering::Relaxed);
            sh.parent_y[y as usize].store(NONE, Ordering::Relaxed);
        });
        num_unvisited_y += renewable_y.len();

        trace.active_x = active_x_count;
        trace.renewable_y = renewable_y.len();
        let graft_profitable =
            opts.grafting && active_x_count as f64 > renewable_y.len() as f64 / opts.alpha;
        trace.grafted = graft_profitable;
        frontier = if graft_profitable {
            let (next, newly_visited, edges) = sh.bottom_up(&renewable_y);
            num_unvisited_y -= newly_visited as usize;
            stats.edges_traversed += edges;
            next
        } else {
            // Destroy the forest and restart from the unmatched vertices.
            (0..g.num_y() as VertexId).into_par_iter().for_each(|y| {
                if sh.is_visited(y) {
                    sh.visited[y as usize].store(0, Ordering::Relaxed);
                    sh.root_y[y as usize].store(NONE, Ordering::Relaxed);
                    sh.parent_y[y as usize].store(NONE, Ordering::Relaxed);
                }
            });
            (0..g.num_x()).into_par_iter().for_each(|x| {
                sh.root_x[x].store(0, Ordering::Relaxed);
                sh.leaf[x].store(0, Ordering::Relaxed);
            });
            num_unvisited_y = g.num_y();
            let f: Vec<VertexId> = (0..g.num_x() as VertexId)
                .into_par_iter()
                .filter(|&x| sh.mate_x[x as usize].load(Ordering::Relaxed) == NONE)
                .collect();
            f.par_iter().for_each(|&x| sh.set_root_x(x, x));
            f
        };
        trace.edges_traversed = stats.edges_traversed - edges_at_start;
        emit_phase_end(tracer, &trace, phase_t0);
        tracer.emit(|| TraceEvent::Graft {
            phase: u64::from(phase),
            active_x: trace.active_x as u64,
            renewable_y: trace.renewable_y as u64,
            grafted: trace.grafted,
        });
        if opts.record_phases {
            stats.phase_traces.push(trace);
        }
    }

    // Load the result back into the mate vectors taken from the input
    // matching — no fresh allocation on the warm path.
    for (v, a) in mx.iter_mut().zip(sh.mate_x.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    for (v, a) in my.iter_mut().zip(sh.mate_y.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    let matching = Matching::from_mates(mx, my);
    stats.final_cardinality = matching.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching, stats }
}

fn emit_phase_end(tracer: &Tracer, trace: &crate::stats::PhaseTrace, phase_t0: Option<Instant>) {
    tracer.emit(|| TraceEvent::PhaseEnd {
        phase: u64::from(trace.phase),
        levels: u64::from(trace.levels),
        bottom_up_levels: u64::from(trace.bottom_up_levels),
        frontier_peak: trace.frontier_peak as u64,
        augmentations: trace.augmenting_paths,
        path_edges: trace.path_edges,
        edges_traversed: trace.edges_traversed,
        elapsed_us: phase_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
    });
}

/// Flips the unique augmenting path of the renewable tree rooted at `x0`.
/// Returns `(1, path length in edges)`.
///
/// Paths of distinct trees are vertex-disjoint, so the relaxed stores of
/// concurrent augmentations never touch the same slots; the rayon join
/// publishes them to the grafting step.
fn augment_tree(sh: &Shared<'_>, x0: VertexId) -> (u64, u64) {
    let leaf = sh.leaf_of(x0);
    let mut edges = 0u64;
    let mut y = leaf;
    loop {
        let x = sh.parent_y[y as usize].load(Ordering::Relaxed);
        let next_y = sh.mate_x[x as usize].load(Ordering::Relaxed);
        sh.mate_y[y as usize].store(x, Ordering::Relaxed);
        sh.mate_x[x as usize].store(y, Ordering::Relaxed);
        edges += 1;
        if x == x0 {
            break;
        }
        y = next_y;
        edges += 1;
    }
    (1, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    fn configs() -> [MsBfsOptions; 3] {
        [
            MsBfsOptions::plain(),
            MsBfsOptions::dir_opt_only(),
            MsBfsOptions::graft(),
        ]
    }

    fn chain(k: u32) -> BipartiteCsr {
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        BipartiteCsr::from_edges(k as usize, k as usize, &edges)
    }

    #[test]
    fn parallel_graft_simple() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &MsBfsOptions::graft(), 2);
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn parallel_all_configs_on_chain() {
        let g = chain(120);
        for opts in configs() {
            let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &opts, 4);
            assert_eq!(out.matching.cardinality(), 120, "{opts:?}");
            assert!(is_maximum(&g, &out.matching));
        }
    }

    #[test]
    fn parallel_deficient_graph() {
        let mut edges = Vec::new();
        for x in 0..80u32 {
            edges.push((x, x % 5));
            edges.push((x, 5 + (x % 3)));
        }
        let g = BipartiteCsr::from_edges(80, 8, &edges);
        let oracle = crate::hopcroft_karp(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        for opts in configs() {
            let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &opts, 3);
            assert_eq!(out.matching.cardinality(), oracle, "{opts:?}");
            assert!(is_maximum(&g, &out.matching));
        }
    }

    #[test]
    fn parallel_matches_serial_engine() {
        let g = chain(64);
        let mut m0 = Matching::for_graph(&g);
        for i in 1..64u32 {
            m0.match_pair(i, i - 1);
        }
        let s = crate::ms_bfs::ms_bfs_serial(&g, m0.clone(), &MsBfsOptions::graft());
        let p = ms_bfs_graft_parallel(&g, m0, &MsBfsOptions::graft(), 2);
        assert_eq!(s.matching.cardinality(), p.matching.cardinality());
        assert!(is_maximum(&g, &p.matching));
    }

    #[test]
    fn parallel_with_karp_sipser_init() {
        let g = chain(100);
        let m0 = crate::init::Initializer::KarpSipser.run(&g, 42);
        let out = ms_bfs_graft_parallel(&g, m0, &MsBfsOptions::graft(), 2);
        assert!(is_maximum(&g, &out.matching));
        assert_eq!(out.matching.cardinality(), 100);
    }

    #[test]
    fn parallel_repeated_runs_same_cardinality() {
        // Scheduling nondeterminism must never change the result size.
        let mut edges = Vec::new();
        for x in 0..60u32 {
            edges.push((x, (x * 7) % 40));
            edges.push((x, (x * 13 + 5) % 40));
            edges.push((x, (x * 3 + 11) % 40));
        }
        let g = BipartiteCsr::from_edges(60, 40, &edges);
        let oracle = crate::hopcroft_karp(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        for _ in 0..5 {
            let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &MsBfsOptions::graft(), 4);
            assert_eq!(out.matching.cardinality(), oracle);
            assert!(is_maximum(&g, &out.matching));
        }
    }

    #[test]
    fn parallel_empty_graph() {
        let g = BipartiteCsr::from_edges(0, 5, &[]);
        let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &MsBfsOptions::graft(), 2);
        assert_eq!(out.matching.cardinality(), 0);
    }

    #[test]
    fn parallel_expired_deadline_stops_before_first_phase() {
        let g = chain(30);
        let opts = MsBfsOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &opts, 2);
        assert!(out.stats.timed_out);
        assert_eq!(out.stats.phases, 0);
        assert_eq!(out.matching.cardinality(), 0);
    }

    #[test]
    fn frontier_recording_in_parallel() {
        let g = chain(50);
        let opts = MsBfsOptions {
            record_frontier: true,
            ..MsBfsOptions::graft()
        };
        let out = ms_bfs_graft_parallel(&g, Matching::for_graph(&g), &opts, 2);
        assert!(!out.stats.frontier_history.is_empty());
    }
}
