//! Validated serde support (behind the `serde` feature): checkpointing
//! matchings. Statistics types derive serde directly (plain data); the
//! [`crate::Matching`] implementation routes through
//! [`crate::Matching::try_from_mates`] so hostile input cannot violate the
//! mate-consistency invariant.

use crate::Matching;
use graft_graph::VertexId;
use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize, Deserialize)]
struct MatchingRepr {
    mate_x: Vec<VertexId>,
    mate_y: Vec<VertexId>,
}

impl Serialize for Matching {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        MatchingRepr {
            mate_x: self.mates_x().to_vec(),
            mate_y: self.mates_y().to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Matching {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = MatchingRepr::deserialize(deserializer)?;
        Matching::try_from_mates(repr.mate_x, repr.mate_y).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SearchStats;

    #[test]
    fn matching_json_roundtrip() {
        let mut m = Matching::empty(3, 3);
        m.match_pair(0, 2);
        m.match_pair(2, 0);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matching = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn hostile_matching_rejected() {
        let json = r#"{"mate_x":[1],"mate_y":[4294967295,4294967295]}"#;
        let err = serde_json::from_str::<Matching>(json).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn stats_json_roundtrip() {
        let g = graft_graph::BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = crate::ms_bfs_serial(
            &g,
            Matching::for_graph(&g),
            &crate::MsBfsOptions {
                record_phases: true,
                ..crate::MsBfsOptions::graft()
            },
        );
        let json = serde_json::to_string(&out.stats).unwrap();
        let back: SearchStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.phases, out.stats.phases);
        assert_eq!(back.edges_traversed, out.stats.edges_traversed);
        assert_eq!(back.phase_traces, out.stats.phase_traces);
    }
}
