//! The Pothen-Fan algorithm (serial): multi-source DFS with lookahead and
//! fairness.
//!
//! PF runs in phases. Each phase performs a DFS from every unmatched `X`
//! vertex; the DFS trees are kept vertex-disjoint by per-phase `visited`
//! flags on `Y`, so each phase augments along a maximal set of
//! vertex-disjoint augmenting paths. Two classic refinements:
//!
//! * **Lookahead** — before descending, a vertex `x` first scans for an
//!   adjacent *free* `Y` vertex using a monotone per-vertex cursor, so the
//!   total lookahead work over the whole run is `O(m)`.
//! * **Fairness** — the DFS scans adjacency lists in alternating direction
//!   on even/odd phases, which avoids pathological revisiting orders
//!   (this is the "PF with fairness" variant the paper benchmarks,
//!   following Duff, Kaya & Uçar).
//!
//! The parallel variant lives in [`crate::pothen_fan_parallel`].

use crate::stats::SearchStats;
use crate::trace::{TraceEvent, Tracer};
use crate::workspace::{pack, SolveWorkspace};
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::time::Instant;

/// Maximum matching by serial Pothen-Fan with fairness and lookahead.
pub fn pothen_fan(g: &BipartiteCsr, m: Matching) -> RunOutcome {
    pothen_fan_traced(g, m, &Tracer::disabled())
}

/// [`pothen_fan`] with a [`Tracer`] observing each phase (PF has no BFS
/// levels, so phases are the only inner structure it reports).
pub fn pothen_fan_traced(g: &BipartiteCsr, m: Matching, tracer: &Tracer) -> RunOutcome {
    let mut ws = SolveWorkspace::new();
    pothen_fan_traced_in(g, m, tracer, &mut ws)
}

/// [`pothen_fan_traced`] against a caller-owned [`SolveWorkspace`]: warm
/// solves reuse the visited stamps, lookahead cursors, root list and DFS
/// stack, performing no heap allocations.
pub fn pothen_fan_traced_in(
    g: &BipartiteCsr,
    mut m: Matching,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    // Phase-stamped visited flags, extended with the workspace epoch:
    // visited[y] == (epoch, phase) means visited in the current phase.
    // Avoids an O(ny) clear per phase *and* per solve.
    let epoch = ws.pf.begin_solve(g.num_x(), g.num_y());
    let wsr = &mut ws.pf;
    let mut roots = std::mem::take(&mut wsr.roots);
    let mut stack = std::mem::take(&mut wsr.stack);
    let mut phase: u32 = 0;

    loop {
        phase += 1;
        let mut augmented_this_phase = 0u64;
        roots.clear();
        roots.extend(m.unmatched_x());
        if roots.is_empty() {
            break;
        }
        let phase_t0 = tracer.is_enabled().then(Instant::now);
        let edges_at_start = stats.edges_traversed;
        let path_edges_at_start = stats.total_augmenting_path_edges;
        let fair_reverse = phase.is_multiple_of(2);
        for &x0 in &roots {
            if dfs_lookahead(
                g,
                &mut m,
                &mut wsr.visited,
                &mut wsr.lookahead,
                epoch,
                phase,
                fair_reverse,
                x0,
                &mut stack,
                &mut stats,
            ) {
                augmented_this_phase += 1;
            }
        }
        stats.phases += 1;
        stats.augmenting_paths += augmented_this_phase;
        tracer.emit(|| TraceEvent::PhaseEnd {
            phase: u64::from(stats.phases),
            levels: 0,
            bottom_up_levels: 0,
            frontier_peak: 0,
            augmentations: augmented_this_phase,
            path_edges: stats.total_augmenting_path_edges - path_edges_at_start,
            edges_traversed: stats.edges_traversed - edges_at_start,
            elapsed_us: phase_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
        });
        if augmented_this_phase == 0 {
            break;
        }
    }
    wsr.roots = roots;
    wsr.stack = stack;

    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

/// One DFS-with-lookahead search from `x0`; augments in place on success.
#[allow(clippy::too_many_arguments)]
fn dfs_lookahead(
    g: &BipartiteCsr,
    m: &mut Matching,
    visited: &mut [u64],
    lookahead: &mut [u64],
    epoch: u32,
    phase: u32,
    fair_reverse: bool,
    x0: VertexId,
    stack: &mut Vec<(VertexId, usize, VertexId)>,
    stats: &mut SearchStats,
) -> bool {
    let stamp = pack(epoch, phase);
    // Frame: (x, scan cursor, y used to enter this frame).
    stack.clear();
    stack.push((x0, 0, NONE));
    while !stack.is_empty() {
        let (x, _, _) = *stack.last().unwrap();
        let nbrs = g.x_neighbors(x);

        // Lookahead: monotone scan of x's adjacency for a free Y vertex.
        // The cursor is epoch-packed; a stale one from an earlier solve
        // reads as 0, restarting the O(m)-total scan for this solve.
        let mut cursor = if (lookahead[x as usize] >> 32) as u32 == epoch {
            lookahead[x as usize] as u32
        } else {
            0
        };
        let mut free_y = NONE;
        while (cursor as usize) < nbrs.len() {
            let y = nbrs[cursor as usize];
            cursor += 1;
            stats.edges_traversed += 1;
            if !m.is_y_matched(y) {
                free_y = y;
                break;
            }
        }
        lookahead[x as usize] = pack(epoch, cursor);
        if free_y != NONE {
            // Mark it visited so sibling searches in this phase skip it,
            // and flip the path spelled out by the stack.
            visited[free_y as usize] = stamp;
            let mut cur_y = free_y;
            let mut edges = 1u64;
            while let Some((fx, _, via)) = stack.pop() {
                m.rematch(fx, cur_y);
                cur_y = via;
                if cur_y != NONE {
                    edges += 2;
                }
            }
            stats.total_augmenting_path_edges += edges;
            return true;
        }

        // Regular DFS step with fairness direction.
        let top = stack.last_mut().unwrap();
        let mut advanced = false;
        while top.1 < nbrs.len() {
            let i = top.1;
            top.1 += 1;
            let y = if fair_reverse {
                nbrs[nbrs.len() - 1 - i]
            } else {
                nbrs[i]
            };
            stats.edges_traversed += 1;
            if visited[y as usize] == stamp {
                continue;
            }
            visited[y as usize] = stamp;
            let mate = m.mate_of_y(y);
            debug_assert_ne!(mate, NONE, "free vertices are caught by lookahead");
            stack.push((mate, 0, y));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    #[test]
    fn pf_simple_path() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = pothen_fan(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pf_lookahead_finds_free_immediately() {
        // Complete bipartite: lookahead matches everything in one phase
        // with length-1 paths.
        let mut edges = Vec::new();
        for x in 0..5u32 {
            for y in 0..5u32 {
                edges.push((x, y));
            }
        }
        let g = BipartiteCsr::from_edges(5, 5, &edges);
        let out = pothen_fan(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 5);
        assert_eq!(out.stats.total_augmenting_path_edges, 5);
    }

    #[test]
    fn pf_long_chain_from_adversarial_start() {
        let k = 60;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let mut m0 = Matching::for_graph(&g);
        for i in 1..k as VertexId {
            m0.match_pair(i, i - 1);
        }
        let out = pothen_fan(&g, m0);
        assert_eq!(out.matching.cardinality(), k);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pf_terminates_on_deficient_graph() {
        // 4 X vertices all competing for 2 Y vertices.
        let g = BipartiteCsr::from_edges(4, 2, &[(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)]);
        let out = pothen_fan(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pf_agrees_with_hk() {
        let g = BipartiteCsr::from_edges(
            6,
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 3),
                (2, 2),
                (3, 4),
                (4, 4),
                (4, 5),
                (5, 5),
                (2, 0),
            ],
        );
        let pf = pothen_fan(&g, Matching::for_graph(&g));
        let hk = crate::hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(pf.matching.cardinality(), hk.matching.cardinality());
    }

    #[test]
    fn pf_stats_phases_positive() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let out = pothen_fan(&g, Matching::for_graph(&g));
        assert!(out.stats.phases >= 1);
        assert_eq!(out.stats.augmenting_paths, 2);
    }
}
