//! # graft-core — maximum cardinality bipartite matching algorithms
//!
//! A Rust reproduction of *"A Parallel Tree Grafting Algorithm for Maximum
//! Cardinality Matching in Bipartite Graphs"* (Azad, Buluç, Pothen,
//! IPDPS 2015), together with every baseline the paper evaluates against:
//!
//! | algorithm | function | kind |
//! |---|---|---|
//! | SS-DFS | [`ss_dfs`] | serial, single-source |
//! | SS-BFS | [`ss_bfs`] | serial, single-source |
//! | Pothen-Fan (fairness + lookahead) | [`pothen_fan`] / [`pothen_fan_parallel`] | serial / parallel multi-source DFS |
//! | Hopcroft-Karp | [`hopcroft_karp`] | serial, `O(m√n)` oracle |
//! | Push-relabel | [`push_relabel`] / [`push_relabel_parallel`] | serial / parallel |
//! | MS-BFS (+ direction opt., + grafting) | [`ms_bfs_serial`] | serial engine with toggles |
//! | **MS-BFS-Graft** | [`ms_bfs_graft_parallel`] | the paper's parallel contribution |
//!
//! All solvers take a [`Matching`] as the starting point — typically the
//! Karp-Sipser maximal matching ([`init::Initializer`]) as in the paper —
//! and return a [`RunOutcome`] bundling the final matching with the
//! instrumentation ([`stats::SearchStats`]) that the experiment harness
//! uses to regenerate the paper's figures.
//!
//! ```
//! use graft_core::{solve, Algorithm, SolveOptions};
//! use graft_graph::BipartiteCsr;
//!
//! let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
//! let out = solve(&g, Algorithm::MsBfsGraftParallel, &SolveOptions::default());
//! assert_eq!(out.matching.cardinality(), 2);
//! assert!(graft_core::verify::is_maximum(&g, &out.matching));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod augment;
pub mod diff;
pub mod frontier;
pub mod init;
mod matching;
pub mod ms_bfs;
mod par;
mod pothen_fan;
mod pothen_fan_par;
mod push_relabel;
mod ss;
pub mod stats;
pub mod trace;
pub mod verify;
mod workspace;

mod hopcroft_karp;

#[cfg(test)]
pub(crate) mod tests_support {
    use graft_graph::{BipartiteCsr, GraphBuilder, VertexId};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Seeded random bipartite graph for unit tests.
    pub fn random_graph(nx: usize, ny: usize, m: usize, seed: u64) -> BipartiteCsr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(nx, ny, m);
        for _ in 0..m {
            b.add_edge(
                rng.gen_range(0..nx) as VertexId,
                rng.gen_range(0..ny) as VertexId,
            );
        }
        b.build()
    }
}

pub use augment::{
    augment_from_free_x, augment_from_x, augment_from_y, AugmentOutcome, XYAdjacency,
};
pub use hopcroft_karp::hopcroft_karp;
pub use matching::Matching;
pub use ms_bfs::{
    ms_bfs_serial, ms_bfs_serial_traced, ms_bfs_serial_traced_in, MsBfsOptions, NowHook, PhaseHook,
};
pub use par::{
    ms_bfs_graft_parallel, ms_bfs_graft_parallel_traced, ms_bfs_graft_parallel_traced_in,
};
pub use pothen_fan::{pothen_fan, pothen_fan_traced, pothen_fan_traced_in};
pub use pothen_fan_par::pothen_fan_parallel;
// Search internals for the graft-check model suite; invisible otherwise.
#[cfg(graft_check)]
#[doc(hidden)]
pub use pothen_fan_par::check_api as pf_check_api;
pub use push_relabel::{
    push_relabel, push_relabel_parallel, push_relabel_traced, push_relabel_traced_in, PrOrder,
    PushRelabelOptions,
};
pub use ss::{ss_bfs, ss_dfs};
pub use trace::Tracer;
pub use workspace::SolveWorkspace;

use graft_graph::BipartiteCsr;
use stats::SearchStats;
use trace::TraceEvent;

/// The result of one solver run: the matching plus instrumentation.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The (maximum) matching computed by the solver.
    pub matching: Matching,
    /// Counters and timings collected during the run.
    pub stats: SearchStats,
}

/// Every algorithm exposed by the crate, for table-driven experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Single-source DFS.
    SsDfs,
    /// Single-source BFS.
    SsBfs,
    /// Serial Pothen-Fan with fairness and lookahead.
    PothenFan,
    /// Multithreaded Pothen-Fan.
    PothenFanParallel,
    /// Hopcroft-Karp.
    HopcroftKarp,
    /// Serial MS-BFS, always top-down, no grafting.
    MsBfs,
    /// Serial MS-BFS with direction-optimizing BFS.
    MsBfsDirOpt,
    /// Serial MS-BFS-Graft (direction optimization + tree grafting).
    MsBfsGraft,
    /// Parallel MS-BFS-Graft — the paper's contribution.
    MsBfsGraftParallel,
    /// Serial push-relabel.
    PushRelabel,
    /// Multithreaded push-relabel.
    PushRelabelParallel,
}

impl Algorithm {
    /// All variants, in the order the experiment tables print them.
    pub const ALL: [Algorithm; 11] = [
        Algorithm::SsDfs,
        Algorithm::SsBfs,
        Algorithm::PothenFan,
        Algorithm::PothenFanParallel,
        Algorithm::HopcroftKarp,
        Algorithm::MsBfs,
        Algorithm::MsBfsDirOpt,
        Algorithm::MsBfsGraft,
        Algorithm::MsBfsGraftParallel,
        Algorithm::PushRelabel,
        Algorithm::PushRelabelParallel,
    ];

    /// The serial algorithms compared in Fig. 1.
    pub const SERIAL: [Algorithm; 6] = [
        Algorithm::SsDfs,
        Algorithm::SsBfs,
        Algorithm::PothenFan,
        Algorithm::HopcroftKarp,
        Algorithm::MsBfs,
        Algorithm::MsBfsGraft,
    ];

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::SsDfs => "SS-DFS",
            Algorithm::SsBfs => "SS-BFS",
            Algorithm::PothenFan => "PF",
            Algorithm::PothenFanParallel => "PF(par)",
            Algorithm::HopcroftKarp => "HK",
            Algorithm::MsBfs => "MS-BFS",
            Algorithm::MsBfsDirOpt => "MS-BFS-DO",
            Algorithm::MsBfsGraft => "MS-BFS-Graft",
            Algorithm::MsBfsGraftParallel => "MS-BFS-Graft(par)",
            Algorithm::PushRelabel => "PR",
            Algorithm::PushRelabelParallel => "PR(par)",
        }
    }

    /// Whether the algorithm uses threads.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            Algorithm::PothenFanParallel
                | Algorithm::MsBfsGraftParallel
                | Algorithm::PushRelabelParallel
        )
    }

    /// Stable lowercase identifier used by the CLI and the service
    /// protocol (`graftmatch --algorithm`, `SOLVE <graph> <algorithm>`).
    pub fn cli_name(self) -> &'static str {
        match self {
            Algorithm::SsDfs => "ss-dfs",
            Algorithm::SsBfs => "ss-bfs",
            Algorithm::PothenFan => "pf",
            Algorithm::PothenFanParallel => "pf-par",
            Algorithm::HopcroftKarp => "hk",
            Algorithm::MsBfs => "ms-bfs",
            Algorithm::MsBfsDirOpt => "ms-bfs-do",
            Algorithm::MsBfsGraft => "ms-bfs-graft",
            Algorithm::MsBfsGraftParallel => "ms-bfs-graft-par",
            Algorithm::PushRelabel => "pr",
            Algorithm::PushRelabelParallel => "pr-par",
        }
    }

    /// Parses a [`cli_name`](Self::cli_name) identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let s = s.to_ascii_lowercase();
        Algorithm::ALL.into_iter().find(|a| a.cli_name() == s)
    }

    /// Whether the algorithm honors [`MsBfsOptions::deadline`]
    /// cooperatively at phase boundaries. Other algorithms only get a
    /// deadline check before the solve starts (service layer).
    pub fn supports_deadline(self) -> bool {
        matches!(
            self,
            Algorithm::MsBfs
                | Algorithm::MsBfsDirOpt
                | Algorithm::MsBfsGraft
                | Algorithm::MsBfsGraftParallel
        )
    }
}

/// Options for the [`solve`] dispatcher.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Initial maximal matching (paper default: Karp-Sipser).
    pub initializer: init::Initializer,
    /// Seed for the initializer's random choices.
    pub seed: u64,
    /// Thread count for parallel algorithms (0 = ambient rayon pool).
    pub threads: usize,
    /// MS-BFS engine configuration.
    pub ms_bfs: MsBfsOptions,
    /// Push-relabel configuration.
    pub push_relabel: PushRelabelOptions,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            initializer: init::Initializer::KarpSipser,
            seed: 1,
            threads: 0,
            ms_bfs: MsBfsOptions::default(),
            push_relabel: PushRelabelOptions::default(),
        }
    }
}

/// Runs `algorithm` on `g` after computing the configured initial matching.
pub fn solve(g: &BipartiteCsr, algorithm: Algorithm, opts: &SolveOptions) -> RunOutcome {
    let m0 = opts.initializer.run(g, opts.seed);
    solve_from(g, m0, algorithm, opts)
}

/// [`solve`] with a [`Tracer`] observing the run (see [`solve_from_traced`]).
pub fn solve_traced(
    g: &BipartiteCsr,
    algorithm: Algorithm,
    opts: &SolveOptions,
    tracer: &Tracer,
) -> RunOutcome {
    let m0 = opts.initializer.run(g, opts.seed);
    solve_from_traced(g, m0, algorithm, opts, tracer)
}

/// [`solve`] against a caller-owned [`SolveWorkspace`]: repeated solves
/// reuse the workspace's buffers instead of allocating per call (see
/// [`solve_from_traced_in`] for which algorithms benefit).
pub fn solve_in(
    g: &BipartiteCsr,
    algorithm: Algorithm,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let m0 = opts.initializer.run(g, opts.seed);
    solve_from_in(g, m0, algorithm, opts, ws)
}

/// [`solve_from`] against a caller-owned [`SolveWorkspace`].
pub fn solve_from_in(
    g: &BipartiteCsr,
    m0: Matching,
    algorithm: Algorithm,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    solve_from_traced_in(g, m0, algorithm, opts, &Tracer::disabled(), ws)
}

/// [`solve_traced`] against a caller-owned [`SolveWorkspace`].
pub fn solve_traced_in(
    g: &BipartiteCsr,
    algorithm: Algorithm,
    opts: &SolveOptions,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let m0 = opts.initializer.run(g, opts.seed);
    solve_from_traced_in(g, m0, algorithm, opts, tracer, ws)
}

/// One-call maximum cardinality matching with the paper's default stack
/// (Karp-Sipser initialization + parallel MS-BFS-Graft).
///
/// ```
/// use graft_graph::BipartiteCsr;
///
/// let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
/// let m = graft_core::maximum_matching(&g);
/// assert_eq!(m.cardinality(), 2);
/// ```
pub fn maximum_matching(g: &BipartiteCsr) -> Matching {
    solve(g, Algorithm::MsBfsGraftParallel, &SolveOptions::default()).matching
}

/// The matching number of `g` (size of a maximum matching).
pub fn matching_number(g: &BipartiteCsr) -> usize {
    maximum_matching(g).cardinality()
}

/// Runs `algorithm` on `g` starting from the given matching.
pub fn solve_from(
    g: &BipartiteCsr,
    m0: Matching,
    algorithm: Algorithm,
    opts: &SolveOptions,
) -> RunOutcome {
    solve_from_traced(g, m0, algorithm, opts, &Tracer::disabled())
}

/// The effective MS-BFS engine configuration for `algorithm` (None for
/// non-MS algorithms). This is the single source of truth for the
/// Fig. 7 ablation axis: which toggles each CLI algorithm actually runs
/// with, and what the trace layer reports in its `run_start` events.
fn effective_ms_opts(algorithm: Algorithm, opts: &SolveOptions) -> Option<MsBfsOptions> {
    match algorithm {
        Algorithm::MsBfs => Some(MsBfsOptions {
            record_frontier: opts.ms_bfs.record_frontier,
            deadline: opts.ms_bfs.deadline,
            phase_hook: opts.ms_bfs.phase_hook,
            ..MsBfsOptions::plain()
        }),
        Algorithm::MsBfsDirOpt => Some(MsBfsOptions {
            record_frontier: opts.ms_bfs.record_frontier,
            alpha: opts.ms_bfs.alpha,
            deadline: opts.ms_bfs.deadline,
            phase_hook: opts.ms_bfs.phase_hook,
            ..MsBfsOptions::dir_opt_only()
        }),
        Algorithm::MsBfsGraft | Algorithm::MsBfsGraftParallel => Some(opts.ms_bfs),
        _ => None,
    }
}

/// [`solve_from`] with a [`Tracer`] observing the run: a `run_start` /
/// `run_end` pair around the solve, plus whatever inner events the
/// algorithm's engine emits (levels and phases for the MS-BFS engines,
/// phases for Pothen-Fan and serial push-relabel). With a disabled tracer
/// this *is* `solve_from` — no event is built, no clock is read.
pub fn solve_from_traced(
    g: &BipartiteCsr,
    m0: Matching,
    algorithm: Algorithm,
    opts: &SolveOptions,
    tracer: &Tracer,
) -> RunOutcome {
    let mut ws = SolveWorkspace::new();
    solve_from_traced_in(g, m0, algorithm, opts, tracer, &mut ws)
}

/// [`solve_from_traced`] against a caller-owned [`SolveWorkspace`].
///
/// Identical output to the fresh-allocation entry points — same matching,
/// same [`stats::SearchStats`] counters — but the per-vertex arrays and
/// frontier vectors live in `ws` and are recycled across calls via an
/// epoch/versioned-visited scheme, so a warm solve performs no `O(n)`
/// clears and (for the serial engines) no heap allocations at all. The
/// serial MS-BFS family, Pothen-Fan, serial push-relabel, and the parallel
/// MS-BFS-Graft engine draw on `ws`; the remaining algorithms ignore it
/// (they are baselines/oracles, not service hot paths).
pub fn solve_from_traced_in(
    g: &BipartiteCsr,
    m0: Matching,
    algorithm: Algorithm,
    opts: &SolveOptions,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let ms_opts = effective_ms_opts(algorithm, opts);
    tracer.emit(|| TraceEvent::RunStart {
        algorithm: algorithm.cli_name().to_string(),
        nx: g.num_x() as u64,
        ny: g.num_y() as u64,
        edges: g.num_edges() as u64,
        initial_cardinality: m0.cardinality() as u64,
        alpha: ms_opts.map_or(0.0, |o| o.alpha),
        direction_optimizing: ms_opts.is_some_and(|o| o.direction_optimizing),
        grafting: ms_opts.is_some_and(|o| o.grafting),
    });
    let out = match algorithm {
        Algorithm::SsDfs => ss_dfs(g, m0),
        Algorithm::SsBfs => ss_bfs(g, m0),
        Algorithm::PothenFan => pothen_fan_traced_in(g, m0, tracer, ws),
        Algorithm::PothenFanParallel => pothen_fan_parallel(g, m0, opts.threads),
        Algorithm::HopcroftKarp => hopcroft_karp(g, m0),
        Algorithm::MsBfs | Algorithm::MsBfsDirOpt | Algorithm::MsBfsGraft => {
            ms_bfs_serial_traced_in(g, m0, &ms_opts.expect("MS algorithm"), tracer, ws)
        }
        Algorithm::MsBfsGraftParallel => ms_bfs_graft_parallel_traced_in(
            g,
            m0,
            &ms_opts.expect("MS algorithm"),
            opts.threads,
            tracer,
            ws,
        ),
        Algorithm::PushRelabel => push_relabel_traced_in(g, m0, &opts.push_relabel, tracer, ws),
        Algorithm::PushRelabelParallel => push_relabel_parallel(
            g,
            m0,
            &PushRelabelOptions {
                threads: opts.threads,
                ..opts.push_relabel
            },
        ),
    };
    tracer.emit(|| TraceEvent::RunEnd {
        final_cardinality: out.stats.final_cardinality as u64,
        phases: u64::from(out.stats.phases),
        augmenting_paths: out.stats.augmenting_paths,
        edges_traversed: out.stats.edges_traversed,
        elapsed_us: out.stats.elapsed.as_micros() as u64,
        timed_out: out.stats.timed_out,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_every_algorithm_agrees() {
        let g = BipartiteCsr::from_edges(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 2),
                (3, 3),
                (3, 4),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 5),
                (0, 3),
            ],
        );
        let opts = SolveOptions {
            threads: 2,
            ..Default::default()
        };
        let oracle = solve(&g, Algorithm::HopcroftKarp, &opts)
            .matching
            .cardinality();
        for alg in Algorithm::ALL {
            let out = solve(&g, alg, &opts);
            assert_eq!(out.matching.cardinality(), oracle, "{}", alg.name());
            assert!(verify::is_maximum(&g, &out.matching), "{}", alg.name());
        }
    }

    #[test]
    fn algorithm_names_unique() {
        let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn parallel_flags() {
        assert!(Algorithm::MsBfsGraftParallel.is_parallel());
        assert!(!Algorithm::MsBfsGraft.is_parallel());
    }

    #[test]
    fn solve_with_no_initializer() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let opts = SolveOptions {
            initializer: init::Initializer::None,
            ..SolveOptions::default()
        };
        let out = solve(&g, Algorithm::MsBfsGraft, &opts);
        assert_eq!(out.matching.cardinality(), 2);
        assert_eq!(out.stats.initial_cardinality, 0);
    }
}
