//! Push-relabel bipartite matching (serial and multithreaded), the PR
//! competitor of the paper (after Langguth, Manne, Sanders and Kaya,
//! Langguth, Manne, Uçar).
//!
//! Bipartite cardinality matching is unit-capacity max-flow, so the
//! generic push-relabel machinery specializes drastically: only the `Y`
//! vertices need distance labels, and processing an active (unmatched) `X`
//! vertex is a **double push** —
//!
//! 1. scan `x`'s neighbors for the minimum-label `y₁` (and the second
//!    minimum `d₂`),
//! 2. match `x` to `y₁`, stealing it from its previous mate (which becomes
//!    active again), and
//! 3. relabel `y₁` to `d₂ + 2` (its new residual distance-to-sink bound).
//!
//! A label reaching `limit = 2·min(nx,ny) + 3` certifies that no residual
//! (alternating) path to a free `Y` vertex exists, so the vertex can be
//! discarded. **Global relabeling** periodically recomputes exact labels
//! with a backward BFS from the free `Y` vertices; its frequency is the
//! tuning knob the paper sets to 2 (serial) and 16 (40 threads), and the
//! per-thread work batch bound is the paper's queue limit of 500.

use crate::stats::SearchStats;
use crate::trace::{TraceEvent, Tracer};
use crate::workspace::{PrBuffers, SolveWorkspace};
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use rayon::prelude::*;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// Active-vertex selection order for the serial solver.
///
/// Push-relabel correctness does not depend on the order actives are
/// processed, but performance does; the PR literature the paper builds on
/// (Kaya, Langguth, Manne, Uçar) compares exactly these disciplines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrOrder {
    /// First-in-first-out (the paper's configuration).
    #[default]
    Fifo,
    /// Process the active vertex with the highest (stalest-known) label
    /// first — drains provably-unmatchable vertices early.
    HighestLabel,
    /// Process the lowest-label active vertex first — augments along
    /// near-free vertices before labels grow.
    LowestLabel,
}

/// Tuning parameters for the push-relabel solvers.
#[derive(Clone, Copy, Debug)]
pub struct PushRelabelOptions {
    /// Global relabel after `n / frequency` pushes (paper: 2 on one
    /// thread, 16 on 40 threads).
    pub global_relabel_frequency: f64,
    /// Work-batch bound per thread between queue synchronizations in the
    /// parallel solver (paper: 500).
    pub queue_limit: usize,
    /// Thread count for the parallel solver (0 = ambient rayon pool).
    pub threads: usize,
    /// Active-vertex selection discipline (serial solver only; the
    /// parallel solver is round-based).
    pub order: PrOrder,
}

impl Default for PushRelabelOptions {
    fn default() -> Self {
        Self {
            global_relabel_frequency: 2.0,
            queue_limit: 500,
            threads: 0,
            order: PrOrder::Fifo,
        }
    }
}

/// The serial solver's active set under a selection discipline. Keys are
/// the labels known at insertion time; selection correctness does not
/// require fresh keys, so no revalidation is needed. The collections are
/// borrowed from the workspace (both arrive cleared).
enum ActiveSet<'a> {
    Fifo(&'a mut VecDeque<VertexId>),
    // Max-heap on (key, x); for lowest-label the key is negated at push.
    Heap(&'a mut BinaryHeap<(i64, VertexId)>, bool),
}

impl<'a> ActiveSet<'a> {
    fn new(
        order: PrOrder,
        fifo: &'a mut VecDeque<VertexId>,
        heap: &'a mut BinaryHeap<(i64, VertexId)>,
    ) -> Self {
        match order {
            PrOrder::Fifo => ActiveSet::Fifo(fifo),
            PrOrder::HighestLabel => ActiveSet::Heap(heap, false),
            PrOrder::LowestLabel => ActiveSet::Heap(heap, true),
        }
    }

    fn push(&mut self, x: VertexId, key: u32) {
        match self {
            ActiveSet::Fifo(q) => q.push_back(x),
            ActiveSet::Heap(h, negate) => {
                let k = if *negate { -(key as i64) } else { key as i64 };
                h.push((k, x));
            }
        }
    }

    fn pop(&mut self) -> Option<VertexId> {
        match self {
            ActiveSet::Fifo(q) => q.pop_front(),
            ActiveSet::Heap(h, _) => h.pop().map(|(_, x)| x),
        }
    }
}

#[inline]
fn label_limit(g: &BipartiteCsr) -> u32 {
    (2 * g.num_x().min(g.num_y()) + 3) as u32
}

/// Exact labels: `d[y]` = residual distance from `y` to the sink
/// (1 for free `Y` vertices, +2 per alternating `Y`-step), `limit` where
/// unreachable. Returns the number of edges scanned.
fn global_relabel(
    g: &BipartiteCsr,
    mate_x: &[VertexId],
    d_y: &mut [u32],
    limit: u32,
    matched_y: &mut [bool],
    queue: &mut VecDeque<VertexId>,
) -> u64 {
    let mut scanned = 0u64;
    for d in d_y.iter_mut() {
        *d = limit;
    }
    queue.clear();
    // A Y vertex is free iff no x points at it: detect via a marker sweep
    // instead of trusting a mate_y array (the parallel solver only
    // maintains mate_y authoritatively — callers pass a consistent mate_x
    // derived from it).
    for f in matched_y.iter_mut() {
        *f = false;
    }
    for &y in mate_x.iter().filter(|&&y| y != NONE) {
        matched_y[y as usize] = true;
    }
    for y in 0..g.num_y() as VertexId {
        if !matched_y[y as usize] {
            d_y[y as usize] = 1;
            queue.push_back(y);
        }
    }
    while let Some(y) = queue.pop_front() {
        let dy = d_y[y as usize];
        for &x in g.y_neighbors(y) {
            scanned += 1;
            // Residual arc x→y exists iff (x,y) is unmatched.
            if mate_x[x as usize] == y {
                continue;
            }
            let ym = mate_x[x as usize];
            if ym != NONE && d_y[ym as usize] == limit {
                d_y[ym as usize] = dy + 2;
                queue.push_back(ym);
            }
        }
    }
    scanned
}

/// Maximum matching by serial FIFO push-relabel with double pushes,
/// second-minimum relabeling and periodic global relabeling.
pub fn push_relabel(g: &BipartiteCsr, m: Matching, opts: &PushRelabelOptions) -> RunOutcome {
    push_relabel_traced(g, m, opts, &Tracer::disabled())
}

/// [`push_relabel`] with a [`Tracer`] observing each phase. A PR "phase"
/// is the span opened by one global relabel: its event reports the pushes
/// that landed on a free `Y` vertex (the cardinality gains) and the edges
/// scanned — relabel sweep included — before the next relabel.
pub fn push_relabel_traced(
    g: &BipartiteCsr,
    m: Matching,
    opts: &PushRelabelOptions,
    tracer: &Tracer,
) -> RunOutcome {
    let mut ws = SolveWorkspace::new();
    push_relabel_traced_in(g, m, opts, tracer, &mut ws)
}

/// [`push_relabel_traced`] against a caller-owned [`SolveWorkspace`]: warm
/// solves reuse the label array, the relabel scratch and the active set,
/// performing no heap allocations. PR needs no epoch versioning — the
/// solve-opening global relabel fully reinitializes every buffer.
pub fn push_relabel_traced_in(
    g: &BipartiteCsr,
    mut m: Matching,
    opts: &PushRelabelOptions,
    tracer: &Tracer,
    ws: &mut SolveWorkspace,
) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };
    let limit = label_limit(g);
    let n = g.num_vertices().max(1);
    let relabel_threshold = ((n as f64 / opts.global_relabel_frequency.max(0.01)) as u64).max(1);

    let ny = g.num_y();
    ws.pr.begin_solve(ny);
    let PrBuffers {
        d_y,
        matched_y,
        bfs,
        fifo,
        heap,
    } = &mut ws.pr;
    let d_y = &mut d_y[..ny];
    let matched_y = &mut matched_y[..ny];
    let mut phase_t0 = tracer.is_enabled().then(Instant::now);
    let mut phase_edges_start = stats.edges_traversed;
    let mut phase_augs_start = stats.augmenting_paths;
    stats.edges_traversed += global_relabel(g, m.mates_x(), d_y, limit, matched_y, bfs);
    stats.phases += 1;

    let mut queue = ActiveSet::new(opts.order, fifo, heap);
    for x in m.unmatched_x().filter(|&x| g.x_degree(x) > 0) {
        queue.push(x, 0);
    }
    let mut pushes_since_relabel = 0u64;

    while let Some(x) = queue.pop() {
        if m.is_x_matched(x) {
            continue;
        }
        // Scan for minimum and second-minimum labels.
        let (mut y1, mut d1, mut d2) = (NONE, limit, limit);
        for &y in g.x_neighbors(x) {
            stats.edges_traversed += 1;
            let d = d_y[y as usize];
            if d < d1 {
                d2 = d1;
                d1 = d;
                y1 = y;
            } else if d < d2 {
                d2 = d;
            }
        }
        if y1 == NONE || d1 >= limit {
            continue; // certified unmatchable: drop x
        }
        let was_free = !m.is_y_matched(y1);
        let old = m.rematch(x, y1);
        d_y[y1 as usize] = d2.saturating_add(2).min(limit);
        if was_free {
            stats.augmenting_paths += 1;
        }
        if old != NONE {
            // Key the robbed vertex by the label of the slot it lost —
            // its own implicit label before rescanning.
            queue.push(old, d_y[y1 as usize]);
        }
        pushes_since_relabel += 1;
        if pushes_since_relabel >= relabel_threshold {
            tracer.emit(|| pr_phase_event(&stats, phase_edges_start, phase_augs_start, phase_t0));
            phase_t0 = tracer.is_enabled().then(Instant::now);
            phase_edges_start = stats.edges_traversed;
            phase_augs_start = stats.augmenting_paths;
            stats.edges_traversed += global_relabel(g, m.mates_x(), d_y, limit, matched_y, bfs);
            stats.phases += 1;
            pushes_since_relabel = 0;
        }
    }
    tracer.emit(|| pr_phase_event(&stats, phase_edges_start, phase_augs_start, phase_t0));

    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

/// The per-phase event of the serial PR solver: everything since the
/// phase-opening global relabel, attributed to phase `stats.phases`.
fn pr_phase_event(
    stats: &SearchStats,
    phase_edges_start: u64,
    phase_augs_start: u64,
    phase_t0: Option<Instant>,
) -> TraceEvent {
    TraceEvent::PhaseEnd {
        phase: u64::from(stats.phases),
        levels: 0,
        bottom_up_levels: 0,
        frontier_peak: 0,
        augmentations: stats.augmenting_paths - phase_augs_start,
        path_edges: 0,
        edges_traversed: stats.edges_traversed - phase_edges_start,
        elapsed_us: phase_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
    }
}

/// Maximum matching by multithreaded push-relabel.
///
/// Round-based: each round processes the current active set in parallel
/// (work split in batches of at most `queue_limit`), with mate stealing
/// through `compare_exchange` on the authoritative `Y`-side mate array and
/// monotone label updates via `fetch_max`. Robbed `X` vertices self-repair
/// lazily when they are next processed. Between outer iterations an exact
/// global relabel re-certifies reachability; if an outer iteration makes no
/// progress (a theoretical possibility under label staleness), the solver
/// falls back to one exact serial push-relabel pass, preserving the
/// worst-case guarantees.
pub fn push_relabel_parallel(
    g: &BipartiteCsr,
    m: Matching,
    opts: &PushRelabelOptions,
) -> RunOutcome {
    if opts.threads == 0 {
        return pr_par_run(g, m, opts);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(|| pr_par_run(g, m, opts))
}

fn pr_par_run(g: &BipartiteCsr, m: Matching, opts: &PushRelabelOptions) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };
    let limit = label_limit(g);

    let (mx, my) = m.into_mates();
    let mate_x: Vec<AtomicU32> = mx.into_iter().map(AtomicU32::new).collect();
    // Authoritative side: matches are established by CAS here.
    let mate_y: Vec<AtomicU32> = my.into_iter().map(AtomicU32::new).collect();
    let d_y: Vec<AtomicU32> = (0..g.num_y()).map(|_| AtomicU32::new(limit)).collect();
    let scanned = AtomicU64::new(0);

    let snapshot_mate_x = |mate_x: &[AtomicU32]| -> Vec<VertexId> {
        mate_x.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    };

    let mut gr_matched = vec![false; g.num_y()];
    let mut gr_queue: VecDeque<VertexId> = VecDeque::new();
    loop {
        // ---- Repair sweep: clear stale mate pointers of robbed X
        // vertices whose requeue entry was dropped when the push budget
        // cut the rounds short. No other thread runs here, so the plain
        // stores cannot race.
        (0..g.num_x()).into_par_iter().for_each(|x| {
            let own = mate_x[x].load(Ordering::Relaxed);
            if own != NONE && mate_y[own as usize].load(Ordering::Relaxed) != x as VertexId {
                mate_x[x].store(NONE, Ordering::Relaxed);
            }
        });

        // ---- Exact global relabel (serial; also the certification). ----
        let mx_snap = snapshot_mate_x(&mate_x);
        let mut labels: Vec<u32> = vec![limit; g.num_y()];
        stats.edges_traversed += global_relabel(
            g,
            &mx_snap,
            &mut labels,
            limit,
            &mut gr_matched,
            &mut gr_queue,
        );
        stats.phases += 1;
        for (a, &v) in d_y.iter().zip(labels.iter()) {
            a.store(v, Ordering::Relaxed);
        }

        // Active X vertices that are still certifiably matchable.
        let active: Vec<VertexId> = (0..g.num_x() as VertexId)
            .into_par_iter()
            .filter(|&x| {
                if mate_x[x as usize].load(Ordering::Relaxed) != NONE {
                    return false;
                }
                g.x_neighbors(x)
                    .iter()
                    .any(|&y| d_y[y as usize].load(Ordering::Relaxed) < limit)
            })
            .collect();
        if active.is_empty() {
            break; // exact labels certify maximality
        }

        // ---- Parallel rounds over the active set. ----
        // Between exact relabels, only `n / frequency` pushes are allowed
        // (the paper's relabel-frequency knob): without this budget,
        // labels on deficient instances climb to the limit in +2 steps,
        // wasting O(n·limit) scans.
        let push_budget = ((g.num_vertices().max(1) as f64
            / opts.global_relabel_frequency.max(0.01)) as u64)
            .max(1);
        let mut pushes = 0u64;
        let mut frontier = active;
        while !frontier.is_empty() && pushes < push_budget {
            let results: Vec<(Vec<VertexId>, u64)> = frontier
                .par_chunks(opts.queue_limit.max(1))
                .map(|batch| {
                    let mut requeue = Vec::new();
                    let mut local_scanned = 0u64;
                    let mut local_pushes = 0u64;
                    for &x in batch {
                        local_pushes += pr_process_one(
                            g,
                            &mate_x,
                            &mate_y,
                            &d_y,
                            limit,
                            x,
                            &mut requeue,
                            &mut local_scanned,
                        );
                    }
                    scanned.fetch_add(local_scanned, Ordering::Relaxed);
                    (requeue, local_pushes)
                })
                .collect();
            let mut next = Vec::new();
            for (mut rq, p) in results {
                next.append(&mut rq);
                pushes += p;
            }
            frontier = next;
        }
        if pushes == 0 {
            // True stall: active vertices remain reachable under exact
            // labels but no push landed (only possible under extreme CAS
            // contention). Finish with the exact serial solver to preserve
            // the worst-case guarantees.
            let final_m = matching_from_atomic(g, &mate_y);
            let out = push_relabel(g, final_m, opts);
            let mut stats = merge_stats(stats, out.stats);
            stats.edges_traversed += scanned.load(Ordering::Relaxed);
            stats.elapsed = start.elapsed();
            return RunOutcome {
                matching: out.matching,
                stats,
            };
        }
    }

    stats.edges_traversed += scanned.load(Ordering::Relaxed);
    let matching = matching_from_atomic(g, &mate_y);
    stats.final_cardinality = matching.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching, stats }
}

/// One double-push attempt for `x`; pushes robbed/requeued vertices into
/// `requeue`. Returns the number of pushes performed (0 or 1).
#[allow(clippy::too_many_arguments)]
fn pr_process_one(
    g: &BipartiteCsr,
    mate_x: &[AtomicU32],
    mate_y: &[AtomicU32],
    d_y: &[AtomicU32],
    limit: u32,
    x: VertexId,
    requeue: &mut Vec<VertexId>,
    scanned: &mut u64,
) -> u64 {
    // Lazy self-repair: if we were robbed, clear our stale mate pointer.
    let own = mate_x[x as usize].load(Ordering::Relaxed);
    if own != NONE {
        if mate_y[own as usize].load(Ordering::Acquire) == x {
            return 0; // actually matched: nothing to do
        }
        mate_x[x as usize].store(NONE, Ordering::Relaxed);
    }

    // Bounded retries: every CAS failure means another thread made global
    // progress, so requeueing after a few attempts cannot livelock.
    for _attempt in 0..4 {
        let (mut y1, mut d1, mut d2) = (NONE, limit, limit);
        for &y in g.x_neighbors(x) {
            *scanned += 1;
            let d = d_y[y as usize].load(Ordering::Relaxed);
            if d < d1 {
                d2 = d1;
                d1 = d;
                y1 = y;
            } else if d < d2 {
                d2 = d;
            }
        }
        if y1 == NONE || d1 >= limit {
            return 0; // unmatchable under current labels; outer loop re-checks
        }
        let old = mate_y[y1 as usize].load(Ordering::Acquire);
        if old == x {
            mate_x[x as usize].store(y1, Ordering::Relaxed);
            return 0;
        }
        if mate_y[y1 as usize]
            .compare_exchange(old, x, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            mate_x[x as usize].store(y1, Ordering::Release);
            d_y[y1 as usize].fetch_max(d2.saturating_add(2).min(limit), Ordering::AcqRel);
            if old != NONE {
                // The robbed vertex self-repairs when processed.
                requeue.push(old);
            }
            return 1;
        }
        // CAS failed: labels/mates moved under us; rescan.
    }
    requeue.push(x);
    0
}

/// Builds a consistent [`Matching`] from the authoritative `Y`-side array.
fn matching_from_atomic(g: &BipartiteCsr, mate_y: &[AtomicU32]) -> Matching {
    let my: Vec<VertexId> = mate_y.iter().map(|a| a.load(Ordering::Acquire)).collect();
    let mut mx: Vec<VertexId> = vec![NONE; g.num_x()];
    for (y, &x) in my.iter().enumerate() {
        if x != NONE {
            debug_assert_eq!(mx[x as usize], NONE, "two Y vertices claim x={x}");
            mx[x as usize] = y as VertexId;
        }
    }
    Matching::from_mates(mx, my)
}

fn merge_stats(a: SearchStats, b: SearchStats) -> SearchStats {
    SearchStats {
        edges_traversed: a.edges_traversed + b.edges_traversed,
        phases: a.phases + b.phases,
        augmenting_paths: a.augmenting_paths + b.augmenting_paths,
        total_augmenting_path_edges: a.total_augmenting_path_edges + b.total_augmenting_path_edges,
        initial_cardinality: a.initial_cardinality,
        final_cardinality: b.final_cardinality,
        elapsed: a.elapsed + b.elapsed,
        breakdown: a.breakdown,
        frontier_history: a.frontier_history,
        phase_traces: a.phase_traces,
        timed_out: a.timed_out || b.timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    fn opts() -> PushRelabelOptions {
        PushRelabelOptions::default()
    }

    #[test]
    fn pr_simple_path() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = push_relabel(&g, Matching::for_graph(&g), &opts());
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pr_steals_and_cascades() {
        let k = 50;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let mut m0 = Matching::for_graph(&g);
        for i in 1..k as VertexId {
            m0.match_pair(i, i - 1);
        }
        let out = push_relabel(&g, m0, &opts());
        assert_eq!(out.matching.cardinality(), k);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pr_deficient_graph_drops_unmatchable() {
        let g = BipartiteCsr::from_edges(5, 2, &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)]);
        let out = push_relabel(&g, Matching::for_graph(&g), &opts());
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pr_isolated_x_vertices() {
        let g = BipartiteCsr::from_edges(4, 2, &[(0, 0), (1, 1)]);
        let out = push_relabel(&g, Matching::for_graph(&g), &opts());
        assert_eq!(out.matching.cardinality(), 2);
    }

    #[test]
    fn pr_agrees_with_hk_on_random_like_graph() {
        let g = BipartiteCsr::from_edges(
            8,
            8,
            &[
                (0, 1),
                (0, 5),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 7),
                (3, 3),
                (3, 4),
                (4, 4),
                (4, 6),
                (5, 2),
                (5, 3),
                (6, 6),
                (7, 0),
                (7, 5),
                (6, 7),
            ],
        );
        let hk = crate::hopcroft_karp(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        let pr = push_relabel(&g, Matching::for_graph(&g), &opts())
            .matching
            .cardinality();
        assert_eq!(pr, hk);
    }

    #[test]
    fn pr_frequent_relabeling() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let o = PushRelabelOptions {
            global_relabel_frequency: 100.0,
            ..opts()
        };
        let out = push_relabel(&g, Matching::for_graph(&g), &o);
        assert_eq!(out.matching.cardinality(), 3);
        assert!(out.stats.phases >= 2);
    }

    #[test]
    fn pr_orders_all_reach_maximum() {
        let g = BipartiteCsr::from_edges(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 2),
                (3, 3),
                (3, 4),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 5),
                (0, 3),
            ],
        );
        let oracle = crate::hopcroft_karp(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        for order in [PrOrder::Fifo, PrOrder::HighestLabel, PrOrder::LowestLabel] {
            let o = PushRelabelOptions { order, ..opts() };
            let out = push_relabel(&g, Matching::for_graph(&g), &o);
            assert_eq!(out.matching.cardinality(), oracle, "{order:?}");
            assert!(is_maximum(&g, &out.matching), "{order:?}");
        }
    }

    #[test]
    fn pr_orders_on_deficient_and_chain_instances() {
        // Deficient hub graph + adversarial chain: both shapes for all
        // disciplines.
        let hub = BipartiteCsr::from_edges(5, 2, &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)]);
        let k = 40;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let chain = BipartiteCsr::from_edges(k, k, &edges);
        let mut chain_m0 = Matching::for_graph(&chain);
        for i in 1..k as VertexId {
            chain_m0.match_pair(i, i - 1);
        }
        for order in [PrOrder::Fifo, PrOrder::HighestLabel, PrOrder::LowestLabel] {
            let o = PushRelabelOptions { order, ..opts() };
            let a = push_relabel(&hub, Matching::for_graph(&hub), &o);
            assert_eq!(a.matching.cardinality(), 2, "{order:?}");
            let b = push_relabel(&chain, chain_m0.clone(), &o);
            assert_eq!(b.matching.cardinality(), k, "{order:?}");
        }
    }

    #[test]
    fn pr_parallel_simple() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let o = PushRelabelOptions {
            threads: 2,
            ..opts()
        };
        let out = push_relabel_parallel(&g, Matching::for_graph(&g), &o);
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pr_parallel_contention() {
        // Heavy stealing: 60 X vertices over 40 Y vertices with overlap.
        let mut edges = Vec::new();
        for x in 0..60u32 {
            for k in 0..3u32 {
                edges.push((x, (x + k * 7) % 40));
            }
        }
        let g = BipartiteCsr::from_edges(60, 40, &edges);
        let o = PushRelabelOptions {
            threads: 4,
            queue_limit: 8,
            ..opts()
        };
        let out = push_relabel_parallel(&g, Matching::for_graph(&g), &o);
        let oracle = crate::hopcroft_karp(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        assert_eq!(out.matching.cardinality(), oracle);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn pr_parallel_matches_serial() {
        let k: u32 = 64;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i, i));
            edges.push((i, (i + 3) % k));
        }
        let g = BipartiteCsr::from_edges(k as usize, k as usize, &edges);
        let s = push_relabel(&g, Matching::for_graph(&g), &opts());
        let p = push_relabel_parallel(
            &g,
            Matching::for_graph(&g),
            &PushRelabelOptions {
                threads: 3,
                ..opts()
            },
        );
        assert_eq!(s.matching.cardinality(), p.matching.cardinality());
    }

    #[test]
    fn pr_empty_graph() {
        let g = BipartiteCsr::from_edges(0, 0, &[]);
        let out = push_relabel(&g, Matching::for_graph(&g), &opts());
        assert_eq!(out.matching.cardinality(), 0);
    }
}
