//! Single-source (SS) augmenting-path algorithms (Algorithm 1 of the
//! paper).
//!
//! SS algorithms search for one augmenting path at a time, from one
//! unmatched `X` vertex. Their crucial property (§II-C): when a search from
//! `x₀` **fails**, no vertex of the search tree `T(x₀)` can lie on any
//! future augmenting path, so the tree is *discarded* — its `visited` flags
//! are never cleared and those vertices are hidden from all later searches.
//! When a search **succeeds**, only the vertices traversed by that search
//! are un-hidden (reset), because augmentation changes the matching inside
//! that tree only.
//!
//! This discard rule is what makes SS-BFS traverse few edges on graphs with
//! low matching number (Fig. 1a) — and it is exactly the property that
//! multi-source algorithms lose, motivating tree grafting.

mod bfs;
mod dfs;

pub use bfs::ss_bfs;
pub use dfs::ss_dfs;

pub(crate) use bfs::reconstruct_into;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::verify::is_maximum;
    use graft_graph::BipartiteCsr;

    fn hard_graph() -> BipartiteCsr {
        // A graph where greedy choices force long augmenting paths.
        BipartiteCsr::from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)],
        )
    }

    #[test]
    fn both_solvers_reach_maximum() {
        let g = hard_graph();
        for init in [
            Initializer::None,
            Initializer::Greedy,
            Initializer::KarpSipser,
        ] {
            let m0 = init.run(&g, 5);
            let b = ss_bfs(&g, m0.clone());
            let d = ss_dfs(&g, m0);
            assert!(
                is_maximum(&g, &b.matching),
                "ss_bfs not maximum with {init:?}"
            );
            assert!(
                is_maximum(&g, &d.matching),
                "ss_dfs not maximum with {init:?}"
            );
            assert_eq!(b.matching.cardinality(), d.matching.cardinality());
        }
    }

    #[test]
    fn discard_rule_skips_dead_trees() {
        // x1..x3 all compete for the single y0: after the first failure the
        // dead tree is hidden, so later searches traverse almost nothing.
        let g = BipartiteCsr::from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let out = ss_bfs(&g, crate::Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 1);
        // First search matches (0,0) [1 edge]; second traverses y0's
        // adjacency once and fails; the remaining two searches see y0
        // hidden and traverse at most its own edge scan.
        assert!(
            out.stats.edges_traversed <= 8,
            "discard rule should bound traversals, got {}",
            out.stats.edges_traversed
        );
    }
}
