//! Single-source BFS augmenting-path search (SS-BFS).

use crate::stats::SearchStats;
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::collections::VecDeque;
use std::time::Instant;

/// Maximum matching by repeated single-source BFS with the failed-tree
/// discard rule.
///
/// For each unmatched `x₀` in id order, grows an alternating BFS tree over
/// previously unvisited `Y` vertices. On success the matching is augmented
/// along the discovered shortest (within the tree) path and the visited
/// flags touched by *this* search are cleared; on failure the flags stay
/// set, permanently discarding the dead tree (§II-C).
pub fn ss_bfs(g: &BipartiteCsr, mut m: Matching) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    let mut visited = vec![false; g.num_y()];
    let mut parent_y: Vec<VertexId> = vec![NONE; g.num_y()];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut touched: Vec<VertexId> = Vec::new();

    let roots: Vec<VertexId> = m.unmatched_x().collect();
    for x0 in roots {
        stats.phases += 1;
        queue.clear();
        touched.clear();
        queue.push_back(x0);
        let mut end_y = NONE;

        'search: while let Some(x) = queue.pop_front() {
            for &y in g.x_neighbors(x) {
                stats.edges_traversed += 1;
                if visited[y as usize] {
                    continue;
                }
                visited[y as usize] = true;
                touched.push(y);
                parent_y[y as usize] = x;
                let mate = m.mate_of_y(y);
                if mate == NONE {
                    end_y = y;
                    break 'search;
                }
                queue.push_back(mate);
            }
        }

        if end_y != NONE {
            let path = reconstruct(&m, &parent_y, end_y);
            stats.augmenting_paths += 1;
            stats.total_augmenting_path_edges += (path.len() - 1) as u64;
            m.augment(&path);
            // Success: un-hide the vertices this search visited.
            for &y in &touched {
                visited[y as usize] = false;
            }
        }
        // Failure: leave `visited` set — T(x₀) is discarded forever.
    }

    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

/// Walks parent/mate pointers back from the unmatched endpoint `end_y` and
/// returns the interleaved path `[x₀, y₁, …, end_y]`.
pub(crate) fn reconstruct(m: &Matching, parent_y: &[VertexId], end_y: VertexId) -> Vec<VertexId> {
    let mut rev = Vec::new();
    reconstruct_into(m, parent_y, end_y, &mut rev);
    rev
}

/// Allocation-free variant of [`reconstruct`]: writes the path into `out`,
/// reusing its capacity.
pub(crate) fn reconstruct_into(
    m: &Matching,
    parent_y: &[VertexId],
    end_y: VertexId,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    out.push(end_y);
    let mut x = parent_y[end_y as usize];
    loop {
        out.push(x);
        let y = m.mate_of_x(x);
        if y == NONE {
            break;
        }
        out.push(y);
        x = parent_y[y as usize];
    }
    out.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    #[test]
    fn perfect_matching_on_cycle() {
        // 8-cycle x0-y0-x1-y1-x2-y2-x3-y3-x0.
        let g = BipartiteCsr::from_edges(
            4,
            4,
            &[
                (0, 0),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (0, 3),
            ],
        );
        let out = ss_bfs(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 4);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn stats_are_filled() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = ss_bfs(&g, Matching::for_graph(&g));
        assert_eq!(out.stats.initial_cardinality, 0);
        assert_eq!(out.stats.final_cardinality, 2);
        assert_eq!(out.stats.phases, 2);
        assert_eq!(out.stats.augmenting_paths, 2);
        assert!(out.stats.edges_traversed >= 2);
    }

    #[test]
    fn respects_initial_matching() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 0); // forces an augmentation through x1
        let out = ss_bfs(&g, m0);
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn unmatchable_graph() {
        let g = BipartiteCsr::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]);
        let out = ss_bfs(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 1);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn finds_length_five_path() {
        // Forces the path x0-y0-x1-y1-x2-y2 after greedy-ish init.
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 0);
        m0.match_pair(2, 1);
        let out = ss_bfs(&g, m0);
        assert_eq!(out.matching.cardinality(), 3);
        assert_eq!(out.stats.total_augmenting_path_edges, 5);
    }
}
