//! Single-source DFS augmenting-path search (SS-DFS).

use crate::stats::SearchStats;
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::time::Instant;

/// Maximum matching by repeated single-source DFS with the failed-tree
/// discard rule.
///
/// The DFS is iterative (explicit stack of `(x, next-neighbor-index)`
/// frames) so that the long augmenting paths of Fig. 1c cannot overflow the
/// call stack. As in [`ss_bfs`](crate::ss_bfs), failed search trees stay
/// hidden forever; successful searches un-hide only their own vertices.
pub fn ss_dfs(g: &BipartiteCsr, mut m: Matching) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    let mut visited = vec![false; g.num_y()];
    let mut touched: Vec<VertexId> = Vec::new();
    // DFS frames: the X vertex and the index of the next neighbor to scan.
    let mut stack: Vec<(VertexId, usize)> = Vec::new();

    let roots: Vec<VertexId> = m.unmatched_x().collect();
    for x0 in roots {
        stats.phases += 1;
        stack.clear();
        touched.clear();
        stack.push((x0, 0));
        let mut end_y = NONE;

        'search: while let Some(top) = stack.last_mut() {
            let x = top.0;
            let i = top.1;
            top.1 += 1;
            let nbrs = g.x_neighbors(x);
            if i >= nbrs.len() {
                stack.pop();
                continue;
            }
            let y = nbrs[i];
            stats.edges_traversed += 1;
            if visited[y as usize] {
                continue;
            }
            visited[y as usize] = true;
            touched.push(y);
            let mate = m.mate_of_y(y);
            if mate == NONE {
                end_y = y;
                break 'search;
            }
            stack.push((mate, 0));
        }

        if end_y != NONE {
            // The stack spells out the alternating path: interleave the
            // stacked X vertices with the matched edges used to enter them.
            let mut path = Vec::with_capacity(2 * stack.len());
            path.push(stack[0].0);
            for &(x, _) in &stack[1..] {
                path.push(m.mate_of_x(x));
                path.push(x);
            }
            path.push(end_y);
            stats.augmenting_paths += 1;
            stats.total_augmenting_path_edges += (path.len() - 1) as u64;
            m.augment(&path);
            for &y in &touched {
                visited[y as usize] = false;
            }
        }
    }

    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    #[test]
    fn dfs_matches_simple_path() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = ss_dfs(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn dfs_long_alternating_chain() {
        // Chain of length 2k: forces deep DFS with backtracking.
        let k = 200;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        // Adversarial init: match each x_i to y_{i-1}, leaving x0 free and
        // one long augmenting path.
        let mut m0 = Matching::for_graph(&g);
        for i in 1..k as VertexId {
            m0.match_pair(i, i - 1);
        }
        let out = ss_dfs(&g, m0);
        assert_eq!(out.matching.cardinality(), k);
        assert!(is_maximum(&g, &out.matching));
        assert_eq!(out.stats.augmenting_paths, 1);
        assert_eq!(out.stats.total_augmenting_path_edges as usize, 2 * k - 1);
    }

    #[test]
    fn dfs_with_backtracking() {
        // x0 explores a dead branch before finding the free vertex.
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (0, 2), (1, 0), (2, 2), (2, 1)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 0);
        m0.match_pair(2, 2);
        let out = ss_dfs(&g, m0);
        assert_eq!(out.matching.cardinality(), 3);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn dfs_empty_graph() {
        let g = BipartiteCsr::from_edges(2, 2, &[]);
        let out = ss_dfs(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 0);
    }

    #[test]
    fn dfs_agrees_with_bfs_cardinality() {
        let g = BipartiteCsr::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 0),
                (3, 3),
                (3, 4),
                (4, 4),
                (2, 3),
            ],
        );
        let a = ss_dfs(&g, Matching::for_graph(&g)).matching.cardinality();
        let b = crate::ss::ss_bfs(&g, Matching::for_graph(&g))
            .matching
            .cardinality();
        assert_eq!(a, b);
    }
}
