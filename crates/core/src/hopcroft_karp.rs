//! The Hopcroft-Karp algorithm.
//!
//! HK runs in phases; each phase finds a **maximal set of vertex-disjoint
//! shortest augmenting paths** via one BFS (computing the layered distance
//! structure) followed by layered DFS extraction. The number of phases is
//! `O(√n)`, giving the `O(m√n)` bound — the best known for bipartite
//! matching — but, as Fig. 1b of the paper observes, HK typically needs
//! *more* phases than MS-BFS in practice because it only augments along
//! shortest paths.
//!
//! This implementation doubles as the **test oracle**: its output
//! cardinality is certified by the König cover in the integration tests,
//! and every other algorithm is checked against it.

use crate::stats::SearchStats;
use crate::{Matching, RunOutcome};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::collections::VecDeque;
use std::time::Instant;

const INF: u32 = u32::MAX;

/// Maximum matching by Hopcroft-Karp, starting from `m`.
///
/// ```
/// use graft_core::{hopcroft_karp, Matching};
/// use graft_graph::BipartiteCsr;
///
/// let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
/// let out = hopcroft_karp(&g, Matching::for_graph(&g));
/// assert_eq!(out.matching.cardinality(), 2);
/// ```
pub fn hopcroft_karp(g: &BipartiteCsr, mut m: Matching) -> RunOutcome {
    let start = Instant::now();
    let mut stats = SearchStats {
        initial_cardinality: m.cardinality(),
        ..Default::default()
    };

    let nx = g.num_x();
    let mut dist: Vec<u32> = vec![INF; nx];
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    loop {
        // ---- BFS phase: layered distances over X vertices. ----
        queue.clear();
        for (x, d) in dist.iter_mut().enumerate() {
            if m.is_x_matched(x as VertexId) {
                *d = INF;
            } else {
                *d = 0;
                queue.push_back(x as VertexId);
            }
        }
        // Distance (in X-layers) at which the first free Y vertex appears.
        let mut dist_free = INF;
        while let Some(x) = queue.pop_front() {
            if dist[x as usize] >= dist_free {
                continue; // deeper than the shortest augmenting path
            }
            for &y in g.x_neighbors(x) {
                stats.edges_traversed += 1;
                let mate = m.mate_of_y(y);
                if mate == NONE {
                    if dist_free == INF {
                        dist_free = dist[x as usize] + 1;
                    }
                } else if dist[mate as usize] == INF {
                    dist[mate as usize] = dist[x as usize] + 1;
                    queue.push_back(mate);
                }
            }
        }
        if dist_free == INF {
            break; // no augmenting path: matching is maximum
        }
        stats.phases += 1;

        // ---- DFS phase: extract a maximal set of disjoint shortest paths. ----
        let roots: Vec<VertexId> = m.unmatched_x().collect();
        for x0 in roots {
            if dfs_augment(g, &mut m, &mut dist, dist_free, x0, &mut stats) {
                // Path length in edges = 2·dist_free − 1.
                stats.augmenting_paths += 1;
                stats.total_augmenting_path_edges += (2 * dist_free - 1) as u64;
            }
        }
    }

    stats.final_cardinality = m.cardinality();
    stats.elapsed = start.elapsed();
    RunOutcome { matching: m, stats }
}

/// Iterative layered DFS from `x0`; augments in place on success.
fn dfs_augment(
    g: &BipartiteCsr,
    m: &mut Matching,
    dist: &mut [u32],
    dist_free: u32,
    x0: VertexId,
    stats: &mut SearchStats,
) -> bool {
    // Frame: (x, next neighbor index, y-edge used to enter this frame).
    let mut stack: Vec<(VertexId, usize, VertexId)> = vec![(x0, 0, NONE)];
    while let Some(top) = stack.last_mut() {
        let (x, i, _) = *top;
        top.1 += 1;
        let nbrs = g.x_neighbors(x);
        if i >= nbrs.len() {
            // Exhausted: remove x from this phase's layered structure.
            dist[x as usize] = INF;
            stack.pop();
            continue;
        }
        let y = nbrs[i];
        stats.edges_traversed += 1;
        let mate = m.mate_of_y(y);
        if mate == NONE {
            if dist[x as usize] + 1 != dist_free {
                continue; // only shortest paths may end here
            }
            // Success: flip along the stacked frames.
            let mut cur_y = y;
            while let Some((fx, _, via)) = stack.pop() {
                m.rematch(fx, cur_y);
                dist[fx as usize] = INF; // vertex-disjointness within phase
                cur_y = via;
            }
            return true;
        }
        if dist[mate as usize] == dist[x as usize] + 1 {
            stack.push((mate, 0, y));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximum;

    #[test]
    fn hk_simple() {
        let g = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let out = hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn hk_complete_bipartite() {
        let mut edges = Vec::new();
        for x in 0..6u32 {
            for y in 0..6u32 {
                edges.push((x, y));
            }
        }
        let g = BipartiteCsr::from_edges(6, 6, &edges);
        let out = hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 6);
        // All shortest paths have length 1: a single phase suffices.
        assert_eq!(out.stats.phases, 1);
        assert_eq!(out.stats.total_augmenting_path_edges, 6);
    }

    #[test]
    fn hk_finds_disjoint_paths_per_phase() {
        // Two independent length-3 paths; one phase must augment both.
        let g = BipartiteCsr::from_edges(4, 4, &[(0, 0), (1, 0), (1, 1), (2, 2), (3, 2), (3, 3)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 0);
        m0.match_pair(3, 2);
        let out = hopcroft_karp(&g, m0);
        assert_eq!(out.matching.cardinality(), 4);
        assert_eq!(out.stats.phases, 1);
        assert_eq!(out.stats.augmenting_paths, 2);
        assert_eq!(out.stats.total_augmenting_path_edges, 6);
    }

    #[test]
    fn hk_increasing_path_lengths() {
        // Chain graph requiring several phases of growing path length when
        // started from an adversarial matching.
        let k = 30;
        let mut edges = Vec::new();
        for i in 0..k as VertexId {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let g = BipartiteCsr::from_edges(k, k, &edges);
        let out = hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), k);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn hk_unbalanced_sides() {
        let g = BipartiteCsr::from_edges(2, 5, &[(0, 4), (1, 4), (1, 0)]);
        let out = hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 2);
        assert!(is_maximum(&g, &out.matching));
    }

    #[test]
    fn hk_no_edges() {
        let g = BipartiteCsr::from_edges(3, 3, &[]);
        let out = hopcroft_karp(&g, Matching::for_graph(&g));
        assert_eq!(out.matching.cardinality(), 0);
        assert_eq!(out.stats.phases, 0);
    }

    #[test]
    fn hk_from_partial_matching() {
        let g = BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let mut m0 = Matching::for_graph(&g);
        m0.match_pair(1, 0);
        m0.match_pair(2, 1);
        let out = hopcroft_karp(&g, m0);
        assert_eq!(out.matching.cardinality(), 3);
        assert!(is_maximum(&g, &out.matching));
    }
}
