//! Model-checked parallel Pothen-Fan kernel suite (graft-check).
//!
//! Compiled only under `RUSTFLAGS="--cfg graft_check"`. These tests drive
//! the *real* `dfs_task` searcher — the exact code `pothen_fan_parallel`
//! runs per root — on graft-check model threads over tiny graphs, so the
//! checker enumerates every bounded interleaving of the free-vertex CAS,
//! visited stamping, lookahead cursor, and path-flip stores.
//!
//! The centerpiece is a mutation-verified regression test for the adoption
//! race: descending through a matched edge without confirming
//! `mate_x[mate] == y` lets a searcher adopt an `X` vertex that is still
//! on another searcher's stack mid-flip, tearing the mate arrays. With the
//! stability check disabled (test-only knob) the checker must find that
//! interleaving and print a replayable schedule; with the shipped check in
//! place the same exploration must come up clean.
//!
//! Memory here is explored sequentially consistent (`stale_reads(false)`):
//! the adoption race is a pure scheduling race, and SC keeps the space
//! small enough to exhaust. Weak-memory behaviors of the primitives are
//! covered by graft-check's own litmus suite and `model_deque.rs`.
#![cfg(graft_check)]

use graft_check::{thread, Checker};
use graft_core::pf_check_api::{make_shared, mates, run_search, DISABLE_STABILITY_CHECK};
use graft_graph::{BipartiteCsr, VertexId, NONE};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// `DISABLE_STABILITY_CHECK` is process-global; serialize the tests that
/// read or write it so the harness's parallel runner cannot interleave a
/// mutated execution into a clean test.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// RAII knob setter: disables the stability check for one test body. The
/// guard is held, not read — it keeps the knob lock until drop.
struct DisableCheck(#[allow(dead_code)] MutexGuard<'static, ()>);

impl DisableCheck {
    fn new() -> Self {
        let g = knob_lock();
        DISABLE_STABILITY_CHECK.store(true, std::sync::atomic::Ordering::Relaxed);
        DisableCheck(g)
    }
}

impl Drop for DisableCheck {
    fn drop(&mut self) {
        DISABLE_STABILITY_CHECK.store(false, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Assert the mate arrays are mutually consistent: every matched slot must
/// be matched back by its partner. A torn flip (the adoption race) leaves
/// a slot pointing at a vertex whose own slot disagrees.
fn assert_mates_consistent(mate_x: &[VertexId], mate_y: &[VertexId]) {
    for (x, &y) in mate_x.iter().enumerate() {
        if y != NONE {
            assert_eq!(
                mate_y[y as usize], x as VertexId,
                "torn matching: mate_x[{x}] = {y} but mate_y[{y}] = {}",
                mate_y[y as usize]
            );
        }
    }
    for (y, &x) in mate_y.iter().enumerate() {
        if x != NONE {
            assert_eq!(
                mate_x[x as usize], y as VertexId,
                "torn matching: mate_y[{y}] = {x} but mate_x[{x}] = {}",
                mate_x[x as usize]
            );
        }
    }
}

/// The minimal race graph: `x0 — {y0, y1}`, `x1 — {y0}`. Searcher A (from
/// `x0`) free-claims `y0`; if A is preempted mid-flip, searcher B (from
/// `x1`) sees `mate_y[y0] = x0` and — without the stability check — adopts
/// `x0` while it is still on A's stack, and both flips interleave over the
/// same slots.
fn race_graph() -> &'static BipartiteCsr {
    static G: OnceLock<BipartiteCsr> = OnceLock::new();
    G.get_or_init(|| BipartiteCsr::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]))
}

/// Two concurrent searchers over the race graph; the closure asserts the
/// post-join invariant every real phase relies on.
fn two_searcher_scenario() {
    let g = race_graph();
    let sh = Arc::new(make_shared(g));
    let sh2 = Arc::clone(&sh);
    let b = thread::spawn(move || run_search(&sh2, 1));
    run_search(&sh, 0);
    b.join().unwrap();
    let (mx, my) = mates(&sh);
    assert_mates_consistent(&mx, &my);
}

/// Mutation test, part 1: with the stability check knocked out the checker
/// must find the adoption race and hand back a replayable schedule.
#[test]
fn adoption_race_found_when_stability_check_disabled() {
    let _knob = DisableCheck::new();
    let start = std::time::Instant::now();
    let checker = Checker::new().stale_reads(false);
    let report = checker.check_report(two_searcher_scenario);
    let v = report
        .violation
        .expect("mutated kernel must exhibit the adoption race");
    assert!(
        v.message.contains("torn matching"),
        "unexpected violation: {}",
        v.message
    );
    assert!(!v.schedule.is_empty(), "violation must carry a schedule");
    // The schedule must replay: the same interleaving, the same tear.
    let replay = checker.replay(two_searcher_scenario, &v.schedule);
    let rv = replay.violation.expect("recorded schedule must reproduce");
    assert!(rv.message.contains("torn matching"), "{}", rv.message);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "race must be found and replayed within the 10s budget"
    );
}

/// Mutation test, part 2: the shipped kernel (stability check in place)
/// survives the exact same bounded exploration with zero violations.
#[test]
fn adoption_race_absent_with_stability_check() {
    let _guard = knob_lock();
    let report = Checker::new()
        .stale_reads(false)
        .check_report(two_searcher_scenario);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete, "exploration should exhaust: {report:?}");
}

/// Three searchers over a 6-vertex ladder, all contending for overlap:
/// whatever the schedule, the final mate arrays must be mutually
/// consistent and every matched pair must be a real edge.
#[test]
fn three_searchers_ladder_consistent() {
    let _guard = knob_lock();
    let report = Checker::new()
        .stale_reads(false)
        .preemption_bound(2)
        .max_executions(30_000)
        .check_report(|| {
            static G: OnceLock<BipartiteCsr> = OnceLock::new();
            let g = G.get_or_init(|| {
                BipartiteCsr::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])
            });
            let sh = Arc::new(make_shared(g));
            let (s1, s2) = (Arc::clone(&sh), Arc::clone(&sh));
            let b = thread::spawn(move || run_search(&s1, 1));
            let c = thread::spawn(move || run_search(&s2, 2));
            run_search(&sh, 0);
            b.join().unwrap();
            c.join().unwrap();
            let (mx, my) = mates(&sh);
            assert_mates_consistent(&mx, &my);
            for (x, &y) in mx.iter().enumerate() {
                if y != NONE {
                    assert!(
                        g.x_neighbors(x as VertexId).contains(&y),
                        "matched non-edge ({x}, {y})"
                    );
                }
            }
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.divergent, 0);
}
