//! The newline-delimited wire protocol.
//!
//! One request per line, one reply line per request, UTF-8, no framing
//! beyond `\n` — scriptable with `nc`. Grammar (tokens split on
//! whitespace, `[]` optional):
//!
//! ```text
//! LOAD <name> <path.mtx>
//! GEN <name> <suite>[:<scale>]
//! SOLVE <name> [algorithm] [timeout_ms=N] [threads=N] [cold]
//! SOLVE_BATCH <n>
//! UPDATE <name> ADD|DEL <x> <y>
//! UPDATE_BATCH <n>
//! STATS
//! HEALTH
//! TRACE [n]
//! EVICT <name>
//! SLEEP <ms>
//! SHUTDOWN
//! ```
//!
//! `SOLVE ... threads=N` requests an N-thread parallel solve: the job
//! occupies N of the server's worker slots for its duration (scheduler
//! admission is all-or-nothing, strict FIFO). `threads=0` or an omitted
//! token means "use the server default" (`serve --threads-per-solve`,
//! itself defaulting to 1); a request with `threads=N` larger than the
//! worker pool is refused up front with `ERR bad-request`. The `STATS`
//! counter `solve_threads_used` accumulates the resolved thread count of
//! every dispatched solve.
//!
//! Replies are `OK key=value ...` or `ERR <code> <message>`, where
//! `<code>` is [`SvcError::code`]. Keywords are case-insensitive;
//! names are case-sensitive. `TRACE` is one of two multi-line replies:
//! its `OK events=N` line is followed by exactly `N` JSON trace-event
//! lines (the [`graft_core::trace`] schema, newest last).
//!
//! `SOLVE_BATCH <n>` is the pipelined path: the header line is followed
//! by exactly `n` **member lines**, each either the argument list of a
//! `SOLVE` (`<name> [algorithm] [timeout_ms=N] [threads=N] [cold]`) or
//! `SLEEP <ms>`. The reply is the header `OK batch=<n>` followed by
//! exactly `n` reply lines, **in member order** — each `OK ...` exactly
//! as the equivalent one-shot request would have produced, or a typed
//! `ERR` for just that member (a failed member never desynchronizes the
//! stream: its slot is filled and the remaining members still run).
//! Members are scheduled concurrently across the worker pool, which is
//! where the throughput over one-round-trip-per-request comes from.
//! `n` may be `0` (the reply is just `OK batch=0`) and is capped at
//! [`MAX_BATCH`]; a header above the cap is refused **before** any
//! member line is consumed.
//!
//! `UPDATE <name> ADD|DEL <x> <y>` applies one edge update to the named
//! graph's dynamic matching (created lazily from the registered graph on
//! first update) and replies
//! `OK graph=<name> op=add|del x=<x> y=<y> outcome=<o> cardinality=<c>
//! rebuilds=<r> elapsed_us=<t>`. `UPDATE_BATCH <n>` reuses the
//! `SOLVE_BATCH` framing verbatim: `n` member lines follow, each either
//! the argument list of an `UPDATE` (`<name> ADD|DEL <x> <y>`) or
//! `SLEEP <ms>`, and the reply is `OK batch=<n>` plus `n` reply lines in
//! member order.
//!
//! Hardening: a request line longer than [`MAX_LINE_BYTES`], containing a
//! NUL byte, or holding invalid UTF-8 is answered with a typed
//! `ERR bad-request` — never a panic, a hang, or a dropped connection.
//! Lines may end in `\r\n` (the `\r` is stripped).

use crate::error::SvcError;
use graft_core::Algorithm;
use std::fmt::Write as _;

/// Upper bound on one request line in bytes (newline excluded). Longer
/// lines are rejected with `ERR bad-request` and discarded up to the next
/// newline, keeping the connection usable.
pub const MAX_LINE_BYTES: usize = 8192;

/// Upper bound on `SOLVE_BATCH <n>`: anything larger is a typo or an
/// attack, not a real batch (a client wanting more issues more batches —
/// the pipeline never drains between them anyway).
pub const MAX_BATCH: usize = 4096;

/// Everything a `SOLVE` carries after the verb. Shared between the
/// one-shot [`Request::Solve`] and `SOLVE_BATCH` members
/// ([`BatchMember::Solve`]), so both paths parse and execute
/// identically — the differential tests pin exactly this.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSpec {
    /// Registry name of the graph.
    pub name: String,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Per-job deadline, from now.
    pub timeout_ms: Option<u64>,
    /// Thread count for parallel algorithms (0 = default pool).
    pub threads: usize,
    /// Ignore any cached warm-start matching.
    pub cold: bool,
}

impl SolveSpec {
    /// A spec with every option at its default (the same defaults
    /// `SOLVE <name>` parses to).
    pub fn new(name: impl Into<String>) -> SolveSpec {
        SolveSpec {
            name: name.into(),
            algorithm: Algorithm::MsBfsGraftParallel,
            timeout_ms: None,
            threads: 0,
            cold: false,
        }
    }

    /// The canonical argument list after the `SOLVE` verb (also a valid
    /// `SOLVE_BATCH` member line).
    pub fn wire_args(&self) -> String {
        let mut s = format!("{} {}", self.name, self.algorithm.cli_name());
        if let Some(ms) = self.timeout_ms {
            let _ = write!(s, " timeout_ms={ms}");
        }
        if self.threads != 0 {
            let _ = write!(s, " threads={}", self.threads);
        }
        if self.cold {
            s.push_str(" cold");
        }
        s
    }

    /// Parses `<name> [algorithm] [timeout_ms=N] [threads=N] [cold]`.
    fn parse<'a>(mut tokens: impl Iterator<Item = &'a str>) -> Result<SolveSpec, SvcError> {
        let name = tokens
            .next()
            .ok_or_else(|| bad("SOLVE needs <name> [algorithm] [options]"))?;
        let mut spec = SolveSpec::new(name);
        for (i, tok) in tokens.enumerate() {
            if let Some(v) = tok.strip_prefix("timeout_ms=") {
                spec.timeout_ms = Some(
                    v.parse()
                        .map_err(|_| bad(format!("bad timeout_ms `{v}`")))?,
                );
            } else if let Some(v) = tok.strip_prefix("threads=") {
                spec.threads = v.parse().map_err(|_| bad(format!("bad threads `{v}`")))?;
            } else if tok.eq_ignore_ascii_case("cold") {
                spec.cold = true;
            } else if i == 0 {
                spec.algorithm = Algorithm::parse(tok)
                    .ok_or_else(|| bad(format!("unknown algorithm `{tok}`")))?;
            } else {
                return Err(bad(format!("unknown SOLVE option `{tok}`")));
            }
        }
        Ok(spec)
    }
}

/// Everything an `UPDATE` carries after the verb. Shared between the
/// one-shot [`Request::Update`] and `UPDATE_BATCH` members
/// ([`BatchMember::Update`]), so both paths parse and execute
/// identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSpec {
    /// Registry name of the graph.
    pub name: String,
    /// `true` for `ADD`, `false` for `DEL`.
    pub add: bool,
    /// `X` endpoint of the edge.
    pub x: u32,
    /// `Y` endpoint of the edge.
    pub y: u32,
}

impl UpdateSpec {
    /// The canonical argument list after the `UPDATE` verb (also a valid
    /// `UPDATE_BATCH` member line).
    pub fn wire_args(&self) -> String {
        format!(
            "{} {} {} {}",
            self.name,
            if self.add { "ADD" } else { "DEL" },
            self.x,
            self.y
        )
    }

    /// Parses `<name> ADD|DEL <x> <y>` (rejecting trailing tokens — the
    /// shape is fixed).
    fn parse<'a>(mut tokens: impl Iterator<Item = &'a str>) -> Result<UpdateSpec, SvcError> {
        let usage = "UPDATE needs <name> ADD|DEL <x> <y>";
        let name = tokens.next().ok_or_else(|| bad(usage))?;
        let op = tokens.next().ok_or_else(|| bad(usage))?;
        let add = if op.eq_ignore_ascii_case("add") {
            true
        } else if op.eq_ignore_ascii_case("del") {
            false
        } else {
            return Err(bad(format!("bad update op `{op}` (want ADD or DEL)")));
        };
        let x = tokens.next().ok_or_else(|| bad(usage))?;
        let x = x.parse().map_err(|_| bad(format!("bad x `{x}`")))?;
        let y = tokens.next().ok_or_else(|| bad(usage))?;
        let y = y.parse().map_err(|_| bad(format!("bad y `{y}`")))?;
        if tokens.next().is_some() {
            return Err(bad("unexpected trailing tokens"));
        }
        Ok(UpdateSpec {
            name: name.to_string(),
            add,
            x,
            y,
        })
    }
}

/// One member of a `SOLVE_BATCH`: a solve, or a worker-occupying sleep
/// (the latter mirrors the `SLEEP` verb and exists for operational and
/// concurrency testing — e.g. holding the pool busy while `EVICT` or
/// `SHUTDOWN` land mid-batch).
#[derive(Clone, Debug, PartialEq)]
pub enum BatchMember {
    /// `<name> [algorithm] [options]` — scheduled like a one-shot `SOLVE`.
    Solve(SolveSpec),
    /// `<name> ADD|DEL <x> <y>` — scheduled like a one-shot `UPDATE`
    /// (only produced by [`parse_update_member`]).
    Update(UpdateSpec),
    /// `SLEEP <ms>` — scheduled like a one-shot `SLEEP`.
    Sleep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
}

impl BatchMember {
    /// The canonical member-line encoding; [`parse_batch_member`] (for
    /// solves and sleeps) or [`parse_update_member`] (for updates and
    /// sleeps) inverts it exactly.
    pub fn wire(&self) -> String {
        match self {
            BatchMember::Solve(spec) => spec.wire_args(),
            BatchMember::Update(spec) => spec.wire_args(),
            BatchMember::Sleep { ms } => format!("SLEEP {ms}"),
        }
    }
}

/// Parses one `SOLVE_BATCH` member line. The first token `SLEEP`
/// (case-insensitive) selects the sleep form; anything else is a graph
/// name starting a solve spec — which means a graph literally named
/// `sleep` cannot be batch-solved (rename it; the one-shot `SOLVE` still
/// works).
pub fn parse_batch_member(line: &str) -> Result<BatchMember, SvcError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(format!(
            "batch member line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    if line.contains('\0') {
        return Err(bad("NUL byte in batch member"));
    }
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut tokens = line.split_whitespace().peekable();
    match tokens.peek() {
        None => Err(bad("empty batch member")),
        Some(tok) if tok.eq_ignore_ascii_case("sleep") => {
            tokens.next();
            let ms = tokens.next().ok_or_else(|| bad("SLEEP needs <ms>"))?;
            let ms = ms.parse().map_err(|_| bad(format!("bad ms `{ms}`")))?;
            if tokens.next().is_some() {
                return Err(bad("unexpected trailing tokens"));
            }
            Ok(BatchMember::Sleep { ms })
        }
        Some(_) => Ok(BatchMember::Solve(SolveSpec::parse(tokens)?)),
    }
}

/// Parses one `UPDATE_BATCH` member line: the argument list of an
/// `UPDATE` (`<name> ADD|DEL <x> <y>`), or `SLEEP <ms>`. Same
/// hardening and `SLEEP` caveat as [`parse_batch_member`].
pub fn parse_update_member(line: &str) -> Result<BatchMember, SvcError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(format!(
            "batch member line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    if line.contains('\0') {
        return Err(bad("NUL byte in batch member"));
    }
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut tokens = line.split_whitespace().peekable();
    match tokens.peek() {
        None => Err(bad("empty batch member")),
        Some(tok) if tok.eq_ignore_ascii_case("sleep") => {
            tokens.next();
            let ms = tokens.next().ok_or_else(|| bad("SLEEP needs <ms>"))?;
            let ms = ms.parse().map_err(|_| bad(format!("bad ms `{ms}`")))?;
            if tokens.next().is_some() {
                return Err(bad("unexpected trailing tokens"));
            }
            Ok(BatchMember::Sleep { ms })
        }
        Some(_) => Ok(BatchMember::Update(UpdateSpec::parse(tokens)?)),
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a graph from a Matrix Market file.
    Load {
        /// Registry name.
        name: String,
        /// Path on the server's filesystem.
        path: String,
    },
    /// Register a graph from a graft-gen suite spec.
    Gen {
        /// Registry name.
        name: String,
        /// `<suite>[:<scale>]`, e.g. `kkt_power:tiny`.
        spec: String,
    },
    /// Solve for a maximum matching.
    Solve(SolveSpec),
    /// Header of a pipelined batch: exactly `count` member lines follow
    /// (see [`parse_batch_member`]), and the reply is `OK batch=<count>`
    /// followed by `count` reply lines in member order.
    SolveBatch {
        /// Number of member lines that follow (≤ [`MAX_BATCH`]).
        count: usize,
    },
    /// Apply one edge update to a graph's dynamic matching.
    Update(UpdateSpec),
    /// Header of a pipelined update batch: exactly `count` member lines
    /// follow (see [`parse_update_member`]), replied to like
    /// [`Request::SolveBatch`].
    UpdateBatch {
        /// Number of member lines that follow (≤ [`MAX_BATCH`]).
        count: usize,
    },
    /// One-line counter dump.
    Stats,
    /// Liveness/readiness probe: replies `OK state=<live|ready|draining>`
    /// and never touches the worker pool, so it stays responsive while
    /// the service is saturated or draining.
    Health,
    /// Stream the most recent trace events (all buffered when no limit).
    Trace {
        /// Maximum number of events to return.
        limit: Option<u64>,
    },
    /// Forget a graph (cache entry, warm matching, and source).
    Evict {
        /// Registry name.
        name: String,
    },
    /// Occupy a worker for the given duration (operational testing aid,
    /// in the spirit of Redis `DEBUG SLEEP`).
    Sleep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Stop accepting connections and exit once drained.
    Shutdown,
}

impl Request {
    /// The canonical wire encoding of this request — `parse_request`
    /// inverts it exactly (pinned by the protocol round-trip proptests).
    /// Only meaningful when names/paths/specs contain no whitespace or
    /// NUL, which the parser cannot produce anyway.
    pub fn wire(&self) -> String {
        match self {
            Request::Load { name, path } => format!("LOAD {name} {path}"),
            Request::Gen { name, spec } => format!("GEN {name} {spec}"),
            Request::Solve(spec) => format!("SOLVE {}", spec.wire_args()),
            Request::SolveBatch { count } => format!("SOLVE_BATCH {count}"),
            Request::Update(spec) => format!("UPDATE {}", spec.wire_args()),
            Request::UpdateBatch { count } => format!("UPDATE_BATCH {count}"),
            Request::Stats => "STATS".to_string(),
            Request::Health => "HEALTH".to_string(),
            Request::Trace { limit: None } => "TRACE".to_string(),
            Request::Trace { limit: Some(n) } => format!("TRACE {n}"),
            Request::Evict { name } => format!("EVICT {name}"),
            Request::Sleep { ms } => format!("SLEEP {ms}"),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// A parsed reply line (the client side of the protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `OK [payload]` — `payload` is the `key=value ...` body.
    Ok(String),
    /// `ERR <code> <message>`.
    Err {
        /// Stable machine-readable code ([`SvcError::code`]).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Reply {
    /// The wire encoding (no trailing newline).
    pub fn wire(&self) -> String {
        match self {
            Reply::Ok(payload) if payload.is_empty() => "OK".to_string(),
            Reply::Ok(payload) => format!("OK {payload}"),
            Reply::Err { code, message } => format!("ERR {code} {message}"),
        }
    }

    /// Parses a reply line; `None` when it is neither `OK ...` nor
    /// `ERR <code> ...`.
    pub fn parse(line: &str) -> Option<Reply> {
        if line == "OK" {
            return Some(Reply::Ok(String::new()));
        }
        if let Some(payload) = line.strip_prefix("OK ") {
            return Some(Reply::Ok(payload.to_string()));
        }
        let rest = line.strip_prefix("ERR ")?;
        let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
        if code.is_empty() {
            return None;
        }
        Some(Reply::Err {
            code: code.to_string(),
            message: message.to_string(),
        })
    }
}

fn bad(msg: impl Into<String>) -> SvcError {
    SvcError::BadRequest(msg.into())
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, SvcError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    if line.contains('\0') {
        return Err(bad("NUL byte in request"));
    }
    // Tolerate CRLF line endings from telnet-style clients.
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| bad("empty request"))?;
    let req = match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            let path = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            Request::Load {
                name: name.to_string(),
                path: path.to_string(),
            }
        }
        "GEN" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            let spec = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            Request::Gen {
                name: name.to_string(),
                spec: spec.to_string(),
            }
        }
        "SOLVE" => Request::Solve(SolveSpec::parse(tokens.by_ref())?),
        "SOLVE_BATCH" => {
            let n = tokens.next().ok_or_else(|| bad("SOLVE_BATCH needs <n>"))?;
            let count: usize = n
                .parse()
                .map_err(|_| bad(format!("bad batch count `{n}`")))?;
            if count > MAX_BATCH {
                return Err(bad(format!(
                    "batch count {count} exceeds the maximum {MAX_BATCH}"
                )));
            }
            Request::SolveBatch { count }
        }
        "UPDATE" => Request::Update(UpdateSpec::parse(tokens.by_ref())?),
        "UPDATE_BATCH" => {
            let n = tokens.next().ok_or_else(|| bad("UPDATE_BATCH needs <n>"))?;
            let count: usize = n
                .parse()
                .map_err(|_| bad(format!("bad batch count `{n}`")))?;
            if count > MAX_BATCH {
                return Err(bad(format!(
                    "batch count {count} exceeds the maximum {MAX_BATCH}"
                )));
            }
            Request::UpdateBatch { count }
        }
        "STATS" => Request::Stats,
        "HEALTH" => Request::Health,
        "TRACE" => {
            let limit = match tokens.next() {
                None => None,
                Some(n) => Some(
                    n.parse()
                        .map_err(|_| bad(format!("bad trace limit `{n}`")))?,
                ),
            };
            Request::Trace { limit }
        }
        "EVICT" => {
            let name = tokens.next().ok_or_else(|| bad("EVICT needs <name>"))?;
            Request::Evict {
                name: name.to_string(),
            }
        }
        "SLEEP" => {
            let ms = tokens.next().ok_or_else(|| bad("SLEEP needs <ms>"))?;
            Request::Sleep {
                ms: ms.parse().map_err(|_| bad(format!("bad ms `{ms}`")))?,
            }
        }
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(bad(format!("unknown command `{other}`"))),
    };
    // Commands with a fixed shape reject trailing garbage.
    if matches!(
        req,
        Request::Stats
            | Request::Health
            | Request::Shutdown
            | Request::Load { .. }
            | Request::Gen { .. }
            | Request::Trace { .. }
            | Request::SolveBatch { .. }
            | Request::UpdateBatch { .. }
    ) && tokens.next().is_some()
    {
        return Err(bad("unexpected trailing tokens"));
    }
    Ok(req)
}

/// Formats an error reply line (no trailing newline).
pub fn err_line(e: &SvcError) -> String {
    format!("ERR {} {e}", e.code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_options() {
        let req = parse_request("SOLVE g ms-bfs-graft timeout_ms=250 threads=2 cold").unwrap();
        assert_eq!(
            req,
            Request::Solve(SolveSpec {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(250),
                threads: 2,
                cold: true,
            })
        );
    }

    #[test]
    fn solve_defaults() {
        let req = parse_request("solve g").unwrap();
        assert_eq!(req, Request::Solve(SolveSpec::new("g")));
    }

    #[test]
    fn options_without_algorithm() {
        let req = parse_request("SOLVE g timeout_ms=5").unwrap();
        match req {
            Request::Solve(spec) => {
                assert_eq!(spec.algorithm, Algorithm::MsBfsGraftParallel);
                assert_eq!(spec.timeout_ms, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_solve_batch_header() {
        assert_eq!(
            parse_request("SOLVE_BATCH 8").unwrap(),
            Request::SolveBatch { count: 8 }
        );
        assert_eq!(
            parse_request("solve_batch 0").unwrap(),
            Request::SolveBatch { count: 0 }
        );
        assert_eq!(
            parse_request(&format!("SOLVE_BATCH {MAX_BATCH}")).unwrap(),
            Request::SolveBatch { count: MAX_BATCH }
        );
        for line in [
            "SOLVE_BATCH",
            "SOLVE_BATCH x",
            "SOLVE_BATCH -1",
            "SOLVE_BATCH 3 4",
            &format!("SOLVE_BATCH {}", MAX_BATCH + 1),
        ] {
            assert!(
                matches!(parse_request(line), Err(SvcError::BadRequest(_))),
                "line `{line}` should be rejected"
            );
        }
    }

    #[test]
    fn parses_batch_members() {
        assert_eq!(
            parse_batch_member("g ms-bfs-graft timeout_ms=9 cold").unwrap(),
            BatchMember::Solve(SolveSpec {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(9),
                threads: 0,
                cold: true,
            })
        );
        assert_eq!(
            parse_batch_member("g").unwrap(),
            BatchMember::Solve(SolveSpec::new("g"))
        );
        assert_eq!(
            parse_batch_member("SLEEP 25").unwrap(),
            BatchMember::Sleep { ms: 25 }
        );
        assert_eq!(
            parse_batch_member("sleep 0\r").unwrap(),
            BatchMember::Sleep { ms: 0 }
        );
        for line in [
            "",
            "   ",
            "g not-an-algorithm",
            "g hk pf",
            "SLEEP",
            "SLEEP abc",
            "SLEEP 1 2",
            "g\0",
        ] {
            assert!(
                matches!(parse_batch_member(line), Err(SvcError::BadRequest(_))),
                "member `{line}` should be rejected"
            );
        }
    }

    #[test]
    fn batch_member_wire_round_trips() {
        let members = [
            BatchMember::Solve(SolveSpec::new("g")),
            BatchMember::Solve(SolveSpec {
                name: "other".into(),
                algorithm: Algorithm::HopcroftKarp,
                timeout_ms: Some(7),
                threads: 3,
                cold: true,
            }),
            BatchMember::Sleep { ms: 12 },
        ];
        for m in members {
            let wire = m.wire();
            assert_eq!(parse_batch_member(&wire).unwrap(), m, "wire `{wire}`");
        }
    }

    #[test]
    fn parses_update_and_update_batch() {
        assert_eq!(
            parse_request("UPDATE g ADD 3 7").unwrap(),
            Request::Update(UpdateSpec {
                name: "g".into(),
                add: true,
                x: 3,
                y: 7,
            })
        );
        assert_eq!(
            parse_request("update g del 0 0\r").unwrap(),
            Request::Update(UpdateSpec {
                name: "g".into(),
                add: false,
                x: 0,
                y: 0,
            })
        );
        assert_eq!(
            parse_request("UPDATE_BATCH 5").unwrap(),
            Request::UpdateBatch { count: 5 }
        );
        for line in [
            "UPDATE",
            "UPDATE g",
            "UPDATE g ADD",
            "UPDATE g ADD 1",
            "UPDATE g FLIP 1 2",
            "UPDATE g ADD x 2",
            "UPDATE g ADD 1 y",
            "UPDATE g ADD -1 2",
            "UPDATE g ADD 1 2 3",
            "UPDATE_BATCH",
            "UPDATE_BATCH x",
            "UPDATE_BATCH 3 4",
            &format!("UPDATE_BATCH {}", MAX_BATCH + 1),
        ] {
            assert!(
                matches!(parse_request(line), Err(SvcError::BadRequest(_))),
                "line `{line}` should be rejected"
            );
        }
    }

    #[test]
    fn parses_update_members() {
        assert_eq!(
            parse_update_member("g ADD 1 2").unwrap(),
            BatchMember::Update(UpdateSpec {
                name: "g".into(),
                add: true,
                x: 1,
                y: 2,
            })
        );
        assert_eq!(
            parse_update_member("SLEEP 9").unwrap(),
            BatchMember::Sleep { ms: 9 }
        );
        for line in ["", "g", "g ADD", "g NOPE 1 2", "g ADD 1 2 3", "g ADD 1\0 2"] {
            assert!(
                matches!(parse_update_member(line), Err(SvcError::BadRequest(_))),
                "member `{line}` should be rejected"
            );
        }
        // An update member round-trips through wire().
        let m = BatchMember::Update(UpdateSpec {
            name: "g".into(),
            add: false,
            x: 4,
            y: 0,
        });
        assert_eq!(parse_update_member(&m.wire()).unwrap(), m);
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(
            parse_request("LOAD g /tmp/a.mtx").unwrap(),
            Request::Load {
                name: "g".into(),
                path: "/tmp/a.mtx".into()
            }
        );
        assert_eq!(
            parse_request("GEN g kkt_power:tiny").unwrap(),
            Request::Gen {
                name: "g".into(),
                spec: "kkt_power:tiny".into()
            }
        );
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("health").unwrap(), Request::Health);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("EVICT g").unwrap(),
            Request::Evict { name: "g".into() }
        );
        assert_eq!(
            parse_request("SLEEP 40").unwrap(),
            Request::Sleep { ms: 40 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "   ",
            "FROBNICATE",
            "LOAD onlyname",
            "GEN g",
            "SOLVE",
            "SOLVE g not-an-algorithm",
            "SOLVE g timeout_ms=abc",
            "SOLVE g ms-bfs-graft hk", // algorithm twice
            "SLEEP abc",
            "STATS now",
            "HEALTH check",
            "SHUTDOWN please",
        ] {
            let r = parse_request(line);
            assert!(
                matches!(r, Err(SvcError::BadRequest(_))),
                "line `{line}` gave {r:?}"
            );
        }
    }

    #[test]
    fn err_line_has_stable_code() {
        let e = SvcError::UnknownGraph("g".into());
        assert_eq!(err_line(&e), "ERR unknown-graph no graph named `g`");
    }

    #[test]
    fn parses_trace_with_and_without_limit() {
        assert_eq!(
            parse_request("TRACE").unwrap(),
            Request::Trace { limit: None }
        );
        assert_eq!(
            parse_request("trace 16").unwrap(),
            Request::Trace { limit: Some(16) }
        );
        for line in ["TRACE x", "TRACE 3 4", "TRACE -1"] {
            assert!(
                matches!(parse_request(line), Err(SvcError::BadRequest(_))),
                "line `{line}` should be rejected"
            );
        }
    }

    #[test]
    fn rejects_nul_and_oversized_lines() {
        assert!(matches!(
            parse_request("STATS\0"),
            Err(SvcError::BadRequest(_))
        ));
        let long = format!("LOAD g /{}", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse_request(&long), Err(SvcError::BadRequest(_))));
    }

    #[test]
    fn strips_carriage_return() {
        assert_eq!(parse_request("STATS\r").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("EVICT g\r").unwrap(),
            Request::Evict { name: "g".into() }
        );
    }

    #[test]
    fn wire_round_trips_each_variant() {
        let reqs = [
            Request::Load {
                name: "g".into(),
                path: "/tmp/a.mtx".into(),
            },
            Request::Gen {
                name: "g".into(),
                spec: "kkt_power:tiny".into(),
            },
            Request::Solve(SolveSpec {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(250),
                threads: 2,
                cold: true,
            }),
            Request::Solve(SolveSpec::new("g")),
            Request::SolveBatch { count: 16 },
            Request::Update(UpdateSpec {
                name: "g".into(),
                add: true,
                x: 5,
                y: 11,
            }),
            Request::Update(UpdateSpec {
                name: "g".into(),
                add: false,
                x: 0,
                y: 0,
            }),
            Request::UpdateBatch { count: 3 },
            Request::Stats,
            Request::Health,
            Request::Trace { limit: None },
            Request::Trace { limit: Some(9) },
            Request::Evict { name: "g".into() },
            Request::Sleep { ms: 40 },
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = req.wire();
            assert_eq!(parse_request(&wire).unwrap(), req, "wire `{wire}`");
        }
    }

    #[test]
    fn reply_parse_inverts_wire() {
        for reply in [
            Reply::Ok(String::new()),
            Reply::Ok("cardinality=5 warm=false".into()),
            Reply::Err {
                code: "bad-request".into(),
                message: "empty request".into(),
            },
        ] {
            assert_eq!(Reply::parse(&reply.wire()), Some(reply));
        }
        assert_eq!(Reply::parse("nonsense"), None);
        assert_eq!(Reply::parse("ERR "), None);
    }
}
