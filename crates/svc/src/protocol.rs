//! The newline-delimited wire protocol.
//!
//! One request per line, one reply line per request, UTF-8, no framing
//! beyond `\n` — scriptable with `nc`. Grammar (tokens split on
//! whitespace, `[]` optional):
//!
//! ```text
//! LOAD <name> <path.mtx>
//! GEN <name> <suite>[:<scale>]
//! SOLVE <name> [algorithm] [timeout_ms=N] [threads=N] [cold]
//! STATS
//! HEALTH
//! TRACE [n]
//! EVICT <name>
//! SLEEP <ms>
//! SHUTDOWN
//! ```
//!
//! Replies are `OK key=value ...` or `ERR <code> <message>`, where
//! `<code>` is [`SvcError::code`]. Keywords are case-insensitive;
//! names are case-sensitive. `TRACE` is the one multi-line reply: its
//! `OK events=N` line is followed by exactly `N` JSON trace-event lines
//! (the [`graft_core::trace`] schema, newest last).
//!
//! Hardening: a request line longer than [`MAX_LINE_BYTES`], containing a
//! NUL byte, or holding invalid UTF-8 is answered with a typed
//! `ERR bad-request` — never a panic, a hang, or a dropped connection.
//! Lines may end in `\r\n` (the `\r` is stripped).

use crate::error::SvcError;
use graft_core::Algorithm;
use std::fmt::Write as _;

/// Upper bound on one request line in bytes (newline excluded). Longer
/// lines are rejected with `ERR bad-request` and discarded up to the next
/// newline, keeping the connection usable.
pub const MAX_LINE_BYTES: usize = 8192;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a graph from a Matrix Market file.
    Load {
        /// Registry name.
        name: String,
        /// Path on the server's filesystem.
        path: String,
    },
    /// Register a graph from a graft-gen suite spec.
    Gen {
        /// Registry name.
        name: String,
        /// `<suite>[:<scale>]`, e.g. `kkt_power:tiny`.
        spec: String,
    },
    /// Solve for a maximum matching.
    Solve {
        /// Registry name of the graph.
        name: String,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// Per-job deadline, from now.
        timeout_ms: Option<u64>,
        /// Thread count for parallel algorithms (0 = default pool).
        threads: usize,
        /// Ignore any cached warm-start matching.
        cold: bool,
    },
    /// One-line counter dump.
    Stats,
    /// Liveness/readiness probe: replies `OK state=<live|ready|draining>`
    /// and never touches the worker pool, so it stays responsive while
    /// the service is saturated or draining.
    Health,
    /// Stream the most recent trace events (all buffered when no limit).
    Trace {
        /// Maximum number of events to return.
        limit: Option<u64>,
    },
    /// Forget a graph (cache entry, warm matching, and source).
    Evict {
        /// Registry name.
        name: String,
    },
    /// Occupy a worker for the given duration (operational testing aid,
    /// in the spirit of Redis `DEBUG SLEEP`).
    Sleep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Stop accepting connections and exit once drained.
    Shutdown,
}

impl Request {
    /// The canonical wire encoding of this request — `parse_request`
    /// inverts it exactly (pinned by the protocol round-trip proptests).
    /// Only meaningful when names/paths/specs contain no whitespace or
    /// NUL, which the parser cannot produce anyway.
    pub fn wire(&self) -> String {
        match self {
            Request::Load { name, path } => format!("LOAD {name} {path}"),
            Request::Gen { name, spec } => format!("GEN {name} {spec}"),
            Request::Solve {
                name,
                algorithm,
                timeout_ms,
                threads,
                cold,
            } => {
                let mut s = format!("SOLVE {name} {}", algorithm.cli_name());
                if let Some(ms) = timeout_ms {
                    let _ = write!(s, " timeout_ms={ms}");
                }
                if *threads != 0 {
                    let _ = write!(s, " threads={threads}");
                }
                if *cold {
                    s.push_str(" cold");
                }
                s
            }
            Request::Stats => "STATS".to_string(),
            Request::Health => "HEALTH".to_string(),
            Request::Trace { limit: None } => "TRACE".to_string(),
            Request::Trace { limit: Some(n) } => format!("TRACE {n}"),
            Request::Evict { name } => format!("EVICT {name}"),
            Request::Sleep { ms } => format!("SLEEP {ms}"),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// A parsed reply line (the client side of the protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `OK [payload]` — `payload` is the `key=value ...` body.
    Ok(String),
    /// `ERR <code> <message>`.
    Err {
        /// Stable machine-readable code ([`SvcError::code`]).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Reply {
    /// The wire encoding (no trailing newline).
    pub fn wire(&self) -> String {
        match self {
            Reply::Ok(payload) if payload.is_empty() => "OK".to_string(),
            Reply::Ok(payload) => format!("OK {payload}"),
            Reply::Err { code, message } => format!("ERR {code} {message}"),
        }
    }

    /// Parses a reply line; `None` when it is neither `OK ...` nor
    /// `ERR <code> ...`.
    pub fn parse(line: &str) -> Option<Reply> {
        if line == "OK" {
            return Some(Reply::Ok(String::new()));
        }
        if let Some(payload) = line.strip_prefix("OK ") {
            return Some(Reply::Ok(payload.to_string()));
        }
        let rest = line.strip_prefix("ERR ")?;
        let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
        if code.is_empty() {
            return None;
        }
        Some(Reply::Err {
            code: code.to_string(),
            message: message.to_string(),
        })
    }
}

fn bad(msg: impl Into<String>) -> SvcError {
    SvcError::BadRequest(msg.into())
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, SvcError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    if line.contains('\0') {
        return Err(bad("NUL byte in request"));
    }
    // Tolerate CRLF line endings from telnet-style clients.
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| bad("empty request"))?;
    let req = match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            let path = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            Request::Load {
                name: name.to_string(),
                path: path.to_string(),
            }
        }
        "GEN" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            let spec = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            Request::Gen {
                name: name.to_string(),
                spec: spec.to_string(),
            }
        }
        "SOLVE" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("SOLVE needs <name> [algorithm] [options]"))?;
            let mut algorithm = Algorithm::MsBfsGraftParallel;
            let mut timeout_ms = None;
            let mut threads = 0usize;
            let mut cold = false;
            for (i, tok) in tokens.by_ref().enumerate() {
                if let Some(v) = tok.strip_prefix("timeout_ms=") {
                    timeout_ms = Some(
                        v.parse()
                            .map_err(|_| bad(format!("bad timeout_ms `{v}`")))?,
                    );
                } else if let Some(v) = tok.strip_prefix("threads=") {
                    threads = v.parse().map_err(|_| bad(format!("bad threads `{v}`")))?;
                } else if tok.eq_ignore_ascii_case("cold") {
                    cold = true;
                } else if i == 0 {
                    algorithm = Algorithm::parse(tok)
                        .ok_or_else(|| bad(format!("unknown algorithm `{tok}`")))?;
                } else {
                    return Err(bad(format!("unknown SOLVE option `{tok}`")));
                }
            }
            Request::Solve {
                name: name.to_string(),
                algorithm,
                timeout_ms,
                threads,
                cold,
            }
        }
        "STATS" => Request::Stats,
        "HEALTH" => Request::Health,
        "TRACE" => {
            let limit = match tokens.next() {
                None => None,
                Some(n) => Some(
                    n.parse()
                        .map_err(|_| bad(format!("bad trace limit `{n}`")))?,
                ),
            };
            Request::Trace { limit }
        }
        "EVICT" => {
            let name = tokens.next().ok_or_else(|| bad("EVICT needs <name>"))?;
            Request::Evict {
                name: name.to_string(),
            }
        }
        "SLEEP" => {
            let ms = tokens.next().ok_or_else(|| bad("SLEEP needs <ms>"))?;
            Request::Sleep {
                ms: ms.parse().map_err(|_| bad(format!("bad ms `{ms}`")))?,
            }
        }
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(bad(format!("unknown command `{other}`"))),
    };
    // Commands with a fixed shape reject trailing garbage.
    if matches!(
        req,
        Request::Stats
            | Request::Health
            | Request::Shutdown
            | Request::Load { .. }
            | Request::Gen { .. }
            | Request::Trace { .. }
    ) && tokens.next().is_some()
    {
        return Err(bad("unexpected trailing tokens"));
    }
    Ok(req)
}

/// Formats an error reply line (no trailing newline).
pub fn err_line(e: &SvcError) -> String {
    format!("ERR {} {e}", e.code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_options() {
        let req = parse_request("SOLVE g ms-bfs-graft timeout_ms=250 threads=2 cold").unwrap();
        assert_eq!(
            req,
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(250),
                threads: 2,
                cold: true,
            }
        );
    }

    #[test]
    fn solve_defaults() {
        let req = parse_request("solve g").unwrap();
        assert_eq!(
            req,
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraftParallel,
                timeout_ms: None,
                threads: 0,
                cold: false,
            }
        );
    }

    #[test]
    fn options_without_algorithm() {
        let req = parse_request("SOLVE g timeout_ms=5").unwrap();
        match req {
            Request::Solve {
                algorithm,
                timeout_ms,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::MsBfsGraftParallel);
                assert_eq!(timeout_ms, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(
            parse_request("LOAD g /tmp/a.mtx").unwrap(),
            Request::Load {
                name: "g".into(),
                path: "/tmp/a.mtx".into()
            }
        );
        assert_eq!(
            parse_request("GEN g kkt_power:tiny").unwrap(),
            Request::Gen {
                name: "g".into(),
                spec: "kkt_power:tiny".into()
            }
        );
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("health").unwrap(), Request::Health);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("EVICT g").unwrap(),
            Request::Evict { name: "g".into() }
        );
        assert_eq!(
            parse_request("SLEEP 40").unwrap(),
            Request::Sleep { ms: 40 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "   ",
            "FROBNICATE",
            "LOAD onlyname",
            "GEN g",
            "SOLVE",
            "SOLVE g not-an-algorithm",
            "SOLVE g timeout_ms=abc",
            "SOLVE g ms-bfs-graft hk", // algorithm twice
            "SLEEP abc",
            "STATS now",
            "HEALTH check",
            "SHUTDOWN please",
        ] {
            let r = parse_request(line);
            assert!(
                matches!(r, Err(SvcError::BadRequest(_))),
                "line `{line}` gave {r:?}"
            );
        }
    }

    #[test]
    fn err_line_has_stable_code() {
        let e = SvcError::UnknownGraph("g".into());
        assert_eq!(err_line(&e), "ERR unknown-graph no graph named `g`");
    }

    #[test]
    fn parses_trace_with_and_without_limit() {
        assert_eq!(
            parse_request("TRACE").unwrap(),
            Request::Trace { limit: None }
        );
        assert_eq!(
            parse_request("trace 16").unwrap(),
            Request::Trace { limit: Some(16) }
        );
        for line in ["TRACE x", "TRACE 3 4", "TRACE -1"] {
            assert!(
                matches!(parse_request(line), Err(SvcError::BadRequest(_))),
                "line `{line}` should be rejected"
            );
        }
    }

    #[test]
    fn rejects_nul_and_oversized_lines() {
        assert!(matches!(
            parse_request("STATS\0"),
            Err(SvcError::BadRequest(_))
        ));
        let long = format!("LOAD g /{}", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse_request(&long), Err(SvcError::BadRequest(_))));
    }

    #[test]
    fn strips_carriage_return() {
        assert_eq!(parse_request("STATS\r").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("EVICT g\r").unwrap(),
            Request::Evict { name: "g".into() }
        );
    }

    #[test]
    fn wire_round_trips_each_variant() {
        let reqs = [
            Request::Load {
                name: "g".into(),
                path: "/tmp/a.mtx".into(),
            },
            Request::Gen {
                name: "g".into(),
                spec: "kkt_power:tiny".into(),
            },
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(250),
                threads: 2,
                cold: true,
            },
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraftParallel,
                timeout_ms: None,
                threads: 0,
                cold: false,
            },
            Request::Stats,
            Request::Health,
            Request::Trace { limit: None },
            Request::Trace { limit: Some(9) },
            Request::Evict { name: "g".into() },
            Request::Sleep { ms: 40 },
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = req.wire();
            assert_eq!(parse_request(&wire).unwrap(), req, "wire `{wire}`");
        }
    }

    #[test]
    fn reply_parse_inverts_wire() {
        for reply in [
            Reply::Ok(String::new()),
            Reply::Ok("cardinality=5 warm=false".into()),
            Reply::Err {
                code: "bad-request".into(),
                message: "empty request".into(),
            },
        ] {
            assert_eq!(Reply::parse(&reply.wire()), Some(reply));
        }
        assert_eq!(Reply::parse("nonsense"), None);
        assert_eq!(Reply::parse("ERR "), None);
    }
}
