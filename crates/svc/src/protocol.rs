//! The newline-delimited wire protocol.
//!
//! One request per line, one reply line per request, UTF-8, no framing
//! beyond `\n` — scriptable with `nc`. Grammar (tokens split on
//! whitespace, `[]` optional):
//!
//! ```text
//! LOAD <name> <path.mtx>
//! GEN <name> <suite>[:<scale>]
//! SOLVE <name> [algorithm] [timeout_ms=N] [threads=N] [cold]
//! STATS
//! EVICT <name>
//! SLEEP <ms>
//! SHUTDOWN
//! ```
//!
//! Replies are `OK key=value ...` or `ERR <code> <message>`, where
//! `<code>` is [`SvcError::code`]. Keywords are case-insensitive;
//! names are case-sensitive.

use crate::error::SvcError;
use graft_core::Algorithm;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a graph from a Matrix Market file.
    Load {
        /// Registry name.
        name: String,
        /// Path on the server's filesystem.
        path: String,
    },
    /// Register a graph from a graft-gen suite spec.
    Gen {
        /// Registry name.
        name: String,
        /// `<suite>[:<scale>]`, e.g. `kkt_power:tiny`.
        spec: String,
    },
    /// Solve for a maximum matching.
    Solve {
        /// Registry name of the graph.
        name: String,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// Per-job deadline, from now.
        timeout_ms: Option<u64>,
        /// Thread count for parallel algorithms (0 = default pool).
        threads: usize,
        /// Ignore any cached warm-start matching.
        cold: bool,
    },
    /// One-line counter dump.
    Stats,
    /// Forget a graph (cache entry, warm matching, and source).
    Evict {
        /// Registry name.
        name: String,
    },
    /// Occupy a worker for the given duration (operational testing aid,
    /// in the spirit of Redis `DEBUG SLEEP`).
    Sleep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Stop accepting connections and exit once drained.
    Shutdown,
}

fn bad(msg: impl Into<String>) -> SvcError {
    SvcError::BadRequest(msg.into())
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, SvcError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| bad("empty request"))?;
    let req = match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            let path = tokens
                .next()
                .ok_or_else(|| bad("LOAD needs <name> <path>"))?;
            Request::Load {
                name: name.to_string(),
                path: path.to_string(),
            }
        }
        "GEN" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            let spec = tokens
                .next()
                .ok_or_else(|| bad("GEN needs <name> <spec>"))?;
            Request::Gen {
                name: name.to_string(),
                spec: spec.to_string(),
            }
        }
        "SOLVE" => {
            let name = tokens
                .next()
                .ok_or_else(|| bad("SOLVE needs <name> [algorithm] [options]"))?;
            let mut algorithm = Algorithm::MsBfsGraftParallel;
            let mut timeout_ms = None;
            let mut threads = 0usize;
            let mut cold = false;
            for (i, tok) in tokens.by_ref().enumerate() {
                if let Some(v) = tok.strip_prefix("timeout_ms=") {
                    timeout_ms = Some(
                        v.parse()
                            .map_err(|_| bad(format!("bad timeout_ms `{v}`")))?,
                    );
                } else if let Some(v) = tok.strip_prefix("threads=") {
                    threads = v.parse().map_err(|_| bad(format!("bad threads `{v}`")))?;
                } else if tok.eq_ignore_ascii_case("cold") {
                    cold = true;
                } else if i == 0 {
                    algorithm = Algorithm::parse(tok)
                        .ok_or_else(|| bad(format!("unknown algorithm `{tok}`")))?;
                } else {
                    return Err(bad(format!("unknown SOLVE option `{tok}`")));
                }
            }
            Request::Solve {
                name: name.to_string(),
                algorithm,
                timeout_ms,
                threads,
                cold,
            }
        }
        "STATS" => Request::Stats,
        "EVICT" => {
            let name = tokens.next().ok_or_else(|| bad("EVICT needs <name>"))?;
            Request::Evict {
                name: name.to_string(),
            }
        }
        "SLEEP" => {
            let ms = tokens.next().ok_or_else(|| bad("SLEEP needs <ms>"))?;
            Request::Sleep {
                ms: ms.parse().map_err(|_| bad(format!("bad ms `{ms}`")))?,
            }
        }
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(bad(format!("unknown command `{other}`"))),
    };
    // Commands with a fixed shape reject trailing garbage.
    if matches!(
        req,
        Request::Stats | Request::Shutdown | Request::Load { .. } | Request::Gen { .. }
    ) && tokens.next().is_some()
    {
        return Err(bad("unexpected trailing tokens"));
    }
    Ok(req)
}

/// Formats an error reply line (no trailing newline).
pub fn err_line(e: &SvcError) -> String {
    format!("ERR {} {e}", e.code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_options() {
        let req = parse_request("SOLVE g ms-bfs-graft timeout_ms=250 threads=2 cold").unwrap();
        assert_eq!(
            req,
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraft,
                timeout_ms: Some(250),
                threads: 2,
                cold: true,
            }
        );
    }

    #[test]
    fn solve_defaults() {
        let req = parse_request("solve g").unwrap();
        assert_eq!(
            req,
            Request::Solve {
                name: "g".into(),
                algorithm: Algorithm::MsBfsGraftParallel,
                timeout_ms: None,
                threads: 0,
                cold: false,
            }
        );
    }

    #[test]
    fn options_without_algorithm() {
        let req = parse_request("SOLVE g timeout_ms=5").unwrap();
        match req {
            Request::Solve {
                algorithm,
                timeout_ms,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::MsBfsGraftParallel);
                assert_eq!(timeout_ms, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(
            parse_request("LOAD g /tmp/a.mtx").unwrap(),
            Request::Load {
                name: "g".into(),
                path: "/tmp/a.mtx".into()
            }
        );
        assert_eq!(
            parse_request("GEN g kkt_power:tiny").unwrap(),
            Request::Gen {
                name: "g".into(),
                spec: "kkt_power:tiny".into()
            }
        );
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("EVICT g").unwrap(),
            Request::Evict { name: "g".into() }
        );
        assert_eq!(
            parse_request("SLEEP 40").unwrap(),
            Request::Sleep { ms: 40 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "   ",
            "FROBNICATE",
            "LOAD onlyname",
            "GEN g",
            "SOLVE",
            "SOLVE g not-an-algorithm",
            "SOLVE g timeout_ms=abc",
            "SOLVE g ms-bfs-graft hk", // algorithm twice
            "SLEEP abc",
            "STATS now",
            "SHUTDOWN please",
        ] {
            let r = parse_request(line);
            assert!(
                matches!(r, Err(SvcError::BadRequest(_))),
                "line `{line}` gave {r:?}"
            );
        }
    }

    #[test]
    fn err_line_has_stable_code() {
        let e = SvcError::UnknownGraph("g".into());
        assert_eq!(err_line(&e), "ERR unknown-graph no graph named `g`");
    }
}
