//! A byte-budgeted least-recently-used cache.
//!
//! The registry keeps parsed graphs in one of these so a resident server
//! bounds its memory: every entry carries a byte cost, and inserting past
//! the budget evicts the least-recently-touched entries until the new
//! entry fits. Recency is tracked with a monotonic touch counter rather
//! than an intrusive list — the registry holds tens of graphs, not
//! millions, so the `O(n)` eviction scan is noise next to a single parse.
//!
//! A single entry larger than the whole budget is still admitted (the
//! cache holds just that entry); rejecting it would make big graphs
//! unusable rather than merely uncached.

use std::collections::HashMap;

/// Hit/miss/eviction counters, readable while the cache lives behind a
/// lock (the service copies them out for `STATS`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Total `get`/`get_mut` calls; always equals `hits + misses`, which
    /// makes reconciliation checks against `STATS` output trivial.
    pub lookups: u64,
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries pushed out by the byte budget (explicit `remove`s are not
    /// counted).
    pub evictions: u64,
    /// Entries inserted (including replacements).
    pub insertions: u64,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    last_use: u64,
}

/// The cache. Not internally synchronized; wrap it in a `Mutex`.
pub struct LruCache<V> {
    entries: HashMap<String, Entry<V>>,
    budget_bytes: usize,
    used_bytes: usize,
    tick: u64,
    stats: LruStats,
}

impl<V> LruCache<V> {
    /// An empty cache that evicts past `budget_bytes`.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            stats: LruStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `name`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, name: &str) -> Option<&V> {
        let tick = self.next_tick();
        self.stats.lookups += 1;
        match self.entries.get_mut(name) {
            Some(e) => {
                e.last_use = tick;
                self.stats.hits += 1;
                Some(&e.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Mutable lookup with the same recency/counter behavior as [`get`].
    ///
    /// [`get`]: Self::get
    pub fn get_mut(&mut self, name: &str) -> Option<&mut V> {
        let tick = self.next_tick();
        self.stats.lookups += 1;
        match self.entries.get_mut(name) {
            Some(e) => {
                e.last_use = tick;
                self.stats.hits += 1;
                Some(&mut e.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `name` is cached, without touching recency or counters.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Looks up `name` without touching recency or counters. Observers
    /// (snapshots, diagnostics) use this so reading the cache does not
    /// distort the eviction order they are reading.
    pub fn peek(&self, name: &str) -> Option<&V> {
        self.entries.get(name).map(|e| &e.value)
    }

    /// Inserts (or replaces) `name`, then evicts least-recently-used
    /// entries until the budget holds again. Returns the names evicted.
    pub fn insert(&mut self, name: String, value: V, bytes: usize) -> Vec<String> {
        let tick = self.next_tick();
        if let Some(old) = self.entries.insert(
            name.clone(),
            Entry {
                value,
                bytes,
                last_use: tick,
            },
        ) {
            self.used_bytes -= old.bytes;
        }
        self.used_bytes += bytes;
        self.stats.insertions += 1;

        let mut evicted = Vec::new();
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            // Oldest entry that is not the one just inserted.
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != name)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = self.entries.remove(&k).expect("victim vanished");
                    self.used_bytes -= e.bytes;
                    self.stats.evictions += 1;
                    evicted.push(k);
                }
                None => break,
            }
        }
        evicted
    }

    /// Removes `name` (not counted as an eviction). Returns the value.
    pub fn remove(&mut self, name: &str) -> Option<V> {
        self.entries.remove(name).map(|e| {
            self.used_bytes -= e.bytes;
            e.value
        })
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently accounted to cached entries.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// A copy of the counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        assert!(c.get("a").is_none());
        c.insert("a".into(), 1, 10);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.get("a"), Some(&1));
        assert!(c.get("b").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 2, 1));
        assert_eq!(s.lookups, s.hits + s.misses);
    }

    #[test]
    fn lookups_always_reconcile_with_hits_plus_misses() {
        let mut c: LruCache<u32> = LruCache::new(25);
        for i in 0..50u32 {
            let name = format!("g{}", i % 7);
            if i % 3 == 0 {
                c.insert(name, i, 10);
            } else if i % 5 == 0 {
                c.remove(&name);
            } else {
                let _ = c.get(&name);
                let _ = c.get_mut(&name);
            }
            let s = c.stats();
            assert_eq!(s.lookups, s.hits + s.misses, "after step {i}");
        }
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c: LruCache<u32> = LruCache::new(30);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        c.insert("c".into(), 3, 10);
        // Touch `a` so `b` is now the oldest.
        assert!(c.get("a").is_some());
        let evicted = c.insert("d".into(), 4, 10);
        assert_eq!(evicted, vec!["b".to_string()]);
        assert!(c.contains("a") && c.contains("c") && c.contains("d"));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn eviction_cascades_until_budget_holds() {
        let mut c: LruCache<u32> = LruCache::new(25);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        let evicted = c.insert("big".into(), 3, 20);
        // 40 bytes > 25: both old entries must go.
        assert_eq!(evicted.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 20);
    }

    #[test]
    fn oversized_entry_is_admitted_alone() {
        let mut c: LruCache<u32> = LruCache::new(10);
        c.insert("a".into(), 1, 5);
        let evicted = c.insert("huge".into(), 2, 100);
        assert_eq!(evicted, vec!["a".to_string()]);
        assert!(c.contains("huge"));
        assert_eq!(c.used_bytes(), 100); // over budget, by design
        let evicted = c.insert("next".into(), 3, 5);
        assert_eq!(evicted, vec!["huge".to_string()]);
    }

    #[test]
    fn replacement_updates_byte_accounting() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.insert("a".into(), 1, 40);
        c.insert("a".into(), 2, 15);
        assert_eq!(c.used_bytes(), 15);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a"), Some(&2));
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.insert("a".into(), 1, 40);
        assert_eq!(c.remove("a"), Some(1));
        assert_eq!(c.remove("a"), None);
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().evictions, 0);
    }
}
