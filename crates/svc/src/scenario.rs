//! Deterministic whole-service simulation scenarios.
//!
//! A [`Scenario`] boots a real [`Server`] on a virtual clock
//! ([`graft_sim::SimClock`]) and an in-process network
//! ([`graft_sim::SimNet`]), drives a seeded client workload —
//! `GEN`/`SOLVE`/`SOLVE_BATCH`/`UPDATE`/`EVICT`/`STATS`/`HEALTH`/
//! `SLEEP`/`SHUTDOWN` interleaved with network partitions, injected
//! faults, and a drain-under-load finale — and records every request
//! and reply line into an event log.
//!
//! The contract, FoundationDB-style: **the same seed produces the same
//! log, byte for byte**. Every source of nondeterminism is pinned:
//!
//! * time is virtual — sleeps, backoff, deadlines, and drain timers
//!   advance a seeded [`SimClock`] instead of the wall clock, and the
//!   scenario keeps at most one thread sleeping at a time (one worker,
//!   a strictly request/reply client, no snapshot poller);
//! * bytes travel through a [`SimNet`] whose connect latency and link
//!   faults are pure functions of the seed;
//! * injected service faults ([`crate::FaultPlan`]) and client backoff
//!   jitter are already seed-derived;
//! * the one timing readout that is *not* a pure function of the seed
//!   (`uptime_us` in `STATS`) is normalized out of the log.
//!
//! A failing seed is therefore a bug report you can replay forever:
//! `graftmatch sim --seed N` reproduces the identical run.
//!
//! [`SimClock`]: graft_sim::SimClock
//! [`SimNet`]: graft_sim::SimNet

use crate::client::{RetryClient, RetryPolicy};
use crate::journal::FsyncPolicy;
use crate::metrics::Metrics;
use crate::server::{ServeConfig, Server};
use crate::snapshot;
use graft_sim::{
    mix64, Clock, Disk, RealDisk, SimClock, SimDisk, SimDiskConfig, SimNet, SimNetConfig, Transport,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Knobs for one simulated run. Everything observable is a pure
/// function of `seed` and these knobs.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed: workload shape, network latency, fault schedule,
    /// and client backoff jitter all derive from it.
    pub seed: u64,
    /// Workload steps after the fixed prologue (graph registration) and
    /// before the fixed epilogue (final solves, drain-under-load,
    /// shutdown).
    pub ops: usize,
    /// Upper bound on simulated connect latency, in virtual ms.
    pub max_connect_latency_ms: u64,
    /// Arm the server's seed-derived fault plan (panics, delays, I/O
    /// errors at named sites).
    pub with_faults: bool,
    /// Deliberately break the drain grace period (see
    /// [`ServeConfig::broken_drain_timer`]); the scenario then reports a
    /// `drain-timeout` violation. Exists to prove the harness catches
    /// and replays an injected timing bug.
    pub broken_drain_timer: bool,
    /// Give the server a seeded [`SimDisk`] (`--fsync always`, write
    /// faults derived from the master seed) and, after shutdown,
    /// power-cut the disk and verify the journal recovers cleanly. Off
    /// disables persistence entirely (the pre-disk scenario shape).
    pub disk_faults: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ops: 48,
            max_connect_latency_ms: 3,
            with_faults: true,
            broken_drain_timer: false,
            disk_faults: true,
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The seed the run derived everything from.
    pub seed: u64,
    /// The full event log: one `> request` / `< reply` pair per
    /// exchange, newline-terminated. Byte-identical across runs of the
    /// same seed and config.
    pub log: String,
    /// Invariant violations observed; empty on a healthy run.
    pub violations: Vec<String>,
    /// Client requests issued (retries not included).
    pub requests: u64,
}

impl ScenarioReport {
    /// Whether the run upheld every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sequential splitmix64 stream: the workload's only source of
/// randomness, so a seed names the entire run.
struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0x5ce4_a897_1b2c_3d4e),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The two graphs every scenario registers. Different generators so
/// warm-start and eviction behavior differ between them.
const GRAPHS: [(&str, &str); 2] = [("ga", "kkt_power:tiny"), ("gb", "amazon0312:tiny")];

/// Where the simulated disk keeps the journal (a path inside the
/// in-memory filesystem; nothing touches the real one).
const SIM_STATE_DIR: &str = "sim-state";

/// A seeded end-to-end run of the whole service stack under simulation.
pub struct Scenario {
    cfg: ScenarioConfig,
}

/// Everything the run accumulates.
struct RunState {
    log: String,
    violations: Vec<String>,
    requests: u64,
    /// Per-graph maximum-matching cardinality oracle: `SOLVE` must
    /// report the same cardinality every time (updates touch the
    /// dynamic matcher, never the registered graph; warm starts cannot
    /// change the maximum).
    expected_cardinality: [Option<u64>; GRAPHS.len()],
}

impl RunState {
    fn record(&mut self, request: &str, reply: &str) {
        self.log.push_str("> ");
        self.log.push_str(request);
        self.log.push('\n');
        self.log.push_str("< ");
        self.log.push_str(&normalize(reply));
        self.log.push('\n');
    }

    fn violation(&mut self, v: String) {
        self.violations.push(v);
    }

    /// Feeds one `SOLVE` reply to the cardinality oracle.
    fn check_cardinality(&mut self, graph_idx: usize, reply: &str) {
        let Some(card) = field(reply, "cardinality=") else {
            return;
        };
        match self.expected_cardinality[graph_idx] {
            None => self.expected_cardinality[graph_idx] = Some(card),
            Some(expect) if expect != card => self.violation(format!(
                "cardinality-drift graph={} expect={expect} got={card}",
                GRAPHS[graph_idx].0
            )),
            Some(_) => {}
        }
    }
}

/// Extracts a `key=<u64>` field from a reply line.
fn field(reply: &str, key: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .and_then(|v| v.parse().ok())
}

/// Masks the few reply fields that sample *cross-thread* timing.
///
/// Virtual time makes single-threaded timing exact, but a timestamp
/// taken on one thread and compared on another (queue-wait sums, the
/// elapsed duration in a deadline error, server uptime) races against
/// the worker's virtual-time jumps, so those values — and only those —
/// are normalized out of the log. `connections_open` is in the list
/// because a partition's severed connection decrements it from the
/// dying reader thread, which races (in real time) against the next
/// `STATS` on the healed connection.
fn normalize(reply: &str) -> String {
    if let Some(idx) = reply.find("deadline exceeded after ") {
        let prefix = &reply[..idx + "deadline exceeded after ".len()];
        return format!("{prefix}_");
    }
    reply
        .split(' ')
        .map(|tok| match tok.split_once('=') {
            Some((key @ ("uptime_us" | "wait_us_sum" | "connections_open"), _)) => {
                format!("{key}=_")
            }
            _ => tok.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

impl Scenario {
    /// A scenario for `cfg`.
    pub fn new(cfg: ScenarioConfig) -> Self {
        Self { cfg }
    }

    /// Convenience: a default-config scenario for `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        })
    }

    /// Runs the scenario to completion and reports.
    pub fn run(&self) -> ScenarioReport {
        let seed = self.cfg.seed;
        let clock = Arc::new(SimClock::new());
        let net = SimNet::new(
            SimNetConfig {
                seed,
                max_connect_latency_ms: self.cfg.max_connect_latency_ms,
                ..SimNetConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        // The disk dimension: a seeded in-memory filesystem whose write
        // faults (and eventual power cut) are pure functions of the
        // seed. `--fsync always` so every acked UPDATE claims
        // durability — the post-run crash check holds it to that.
        let sim_disk = self.cfg.disk_faults.then(|| {
            SimDisk::new(SimDiskConfig {
                seed: mix64(seed ^ 0xd15c),
                fail_rate_pct: 4,
                max_faults: 6,
                crash_at: None,
            })
        });
        let serve_cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            // One worker and no snapshot poller: the determinism
            // contract allows at most one sleeping thread at a time.
            // (`fsync: Always` keeps the poller unspawned even with a
            // state dir.)
            workers: 1,
            queue_capacity: 16,
            drain_ms: 2_000,
            snapshot_interval_ms: 0,
            state_dir: sim_disk.as_ref().map(|_| PathBuf::from(SIM_STATE_DIR)),
            fsync: FsyncPolicy::Always,
            fault_spec: self
                .cfg
                .with_faults
                .then(|| format!("seed={},rate=8,max=16", mix64(seed ^ 0xfa_17))),
            broken_drain_timer: self.cfg.broken_drain_timer,
            ..ServeConfig::default()
        };
        let disk: Arc<dyn Disk> = match &sim_disk {
            Some(d) => Arc::clone(d) as Arc<dyn Disk>,
            None => Arc::new(RealDisk),
        };
        let server = Server::bind_with_disk(
            &serve_cfg,
            Arc::clone(&net) as Arc<dyn Transport>,
            Arc::clone(&clock) as Arc<dyn Clock>,
            disk,
        )
        .expect("sim bind cannot fail");
        let addr = server.local_addr().expect("sim local addr");
        let metrics = server.metrics();
        let server_thread = std::thread::spawn(move || server.run());

        let mut client = RetryClient::with_transport(
            addr.to_string(),
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                // Real-time safety net only; simulated flows complete
                // via data arrival or pipe closure.
                io_timeout: Duration::from_secs(10),
                seed,
            },
            Arc::clone(&net) as Arc<dyn Transport>,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        let mut rng = WorkloadRng::new(seed);
        let mut st = RunState {
            log: String::new(),
            violations: Vec::new(),
            requests: 0,
            expected_cardinality: [None; GRAPHS.len()],
        };

        // Prologue: register both graphs.
        for (name, spec) in GRAPHS {
            exchange(&mut client, &mut st, &format!("GEN {name} {spec}"));
        }

        // Seeded workload.
        for _ in 0..self.cfg.ops {
            let g = rng.below(GRAPHS.len() as u64) as usize;
            let gname = GRAPHS[g].0;
            match rng.below(100) {
                // Plain solve, sometimes cold.
                0..=29 => {
                    let cold = if rng.below(4) == 0 { " cold" } else { "" };
                    let reply = exchange(&mut client, &mut st, &format!("SOLVE {gname}{cold}"));
                    st.check_cardinality(g, &reply);
                }
                // Pipelined batch mixing solves, virtual sleeps, and
                // (sometimes) a deadline that expires behind the sleep.
                30..=44 => {
                    let mut members = Vec::new();
                    members.push(format!("SLEEP {}", 5 + rng.below(40)));
                    if rng.below(3) == 0 {
                        // Queued behind the sleep, this deadline expires
                        // in virtual time: a deterministic timeout.
                        members.push(format!("{gname} timeout_ms=1"));
                    }
                    members.push(gname.to_string());
                    batch(&mut client, &mut st, &members);
                }
                // Edge updates against the dynamic matcher.
                45..=69 => {
                    let op = if rng.below(3) == 0 { "DEL" } else { "ADD" };
                    let x = rng.below(1_000);
                    let y = rng.below(1_000);
                    exchange(
                        &mut client,
                        &mut st,
                        &format!("UPDATE {gname} {op} {x} {y}"),
                    );
                }
                // Evict, then immediately re-register from the same
                // source so later solves (and the oracle) keep working.
                70..=77 => {
                    exchange(&mut client, &mut st, &format!("EVICT {gname}"));
                    exchange(
                        &mut client,
                        &mut st,
                        &format!("GEN {gname} {}", GRAPHS[g].1),
                    );
                }
                78..=85 => {
                    exchange(&mut client, &mut st, "STATS");
                }
                86..=91 => {
                    exchange(&mut client, &mut st, "HEALTH");
                }
                92..=95 => {
                    let ms = 5 + rng.below(45);
                    exchange(&mut client, &mut st, &format!("SLEEP {ms}"));
                }
                // Partition window: sever the network, watch a request
                // fail deterministically, heal synchronously (this
                // thread is the only healer — no timer thread).
                _ => {
                    net.partition();
                    st.requests += 1;
                    match client.request(&format!("SOLVE {gname}")) {
                        Ok(reply) => {
                            st.record("SOLVE@partition", &reply);
                            st.violation(format!(
                                "partition-leak: reply crossed a severed network: {reply}"
                            ));
                        }
                        Err(e) => st.record("SOLVE@partition", &format!("CLIENT_ERR {e}")),
                    }
                    net.heal();
                }
            }
        }

        // Epilogue: one final solve per graph feeds the oracle, then a
        // drain-under-load finale: park a SLEEP job on the worker via a
        // side connection and shut down while it is genuinely in flight.
        // A healthy drain waits it out; a broken drain timer abandons
        // it, which the post-run invariants catch.
        for (i, (name, _)) in GRAPHS.iter().enumerate() {
            let reply = exchange(&mut client, &mut st, &format!("SOLVE {name}"));
            st.check_cardinality(i, &reply);
        }
        exchange(&mut client, &mut st, "STATS");

        // Connect the side channel *before* pinning the timeline (its
        // connect-latency sleep must be free to self-advance), then pin
        // time so the worker's upcoming 300ms virtual sleep parks
        // instead of completing instantly. The pin sits at +5ms —
        // beyond any connect latency (≤ max_connect_latency_ms), short
        // of the job's sleep — so the shutdown wake-up connect still
        // goes through while the job stays in flight.
        let mut side = net
            .connect(&addr.to_string(), None)
            .expect("side connection");
        let pin = clock.hold(Duration::from_millis(5));
        side.write_all(b"SLEEP 300\n").expect("side write");
        side.flush().expect("side flush");
        // Rendezvous on clock state, not on time: wait (without
        // sleeping) until the worker is parked inside its virtual
        // sleep. Bounded by a generous real-time budget so a
        // regression fails instead of hanging.
        let budget = std::time::Instant::now();
        while clock.pending_timers() < 2 {
            assert!(
                budget.elapsed() < Duration::from_secs(30),
                "side SLEEP job never reached a worker's clock.sleep"
            );
            std::thread::yield_now();
        }

        exchange(&mut client, &mut st, "SHUTDOWN");
        if self.cfg.broken_drain_timer {
            // Keep the job parked until the (zero-grace) drain has
            // demonstrably given up: the server thread exits first.
            let _ = server_thread.join().expect("server thread");
            drop(pin);
        } else {
            // Release the job; the drain waits for it and succeeds.
            drop(pin);
            let _ = server_thread.join().expect("server thread");
        }
        drop(client);
        drop(side);

        // Power-cut the simulated disk and recover: whatever the run's
        // fault schedule did to the journal, a restart must come back
        // clean. The summary line keeps the log sensitive to the whole
        // durability path — same seed, same bytes on disk.
        if let Some(d) = &sim_disk {
            let image = d.crash();
            match snapshot::load_on(image.as_ref(), Path::new(SIM_STATE_DIR), None) {
                Ok(report) => {
                    use std::fmt::Write as _;
                    let _ = writeln!(
                        st.log,
                        "# crash-recovery entries={} deltas={} rebuilds={} truncated={} \
                         disk_ops={} disk_faults={}",
                        report.snapshot.entries.len(),
                        report.snapshot.deltas.len(),
                        report.snapshot.rebuilds,
                        report.truncated.is_some(),
                        d.op_count(),
                        d.faults_fired(),
                    );
                }
                Err(e) => st.violation(format!("crash-recovery-failed: {e}")),
            }
        }

        // Post-run invariants, read straight off the server's metrics.
        self.check_invariants(&metrics, &mut st);

        ScenarioReport {
            seed,
            log: std::mem::take(&mut st.log),
            violations: std::mem::take(&mut st.violations),
            requests: st.requests,
        }
    }

    fn check_invariants(&self, metrics: &Metrics, st: &mut RunState) {
        let drain_timeouts = metrics.drain_timeouts.load(Ordering::Relaxed);
        if drain_timeouts > 0 {
            st.violation(format!(
                "drain-timeout: {drain_timeouts} drain(s) abandoned in-flight jobs"
            ));
        }
        // Every accepted job must be accounted for: completed, or
        // abandoned by a drain that already registered as a violation.
        let submitted = metrics.jobs_submitted.load(Ordering::Relaxed);
        let completed = metrics.jobs_completed.load(Ordering::Relaxed);
        if drain_timeouts == 0 && submitted != completed {
            st.violation(format!(
                "job-leak: submitted={submitted} completed={completed}"
            ));
        }
    }
}

/// One logged request/reply exchange on the retry client.
fn exchange(client: &mut RetryClient, st: &mut RunState, line: &str) -> String {
    st.requests += 1;
    match client.request(line) {
        Ok(reply) => {
            st.record(line, &reply);
            reply
        }
        Err(e) => {
            let rendered = format!("CLIENT_ERR {e}");
            st.record(line, &rendered);
            rendered
        }
    }
}

/// One logged `SOLVE_BATCH` exchange; every member reply is recorded.
fn batch(client: &mut RetryClient, st: &mut RunState, members: &[String]) {
    st.requests += 1;
    let header = format!("SOLVE_BATCH {}", members.len());
    match client.request_batch(members) {
        Ok(replies) => {
            for (m, r) in members.iter().zip(&replies) {
                st.record(&format!("{header} :: {m}"), r);
            }
        }
        Err(e) => st.record(&header, &format!("CLIENT_ERR {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_twice_is_byte_identical() {
        let a = Scenario::from_seed(7).run();
        let b = Scenario::from_seed(7).run();
        assert_eq!(a.log, b.log, "seed 7 diverged between runs");
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert!(
            a.log.contains("# crash-recovery "),
            "disk crash check missing from the log"
        );
    }

    #[test]
    fn disk_faults_off_runs_without_persistence() {
        let report = Scenario::new(ScenarioConfig {
            seed: 3,
            disk_faults: false,
            ..ScenarioConfig::default()
        })
        .run();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(!report.log.contains("# crash-recovery "));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Scenario::from_seed(1).run();
        let b = Scenario::from_seed(2).run();
        assert_ne!(a.log, b.log, "seeds 1 and 2 produced identical runs");
    }

    #[test]
    fn broken_drain_timer_is_caught_and_replays() {
        let cfg = ScenarioConfig {
            seed: 11,
            broken_drain_timer: true,
            ..ScenarioConfig::default()
        };
        let first = Scenario::new(cfg.clone()).run();
        assert!(
            first
                .violations
                .iter()
                .any(|v| v.starts_with("drain-timeout")),
            "injected drain bug not caught: {:?}",
            first.violations
        );
        // The failure replays byte-for-byte from its seed.
        let replay = Scenario::new(cfg).run();
        assert_eq!(first.log, replay.log, "failing seed 11 did not replay");
        assert_eq!(first.violations, replay.violations);
        // And the same seed with the bug fixed is healthy.
        let fixed = Scenario::new(ScenarioConfig {
            seed: 11,
            broken_drain_timer: false,
            ..ScenarioConfig::default()
        })
        .run();
        assert!(fixed.ok(), "violations: {:?}", fixed.violations);
    }
}
