//! The service's typed error vocabulary.
//!
//! Every failure a client can observe maps to one variant, and every
//! variant maps to a stable wire code (the first token after `ERR`), so
//! clients can dispatch on kind without parsing prose. Two variants carry
//! machine-readable tokens in their prose as well: `Overloaded` embeds
//! `retry_after_ms=N` (clients back off that long before retrying) and
//! `Internal` embeds `job=<id>` (operators can grep the id in server
//! traces).

use std::time::Duration;

/// Errors surfaced by the registry, scheduler, and protocol layers.
#[derive(Debug)]
pub enum SvcError {
    /// The job queue is full; the client should back off and retry.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
        /// Server-suggested backoff before retrying, scaled to the
        /// current queue depth.
        retry_after_ms: u64,
    },
    /// The server is shutting down (or draining) and accepts no new jobs.
    ShuttingDown,
    /// The job's deadline passed before the solve completed (or before it
    /// started).
    DeadlineExceeded {
        /// How long the job had been in the system when it was cut off.
        elapsed: Duration,
    },
    /// No graph with this name is registered.
    UnknownGraph(String),
    /// Loading or generating a graph failed (bad file, unknown spec, …).
    Load(String),
    /// The request line could not be parsed.
    BadRequest(String),
    /// The request was refused by admission control: materializing the
    /// graph would exceed the per-graph byte budget.
    TooLarge {
        /// Estimated CSR bytes the graph would occupy.
        estimated: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The job panicked inside a worker. The panic was contained: the
    /// worker survived and only this job failed.
    Internal {
        /// Scheduler-assigned job id, for correlating with server traces.
        job: u64,
    },
    /// The update was applied in memory but could not be made durable
    /// (journal append/fsync failed under `--fsync always`). The ack is
    /// withheld because ack must imply durable in that mode.
    Durability(String),
}

impl SvcError {
    /// Stable machine-readable code, the first token of an `ERR` reply.
    pub fn code(&self) -> &'static str {
        match self {
            SvcError::Overloaded { .. } => "overloaded",
            SvcError::ShuttingDown => "shutting-down",
            SvcError::DeadlineExceeded { .. } => "deadline",
            SvcError::UnknownGraph(_) => "unknown-graph",
            SvcError::Load(_) => "load",
            SvcError::BadRequest(_) => "bad-request",
            SvcError::TooLarge { .. } => "too-large",
            SvcError::Internal { .. } => "internal",
            SvcError::Durability(_) => "durability",
        }
    }

    /// Whether a client can expect the same request to succeed later
    /// without changing it (the retrying client uses this to decide
    /// between backing off and giving up).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SvcError::Overloaded { .. } | SvcError::Internal { .. } | SvcError::Durability(_)
        )
    }
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Overloaded {
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "job queue full (capacity {capacity}) retry_after_ms={retry_after_ms}"
                )
            }
            SvcError::ShuttingDown => write!(f, "server is shutting down"),
            SvcError::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {:?}", elapsed)
            }
            SvcError::UnknownGraph(name) => write!(f, "no graph named `{name}`"),
            SvcError::Load(msg) => write!(f, "{msg}"),
            SvcError::BadRequest(msg) => write!(f, "{msg}"),
            SvcError::TooLarge { estimated, limit } => {
                write!(
                    f,
                    "graph would need ~{estimated} bytes, over the {limit}-byte admission limit"
                )
            }
            SvcError::Internal { job } => {
                write!(f, "job={job} panicked in a worker; the worker survived")
            }
            SvcError::Durability(msg) => {
                write!(f, "update applied but not durable: {msg}")
            }
        }
    }
}

impl std::error::Error for SvcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_display_carries_retry_after_token() {
        let e = SvcError::Overloaded {
            capacity: 4,
            retry_after_ms: 25,
        };
        assert!(e.to_string().contains("retry_after_ms=25"), "{e}");
        assert!(e.is_retryable());
    }

    #[test]
    fn internal_display_carries_job_token() {
        let e = SvcError::Internal { job: 17 };
        assert_eq!(e.code(), "internal");
        assert!(e.to_string().contains("job=17"), "{e}");
        assert!(e.is_retryable());
    }

    #[test]
    fn non_transient_errors_are_not_retryable() {
        assert!(!SvcError::ShuttingDown.is_retryable());
        assert!(!SvcError::UnknownGraph("g".into()).is_retryable());
        assert!(!SvcError::TooLarge {
            estimated: 10,
            limit: 5
        }
        .is_retryable());
    }
}
