//! The service's typed error vocabulary.
//!
//! Every failure a client can observe maps to one variant, and every
//! variant maps to a stable wire code (the first token after `ERR`), so
//! clients can dispatch on kind without parsing prose.

use std::time::Duration;

/// Errors surfaced by the registry, scheduler, and protocol layers.
#[derive(Debug)]
pub enum SvcError {
    /// The job queue is full; the client should back off and retry.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new jobs.
    ShuttingDown,
    /// The job's deadline passed before the solve completed (or before it
    /// started).
    DeadlineExceeded {
        /// How long the job had been in the system when it was cut off.
        elapsed: Duration,
    },
    /// No graph with this name is registered.
    UnknownGraph(String),
    /// Loading or generating a graph failed (bad file, unknown spec, …).
    Load(String),
    /// The request line could not be parsed.
    BadRequest(String),
}

impl SvcError {
    /// Stable machine-readable code, the first token of an `ERR` reply.
    pub fn code(&self) -> &'static str {
        match self {
            SvcError::Overloaded { .. } => "overloaded",
            SvcError::ShuttingDown => "shutting-down",
            SvcError::DeadlineExceeded { .. } => "deadline",
            SvcError::UnknownGraph(_) => "unknown-graph",
            SvcError::Load(_) => "load",
            SvcError::BadRequest(_) => "bad-request",
        }
    }
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Overloaded { capacity } => {
                write!(f, "job queue full (capacity {capacity}), retry later")
            }
            SvcError::ShuttingDown => write!(f, "server is shutting down"),
            SvcError::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {:?}", elapsed)
            }
            SvcError::UnknownGraph(name) => write!(f, "no graph named `{name}`"),
            SvcError::Load(msg) => write!(f, "{msg}"),
            SvcError::BadRequest(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SvcError {}
